"""Regression tests for the scheduler/monitor bug fixes.

Each test pins one specific defect and fails on the pre-fix code:

* the Monitoring Module double-counting a single contention episode that
  is seen first by the in-progress probe and again at acquisition;
* the Roth-Erev learner collapsing every propensity when the coscheduled
  time still falls short of the *largest* candidate estimate (the
  under-coscheduling dead end);
* the adaptive scheduler leaking the coscheduling launch mutex when the
  IPI fan-out raises, silently disabling gang launches for the rest of
  the run;
* ``TimelineCollector.close()`` discarding occupancy accumulated before
  a mid-run snapshot;
* the sanitizer missing a stale launch-mutex hold.
"""

import numpy as np
import pytest

from repro.analysis.sanitizer import SanitizerViolation, SchedulerSanitizer
from repro.asman.learning import RothErevLearner
from repro.asman.monitor import MonitoringModule
from repro.config import LearningConfig
from repro.guest.spinlock import SpinLock
from repro.metrics.timeline import TimelineCollector
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.vmm.adaptive import AdaptiveScheduler
from repro.vmm.vm import VCRD
from tests.conftest import Harness


# --------------------------------------------------------------------- #
# Bugfix 1: over_threshold_count episode dedup
# --------------------------------------------------------------------- #
class TestMonitorEpisodeDedup:
    def _wired(self):
        h = Harness(num_pcpus=4, num_vcpus=2,
                    scheduler_cls=AdaptiveScheduler)
        mon = MonitoringModule(h.kernel, h.hypercalls,
                               rng=np.random.default_rng(0))
        return h, mon

    def test_probe_then_acquisition_counts_once(self):
        """One long episode is reported three times — by the in-spin
        probe, by a later re-probe, and at acquisition — but is one
        contention event.  Pre-fix code counted it at every report."""
        h, mon = self._wired()
        lock = SpinLock("l0")
        w0 = mon.config.over_threshold_cycles + 12_345
        h.sim.run_until(2_000_000)
        mon.on_wait_in_progress(lock, w0)
        assert mon.over_threshold_count == 1
        h.sim.run_until(3_000_000)          # same episode, still spinning
        mon.on_wait_in_progress(lock, w0 + 1_000_000)
        assert mon.over_threshold_count == 1
        h.sim.run_until(4_000_000)          # finally acquired
        mon.on_spinlock_wait(lock, w0 + 2_000_000)
        assert mon.over_threshold_count == 1

    def test_distinct_episodes_still_count(self):
        h, mon = self._wired()
        l0, l1 = SpinLock("l0"), SpinLock("l1")
        w = mon.config.over_threshold_cycles + 1
        h.sim.run_until(2_000_000)
        mon.on_wait_in_progress(l0, w)
        mon.on_wait_in_progress(l1, w)      # different lock, same instant
        assert mon.over_threshold_count == 2
        h.sim.run_until(9_000_000)          # later episode on the same lock
        mon.on_spinlock_wait(l0, w)
        assert mon.over_threshold_count == 3

    def test_below_threshold_never_counts(self):
        h, mon = self._wired()
        lock = SpinLock("l0")
        h.sim.run_until(2_000_000)
        mon.on_wait_in_progress(lock, mon.config.over_threshold_cycles)
        mon.on_spinlock_wait(lock, mon.config.over_threshold_cycles)
        assert mon.over_threshold_count == 0


# --------------------------------------------------------------------- #
# Bugfix 2: Roth-Erev under-coscheduling dead end
# --------------------------------------------------------------------- #
class TestLearnerUnderCoschedDeadEnd:
    def test_largest_candidate_is_reinforced_not_abandoned(self):
        """When coscheduled time keeps falling short of the *largest*
        candidate there is no x > x_i to reinforce; pre-fix code then
        reinforced nothing, so every propensity decayed to the floor and
        the estimate collapsed to the smallest candidate."""
        learner = RothErevLearner(LearningConfig(), np.random.default_rng(0))
        top = max(learner.x)
        top_idx = learner.x.index(top)
        q0 = float(learner.q[top_idx])
        learner.i = 2                 # past the forced-exploration phase
        learner.last_estimate = top
        estimates = [learner.next_estimate(top + 1) for _ in range(30)]
        assert estimates[-1] == top
        assert float(learner.q[top_idx]) > q0
        assert int(np.argmax(learner.q)) == top_idx

    def test_interior_candidate_unaffected(self):
        """The ordinary under-coscheduling path (larger candidates exist)
        behaves as before: everything above the current estimate is
        reinforced."""
        learner = RothErevLearner(LearningConfig(), np.random.default_rng(0))
        mid = learner.x[len(learner.x) // 2]
        learner.i = 2
        learner.last_estimate = mid
        learner.next_estimate(mid + 1)
        above = [i for i, x in enumerate(learner.x) if x > mid]
        at_or_below = [i for i, x in enumerate(learner.x) if x <= mid]
        assert min(learner.q[above]) > max(learner.q[at_or_below])


# --------------------------------------------------------------------- #
# Bugfix 3: coscheduling launch-mutex leak
# --------------------------------------------------------------------- #
class TestLaunchMutexLeak:
    def _wired(self):
        h = Harness(num_pcpus=4, num_vcpus=2,
                    scheduler_cls=AdaptiveScheduler)
        h.vm.vcrd = VCRD.HIGH   # arm Algorithm 4 without hypercall churn
        return h

    def test_mutex_released_when_broadcast_raises(self):
        h = self._wired()
        sched = h.scheduler

        def boom(*args, **kwargs):
            raise RuntimeError("IPI fabric down")

        sched.ipi.broadcast = boom
        v0 = h.vm.vcpus[0]
        with pytest.raises(RuntimeError):
            sched.post_pick(h.machine[v0.home_pcpu_id], v0)
        assert sched._cosched_launching is False
        assert sched._cosched_mutex_since is None

    def test_inflight_hold_blocks_concurrent_launch(self):
        h = self._wired()
        sched = h.scheduler
        sched._cosched_launching = True
        sched._cosched_mutex_since = h.sim.now    # fan-out in flight
        v0 = h.vm.vcpus[0]
        sched.post_pick(h.machine[v0.home_pcpu_id], v0)
        assert sched.cosched_launches == 0

    def test_stale_hold_self_heals(self):
        """A hold older than one IPI latency window means the release
        event was lost; post_pick must break the mutex and launch rather
        than never gang-launching again (the pre-fix behaviour)."""
        h = self._wired()
        sched = h.scheduler
        sched._cosched_launching = True
        sched._cosched_mutex_since = h.sim.now
        h.sim.run_until(h.sim.now + sched.ipi.latency + 1_000)
        v0 = h.vm.vcpus[0]
        sched.post_pick(h.machine[v0.home_pcpu_id], v0)
        assert sched.cosched_launches == 1
        assert sched._cosched_mutex_since == h.sim.now


# --------------------------------------------------------------------- #
# Bugfix 4: TimelineCollector.close() on mid-run snapshots
# --------------------------------------------------------------------- #
class TestTimelineSnapshot:
    def test_close_keeps_open_segments_alive(self):
        sim = Simulator()
        trace = TraceBus()
        tc = TimelineCollector(trace, sim)
        trace.emit(0, "sched.switch", pcpu=0, vcpu="vm0/v0")
        sim.run_until(50)
        tc.close()                             # mid-run snapshot
        assert sum(s.length for s in tc.segments) == 50
        tc.close()                             # idempotent at one instant
        assert sum(s.length for s in tc.segments) == 50
        sim.run_until(100)
        trace.emit(100, "sched.switch", pcpu=0, vcpu=None)
        # Pre-fix close() dropped the still-open segment, losing the
        # 50..100 occupancy entirely.
        assert sum(s.length for s in tc.segments) == 100


# --------------------------------------------------------------------- #
# Sanitizer: launch-mutex hold window
# --------------------------------------------------------------------- #
class TestSanitizerLaunchMutex:
    def _sanitized(self):
        h = Harness(num_pcpus=2, num_vcpus=2,
                    scheduler_cls=AdaptiveScheduler)
        san = SchedulerSanitizer(h.scheduler)
        h.scheduler.sanitizer = san
        return h, san

    def test_stale_hold_flagged(self):
        h, _ = self._sanitized()
        h.scheduler._cosched_launching = True
        h.scheduler._cosched_mutex_since = 0
        h.sim.run_until(h.scheduler.ipi.latency + 1_000)
        with pytest.raises(SanitizerViolation):
            h.scheduler.schedule(h.machine[0])

    def test_hold_without_timestamp_flagged(self):
        h, _ = self._sanitized()
        h.scheduler._cosched_launching = True
        h.scheduler._cosched_mutex_since = None
        with pytest.raises(SanitizerViolation):
            h.scheduler.schedule(h.machine[0])

    def test_inflight_hold_passes(self):
        h, san = self._sanitized()
        h.scheduler._cosched_launching = True
        h.scheduler._cosched_mutex_since = h.sim.now
        h.scheduler.schedule(h.machine[0])
        assert san.violations == []
