"""The modified Roth–Erev learner (Algorithms 1 and 2)."""

import numpy as np
import pytest

from repro import units
from repro.asman.learning import RothErevLearner
from repro.config import LearningConfig
from repro.errors import ConfigurationError


def make(rng_seed=1, **overrides):
    cfg = LearningConfig(**overrides)
    return RothErevLearner(cfg, np.random.default_rng(rng_seed))


class TestInitialisation:
    def test_uniform_initial_propensities(self):
        learner = make()
        q = learner.propensities()
        assert np.allclose(q, q[0])
        assert (q > 0).all()

    def test_estimate_is_a_candidate(self):
        learner = make()
        assert learner.next_estimate(None) in learner.x

    def test_first_two_estimates_probabilistic(self):
        # Different rng seeds can pick different initial candidates.
        picks = {make(rng_seed=s).next_estimate(None) for s in range(30)}
        assert len(picks) > 1

    def test_event_counter(self):
        learner = make()
        learner.next_estimate(None)
        learner.next_estimate(units.ms(100))
        assert learner.i == 2


class TestUnderCoscheduling:
    def test_short_interval_pushes_estimates_up(self):
        learner = make()
        first = learner.next_estimate(None)
        # Next over-threshold arrives immediately after coscheduling ends:
        # classic under-coscheduling.
        for _ in range(len(learner.x) + 3):
            est = learner.next_estimate(first + units.ms(1))
        assert est == learner.x[-1]  # climbed to the longest candidate

    def test_under_cosched_counter(self):
        learner = make()
        x = learner.next_estimate(None)
        learner.next_estimate(x + units.ms(1))
        assert learner.under_cosched_updates == 1

    def test_events_during_coscheduling_count_as_under(self):
        # z < x means the locality outlived the estimate.
        learner = make()
        x = learner.next_estimate(None)
        learner.next_estimate(max(1, x // 2))
        assert learner.under_cosched_updates == 1


class TestProportionalBranch:
    def test_long_interval_is_proportional(self):
        learner = make()
        x = learner.next_estimate(None)
        learner.next_estimate(x + units.seconds(3))
        assert learner.proportional_updates == 1

    def test_estimates_stay_bounded_for_sparse_events(self):
        learner = make()
        learner.next_estimate(None)
        for _ in range(20):
            est = learner.next_estimate(units.seconds(10))
        assert est in learner.x

    def test_propensities_stay_positive(self):
        learner = make()
        learner.next_estimate(None)
        for _ in range(50):
            learner.next_estimate(units.seconds(5))
        assert (learner.propensities() > 0).all()


class TestConvergence:
    def test_tracks_recurring_interval(self):
        """Episodes every 300 ms: the learner should settle on estimates
        that cover the gap (>= 256 ms given the default Delta)."""
        learner = make()
        learner.next_estimate(None)
        est = None
        for _ in range(25):
            est = learner.next_estimate(units.ms(300))
        assert est >= units.ms(256)

    def test_train_helper(self):
        learner = make()
        zs = [units.ms(300)] * 10
        estimates = learner.train(zs)
        assert len(estimates) == 11
        assert all(e in learner.x for e in estimates)

    def test_deterministic_given_seed(self):
        a = make(rng_seed=7).train([units.ms(50)] * 10)
        b = make(rng_seed=7).train([units.ms(50)] * 10)
        assert a == b

    def test_different_seeds_may_differ_early(self):
        a = make(rng_seed=1).train([units.ms(50)] * 2)
        b = make(rng_seed=2).train([units.ms(50)] * 2)
        # Early picks are probabilistic; not asserting inequality of all,
        # just that both are valid candidate sequences.
        assert all(e in make().x for e in a + b)


class TestValidation:
    def test_rejects_non_candidate_estimate_feedback(self):
        learner = make()
        learner.next_estimate(None)
        learner.last_estimate = 12345  # corrupt: not a candidate
        with pytest.raises(ConfigurationError):
            learner.next_estimate(units.seconds(10))

    def test_recency_decays_unreinforced(self):
        learner = make(recency=0.5, experimentation=0.0)
        learner.next_estimate(None)
        q_before = learner.propensities().copy()
        learner.next_estimate(units.seconds(10))
        q_after = learner.propensities()
        # With e=0 the non-chosen candidates get exactly (1-r) decay.
        chosen = learner.x.index(learner.train([])[0]) if False else None
        decayed = q_after < q_before
        assert decayed.sum() >= len(learner.x) - 1
