"""Seeded simlint violation fixture.

This file is *parsed*, never imported: it deliberately breaks every
simlint rule so the checker's detection (and the CLI's non-zero exit)
can be asserted against a stable target.  Lint it with ``--assume-sim``
so the simulation-scoped rules apply despite the path.
"""

import random  # one wall of shame per rule below
import time


def wall_clock_leak():
    return time.perf_counter()


def random_leak():
    return random.randint(0, 7)


def nondet_iteration(items):
    out = []
    for x in {3, 1, 2}:
        out.append(x)
    pending = set(items)
    for p in pending:
        out.append(p)
    return out


def float_into_cycles(sim):
    sim.after(1.5, lambda: None)
    sim.every(100 / 3, lambda: None)


def silent_truncation(a, b):
    return int(a / b)


def mutable_default(acc=[]):
    acc.append(1)
    return acc


def swallows():
    try:
        return 1
    except:
        return 0


def waived(sim):
    # The pragma escape hatch: this one must NOT be reported.
    sim.after(2.5, lambda: None)  # simlint: ignore[float-into-cycles]


# Aliased RNG imports: renaming the module or the function must not
# defeat the random-module rule.  (Imports live down here so the line
# numbers of the cases above stay put.)
import random as rnd
import numpy.random as npr
from random import random as _r


def aliased_random_leaks():
    a = rnd.gauss(0.0, 1.0)
    b = npr.random()
    c = _r()
    return a + b + c
