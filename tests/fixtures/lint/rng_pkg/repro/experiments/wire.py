"""Seeded rng-provenance violation: cross-call stream contamination."""

from repro.faults.inj import Injector
from repro.sim.rng import RngStreams


def build(streams: RngStreams) -> Injector:
    # VIOLATION[rng-provenance]: a 'monitor/...' stream handed to the
    # faults subsystem, which draws from it in repro.faults.inj — two
    # subsystems sharing one stream object.
    return Injector(streams.get("monitor/vm0"))
