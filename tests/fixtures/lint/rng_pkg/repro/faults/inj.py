"""Seeded rng-provenance violation: direct stream contamination."""

import numpy as np

from repro.sim.rng import RngStreams


def jitter(streams: RngStreams) -> int:
    # VIOLATION[rng-provenance]: a 'workload/...' stream drawn inside
    # repro.faults — the fault engine would perturb the workload's draw
    # sequence (and vice versa).
    gen = streams.get("workload/vm0")
    return int(gen.integers(0, 10))


class Injector:
    """Draws on whatever generator it is handed (clean in isolation —
    the contamination is decided at the wiring site)."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def flip(self) -> bool:
        return bool(self.rng.random() < 0.5)
