"""Seeded rng-provenance violation: ad-hoc constant-seeded generator."""

from typing import Optional

import numpy as np


class Monitor:
    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        # VIOLATION[rng-provenance]: the fallback generator's seed does
        # not derive from RngStreams — every unwired monitor would share
        # one constant draw sequence.
        self.rng = rng if rng is not None else np.random.default_rng(7)

    def decide(self) -> int:
        return int(self.rng.integers(0, 4))
