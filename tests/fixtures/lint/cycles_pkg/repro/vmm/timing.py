"""Seeded cycle-unit-flow violations: ms/float values crossing into
cycle-denominated sinks without a visible conversion."""

from repro.units import to_ms


def arm(sim, delay: int) -> None:
    """Innocent wrapper — the leak is decided at its call sites."""
    sim.after(delay, None)


def jitter_scale() -> float:
    return 1.5


def schedule_report(sim, cycles: int) -> None:
    window = to_ms(cycles)
    # VIOLATION[cycle-unit-flow]: a millisecond-typed value straight
    # into a cycle-denominated sink.
    sim.after(window, None)


def schedule_indirect(sim, cycles: int) -> None:
    # VIOLATION[cycle-unit-flow]: the ms value reaches sim.after inside
    # arm() — invisible to any per-file check.
    arm(sim, to_ms(cycles))


def build_op(units_count: int):
    # VIOLATION[cycle-unit-flow]: a float returned from a call feeds
    # Compute's cycle argument.
    return Compute(units_count * jitter_scale())


class Compute:
    """Stand-in cycle-denominated op (first argument is cycles)."""

    def __init__(self, cycles: int) -> None:
        self.cycles = cycles
