"""Seeded transitive-wall-clock violations: sim-scope functions whose
call graphs reach wall-clock/entropy/env APIs through helpers."""

from repro.metrics.host import host_env, host_tag, hostclock


def stamp() -> float:
    # VIOLATION[transitive-wall-clock]: reaches time.time() via
    # repro.metrics.host.hostclock.
    return hostclock()


def label() -> str:
    # VIOLATION[transitive-wall-clock]: reaches uuid.uuid4() via
    # repro.metrics.host.host_tag.
    return "vm-" + host_tag()


def tuned() -> str:
    # VIOLATION[transitive-wall-clock]: reaches os.environ.get() via
    # repro.metrics.host.host_env.
    return host_env("TUNE")
