"""Host-side helpers — legal in metrics scope, poison for sim callers."""

import os
import time
import uuid


def hostclock() -> float:
    return time.time()


def host_tag() -> str:
    return str(uuid.uuid4())


def host_env(name: str) -> str:
    return os.environ.get(name, "")
