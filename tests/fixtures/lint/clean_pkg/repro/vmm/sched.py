"""Clean sim-scope module: every idiom here must produce ZERO findings.

Each function is a near-miss for one interprocedural rule — the legal
twin of a seeded violation in the sibling fixture packages.  A false
positive on any of them is a bug in the analysis, not in this file.
"""

import numpy as np

from repro.metrics.fmt import fmt_cycles
from repro.sim.rng import RngStreams
from repro.units import ms, to_ms


class Scheduler:
    """Draws only from the constructor-provided stream generator."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def pick(self, n: int) -> int:
        return int(self.rng.integers(0, n))


def arm_timer(sim, cycles: int) -> None:
    """Integer cycles straight into the sink: fine."""
    sim.after(cycles, None)


def arm_in_ms(sim, wall_ms: int) -> None:
    """Wall units converted at the visible repro.units boundary: fine."""
    sim.after(ms(wall_ms), None)


def arm_scaled(sim, base: int, factor: float) -> None:
    """Float scaled then explicitly integerized before the sink: fine."""
    sim.after(int(base * factor), None)


def report_ms(cycles: int) -> float:
    """ms flows *out* toward reporting, never back into a sink: fine."""
    return to_ms(cycles)


def derived_thread_rng(rng: np.random.Generator) -> np.random.Generator:
    """Stream-derived seeding: provenance is preserved, not ad-hoc."""
    return np.random.default_rng(rng.integers(0, 2**63))


def describe(cycles: int) -> str:
    """Calls into metrics, which reaches no wall-clock/entropy API."""
    return fmt_cycles(cycles)


def wire(streams: RngStreams, sim) -> Scheduler:
    """An unrouted stream prefix carries no subsystem contract."""
    sched = Scheduler(streams.get("sched/v1"))
    arm_in_ms(sim, 5)
    return sched
