"""Clean cross-subsystem wiring: the monitor stream stays in asman."""

import numpy as np

from repro.sim.rng import RngStreams


class Monitor:
    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def decide(self) -> int:
        return int(self.rng.integers(0, 4))


def wire(streams: RngStreams) -> Monitor:
    """'monitor/...' drawn inside repro.asman: exactly where it belongs."""
    return Monitor(streams.get("monitor/v1"))
