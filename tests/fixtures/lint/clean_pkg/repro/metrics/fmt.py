"""Benign host-side helper: deterministic, no clocks, no entropy."""


def fmt_cycles(cycles: int) -> str:
    return f"{cycles} cy"
