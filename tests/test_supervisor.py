"""Supervised execution fabric: policy, journal, retry, resume, cache
integrity hardening, and the KeyboardInterrupt shutdown path."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import (CacheIntegrityError, CellTimeoutError,
                          ConfigurationError, ExecutionError)
from repro.parallel import (BatchJournal, CacheIntegrityWarning, CellFailure,
                            ChaosSpec, ResultCache, SupervisorPolicy,
                            WorkloadSpec, run_cells, run_supervised,
                            single_vm_cell)
from repro.parallel.supervisor import backoff_ms, batch_key

COMPUTE = WorkloadSpec("synthetic", "compute1", scale=0.2)


def _cells(n=2, rate=0.4):
    return [single_vm_cell(COMPUTE, scheduler="credit", online_rate=rate,
                           seed=seed) for seed in range(1, n + 1)]


# --------------------------------------------------------------------- #
# Policy validation
# --------------------------------------------------------------------- #
class TestPolicyValidation:
    def test_zero_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(cell_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(batch_deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(cell_timeout_s=-5.0)

    def test_negative_budgets_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(max_pool_rebuilds=-1)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(backoff_base_ms=-1.0)

    def test_none_timeouts_mean_unlimited(self):
        p = SupervisorPolicy()
        assert p.cell_timeout_s is None
        assert p.batch_deadline_s is None


class TestBackoffDeterminism:
    def test_pure_function_of_inputs(self):
        p = SupervisorPolicy(seed=3)
        assert backoff_ms(p, "cell-a", 1) == backoff_ms(p, "cell-a", 1)
        assert backoff_ms(p, "cell-a", 1) != backoff_ms(p, "cell-b", 1)
        assert backoff_ms(p, "cell-a", 1) != \
            backoff_ms(SupervisorPolicy(seed=4), "cell-a", 1)

    def test_capped_and_grows(self):
        p = SupervisorPolicy(backoff_base_ms=100.0, backoff_cap_ms=150.0)
        for attempt in range(1, 8):
            assert backoff_ms(p, "k", attempt) <= 150.0
        # Exponential growth drives later attempts into the cap.
        assert backoff_ms(p, "k", 7) == 150.0

    def test_zero_base_is_no_delay(self):
        p = SupervisorPolicy(backoff_base_ms=0.0)
        assert backoff_ms(p, "k", 3) == 0.0


# --------------------------------------------------------------------- #
# Journal
# --------------------------------------------------------------------- #
class TestBatchJournal:
    def test_batch_key_stable_and_salted(self):
        keys = ["b", "a", "c"]
        assert batch_key(keys, "s") == batch_key(sorted(keys), "s")
        assert batch_key(keys, "s1") != batch_key(keys, "s2")
        assert batch_key(["a"], "s") != batch_key(["a", "b"], "s")

    def test_append_replay_round_trip(self, tmp_path):
        j = BatchJournal(tmp_path, "deadbeef")
        j.append({"key": "a", "status": "done", "fingerprint": 1})
        j.append({"key": "b", "status": "failed", "kind": "error"})
        records = j.replay()
        assert set(records) == {"a", "b"}
        assert records["a"]["status"] == "done"
        assert records["b"]["kind"] == "error"

    def test_latest_record_wins(self, tmp_path):
        j = BatchJournal(tmp_path, "deadbeef")
        j.append({"key": "a", "status": "failed"})
        j.append({"key": "a", "status": "done"})
        assert j.replay()["a"]["status"] == "done"

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        j = BatchJournal(tmp_path, "deadbeef")
        j.append({"key": "a", "status": "done"})
        j.append({"key": "b", "status": "done"})
        # A writer killed mid-append leaves a truncated record.
        with open(j.path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "c", "stat')
        records = j.replay()
        assert set(records) == {"a", "b"}

    def test_reset_and_missing_file(self, tmp_path):
        j = BatchJournal(tmp_path, "deadbeef")
        assert j.replay() == {}
        j.append({"key": "a", "status": "done"})
        j.reset()
        assert j.replay() == {}
        j.reset()  # idempotent on a missing file


# --------------------------------------------------------------------- #
# Supervised execution: clean path, failures, deadline
# --------------------------------------------------------------------- #
class TestSupervisedSerial:
    def test_matches_unsupervised_results(self, tmp_path):
        specs = _cells(2)
        plain = run_cells(specs, jobs=1, cache=None)
        sup = run_supervised(specs, jobs=1,
                             cache=ResultCache(tmp_path / "c"))
        assert sup.combined_fingerprint() == plain.combined_fingerprint()
        assert sup.ok and sup.failures() == []
        sup.raise_if_failed()  # no-op on a clean batch
        assert sup.supervisor is not None
        assert sup.supervisor.executed == 2
        assert sup.supervisor.failures == []

    def test_journal_records_every_cell(self, tmp_path):
        specs = _cells(2)
        cache = ResultCache(tmp_path / "c")
        run_supervised(specs, jobs=1, cache=cache)
        j = BatchJournal(cache.root / "journal",
                         batch_key([s.canonical() for s in specs],
                                   cache.salt))
        records = j.replay()
        assert len(records) == 2
        assert all(r["status"] == "done" for r in records.values())

    def test_poison_cell_exhausts_retries_batch_completes(self, tmp_path):
        specs = _cells(3)
        poisoned = specs[0].canonical()
        chaos = ChaosSpec(poison_keys=('"seed":1',))
        results = run_supervised(
            specs, jobs=1, cache=ResultCache(tmp_path / "c"),
            policy=SupervisorPolicy(max_retries=1, backoff_base_ms=0.0),
            chaos=chaos)
        # The batch still completed: one structured failure, two results.
        assert len(results) == 3
        failed = results.failures()
        assert len(failed) == 1
        assert isinstance(failed[0], CellFailure)
        assert failed[0].key == poisoned
        assert failed[0].kind == "error"
        assert failed[0].attempts == 2  # first try + 1 retry
        with pytest.raises(ExecutionError):
            results.raise_if_failed()
        # Failures are never cached: a clean rerun re-executes the cell.
        clean = run_supervised(specs, jobs=1,
                               cache=ResultCache(tmp_path / "c"))
        assert clean.ok

    def test_batch_deadline_drains_to_timeout_failures(self, tmp_path):
        specs = _cells(2)
        results = run_supervised(
            specs, jobs=1, cache=ResultCache(tmp_path / "c"),
            policy=SupervisorPolicy(batch_deadline_s=1e-9))
        assert len(results.failures()) == 2
        assert all(f.kind == "timeout" for f in results.failures())
        with pytest.raises(CellTimeoutError):
            results.raise_if_failed()

    def test_failure_outcomes_merge_and_fingerprint(self, tmp_path):
        specs = _cells(2)
        chaos = ChaosSpec(poison_keys=('"seed":',))  # everything
        results = run_supervised(
            specs, jobs=1, cache=ResultCache(tmp_path / "c"),
            policy=SupervisorPolicy(max_retries=0), chaos=chaos)
        assert len(results) == 2 and len(results.failures()) == 2
        # A batch of failures still renders a stable fingerprint.
        assert len(results.combined_fingerprint()) == 16


# --------------------------------------------------------------------- #
# Journaled resume
# --------------------------------------------------------------------- #
class TestResume:
    def _interrupt(self, specs, cache):
        """Turn a completed batch into an 'interrupted' one: forget the
        last two cells from both the cache and the journal."""
        keys = sorted(s.canonical() for s in specs)
        spec_by_key = {s.canonical(): s for s in specs}
        lost = keys[-2:]
        for key in lost:
            entry = cache._entry_path(cache.key_for(spec_by_key[key]))
            entry.unlink()
            entry.with_suffix(".json").unlink()
        j = BatchJournal(cache.root / "journal",
                         batch_key(keys, cache.salt))
        kept = [line for line in j.path.read_text().splitlines()
                if json.loads(line)["key"] not in lost]
        j.path.write_text("\n".join(kept) + "\n")
        return lost

    def test_resume_re_executes_only_missing_cells(self, tmp_path):
        specs = _cells(4)
        cache = ResultCache(tmp_path / "c")
        full = run_supervised(specs, jobs=1, cache=cache)
        lost = self._interrupt(specs, cache)
        fresh = ResultCache(tmp_path / "c")  # reset traffic counters
        resumed = run_supervised(specs, jobs=1, cache=fresh, resume=True)
        assert resumed.combined_fingerprint() == full.combined_fingerprint()
        report = resumed.supervisor
        assert report is not None
        # Only the two lost cells re-executed; the rest were resumed.
        assert report.executed == len(lost) == 2
        assert report.resumed == 2
        assert report.cached == 2
        assert fresh.hits == 2 and fresh.misses == 2 and fresh.stores == 2

    def test_resume_survives_torn_journal(self, tmp_path):
        specs = _cells(3)
        cache = ResultCache(tmp_path / "c")
        full = run_supervised(specs, jobs=1, cache=cache)
        j = BatchJournal(cache.root / "journal",
                         batch_key(sorted(s.canonical() for s in specs),
                                   cache.salt))
        with open(j.path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "torn')
        resumed = run_supervised(specs, jobs=1,
                                 cache=ResultCache(tmp_path / "c"),
                                 resume=True)
        assert resumed.combined_fingerprint() == full.combined_fingerprint()

    def test_resume_without_journal_is_config_error(self):
        with pytest.raises(ConfigurationError):
            run_supervised(_cells(1), jobs=1, cache=None, resume=True)

    def test_fresh_run_resets_stale_journal(self, tmp_path):
        specs = _cells(2)
        cache = ResultCache(tmp_path / "c")
        run_supervised(specs, jobs=1, cache=cache)
        j = BatchJournal(cache.root / "journal",
                         batch_key(sorted(s.canonical() for s in specs),
                                   cache.salt))
        first = len(j.path.read_text().splitlines())
        cache.clear()
        run_supervised(specs, jobs=1, cache=cache)  # resume NOT requested
        assert len(j.path.read_text().splitlines()) == first


# --------------------------------------------------------------------- #
# Cache integrity hardening
# --------------------------------------------------------------------- #
class TestCacheIntegrity:
    def _poisoned_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        spec = _cells(1)[0]
        cache.put(spec, {"v": 1})
        entry = cache._entry_path(cache.key_for(spec))
        entry.write_bytes(b"\xff" + entry.read_bytes()[1:])
        return cache, spec, entry

    def test_corrupt_entry_quarantined_and_counted(self, tmp_path):
        cache, spec, entry = self._poisoned_cache(tmp_path)
        with pytest.warns(CacheIntegrityWarning):
            hit, value = cache.get(spec)
        assert not hit and value is None
        assert not entry.exists()  # moved aside
        qdir = cache.root / "quarantine"
        assert len(list(qdir.glob("*.pkl"))) == 1
        stats = cache.stats()
        assert stats["quarantined"] == 1
        assert stats["quarantine_entries"] == 1
        assert stats["entries"] == 0  # impounded entries don't count
        assert "quarantined" in cache.describe()

    def test_missing_sidecar_is_corruption(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        spec = _cells(1)[0]
        cache.put(spec, {"v": 1})
        cache._sidecar_path(cache.key_for(spec)).unlink()
        with pytest.warns(CacheIntegrityWarning):
            hit, _ = cache.get(spec)
        assert not hit

    def test_unwritable_quarantine_degrades_to_miss(self, tmp_path):
        cache, spec, entry = self._poisoned_cache(tmp_path)
        # A *file* squatting on the quarantine path defeats mkdir even
        # for root, unlike permission bits.
        (cache.root / "quarantine").write_text("not a directory")
        with pytest.warns(CacheIntegrityWarning, match="left in place"):
            hit, _ = cache.get(spec)
        assert not hit
        assert entry.exists()  # left where it was
        assert cache.quarantined == 1

    def test_verify_strict_raises(self, tmp_path):
        cache, spec, entry = self._poisoned_cache(tmp_path)
        audit = cache.verify()
        assert audit["checked"] == 1
        assert audit["corrupt"] == [cache.key_for(spec)]
        assert entry.exists()  # verify never quarantines
        with pytest.raises(CacheIntegrityError):
            cache.verify(strict=True)

    def test_verify_clean_store(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        cache.put(_cells(1)[0], {"v": 1})
        assert cache.verify(strict=True) == {"checked": 1, "corrupt": []}


# --------------------------------------------------------------------- #
# Atomic-write regression (satellite bugfix)
# --------------------------------------------------------------------- #
class TestAtomicWrite:
    def test_failed_write_leaves_no_temp_file(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "c", salt="s")

        def boom(fd):
            raise OSError("disk full")

        monkeypatch.setattr(os, "fsync", boom)
        with pytest.raises(OSError):
            cache.put(_cells(1)[0], {"v": 1})
        assert list((tmp_path / "c").rglob("*.tmp")) == []
        assert list((tmp_path / "c").rglob("*.pkl")) == []

    def test_interrupt_during_replace_cleans_up(self, tmp_path,
                                                monkeypatch):
        cache = ResultCache(tmp_path / "c", salt="s")

        def interrupted(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(os, "replace", interrupted)
        with pytest.raises(KeyboardInterrupt):
            cache.put(_cells(1)[0], {"v": 1})
        assert list((tmp_path / "c").rglob("*.tmp")) == []

    def test_fsync_happens_before_replace(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "c", salt="s")
        calls = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync",
            lambda fd: (calls.append("fsync"), real_fsync(fd))[1])
        monkeypatch.setattr(
            os, "replace",
            lambda s, d: (calls.append("replace"), real_replace(s, d))[1])
        cache.put(_cells(1)[0], {"v": 1})
        assert calls[:2] == ["fsync", "replace"]

    def test_clear_sweeps_stale_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        cache.put(_cells(1)[0], {"v": 1})
        stale = cache.root / "ab" / "dead.pkl.12345.tmp"
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_bytes(b"half-written")
        removed = cache.clear()
        assert removed == 1
        assert not stale.exists()
        assert list(cache.root.rglob("*.tmp")) == []


# --------------------------------------------------------------------- #
# KeyboardInterrupt does not leak the executor (satellite bugfix)
# --------------------------------------------------------------------- #
_SIGINT_SCRIPT = """\
import sys, time
sys.path.insert(0, {src!r})
from repro.parallel import pool_map

def slow(x):
    time.sleep(2.0)
    return x

if __name__ == "__main__":
    print("READY", flush=True)
    try:
        pool_map(slow, list(range(64)), jobs=2)
    except KeyboardInterrupt:
        print("INTERRUPTED", flush=True)
        sys.exit(130)
    print("FINISHED", flush=True)
"""


class TestKeyboardInterrupt:
    def test_sigint_cancels_queue_and_reraises(self, tmp_path):
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        script = tmp_path / "ki_victim.py"
        script.write_text(_SIGINT_SCRIPT.format(src=src))
        proc = subprocess.Popen(
            [sys.executable, str(script)], stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True,
            start_new_session=True)  # SIGINT hits only this process
        try:
            assert proc.stdout is not None
            assert proc.stdout.readline().strip() == "READY"
            time.sleep(3.0)  # let the pool spawn and start cells
            start = time.monotonic()
            os.kill(proc.pid, signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
            elapsed = time.monotonic() - start
        finally:
            if proc.poll() is None:
                proc.kill()
        assert "INTERRUPTED" in out
        assert proc.returncode == 130
        # 64 cells x 2s on 2 workers is ~64s of queued work; a prompt
        # exit proves cancel_futures dropped the queue instead of
        # draining it.
        assert elapsed < 30.0
