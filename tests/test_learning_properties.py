"""Property-based tests for the modified Roth-Erev learner.

Whatever interval sequence the Monitoring Module feeds it, the learner's
internal state must stay well-formed: propensities positive and finite,
the implied choice distribution a distribution, and every estimate a
member of the candidate set.  Also pins the under-coscheduling corner
where the chosen duration is already the longest candidate (the
top-candidate reinforcement regression): the distribution must not
collapse to the floor, and the learner must converge to the longest
candidate and stay there.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LearningConfig
from repro.asman.learning import RothErevLearner, _PROPENSITY_FLOOR

#: Small candidate grid so short random sequences still move the argmax.
CANDIDATES = (1_000, 2_000, 4_000, 8_000, 16_000)

intervals = st.lists(st.integers(min_value=0, max_value=50_000),
                     min_size=1, max_size=40)
params = st.fixed_dictionaries({
    "recency": st.floats(min_value=0.0, max_value=0.9),
    "experimentation": st.floats(min_value=0.0, max_value=0.9),
})


def make_learner(seed: int = 1, **overrides) -> RothErevLearner:
    cfg = LearningConfig(candidates=CANDIDATES, **overrides)
    return RothErevLearner(cfg, np.random.default_rng(seed))


class TestStateWellFormed:
    @settings(max_examples=150, deadline=None)
    @given(zs=intervals, p=params)
    def test_propensities_positive_and_finite(self, zs, p):
        learner = make_learner(recency=p["recency"],
                               experimentation=p["experimentation"])
        learner.train(zs)
        q = learner.propensities()
        assert np.all(np.isfinite(q))
        assert np.all(q >= _PROPENSITY_FLOOR)

    @settings(max_examples=150, deadline=None)
    @given(zs=intervals, p=params)
    def test_choice_distribution_sums_to_one(self, zs, p):
        learner = make_learner(recency=p["recency"],
                               experimentation=p["experimentation"])
        learner.train(zs)
        q = np.maximum(learner.propensities(), _PROPENSITY_FLOOR)
        probs = q / q.sum()
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0.0)

    @settings(max_examples=100, deadline=None)
    @given(zs=intervals, seed=st.integers(min_value=0, max_value=2**31))
    def test_estimates_are_candidates(self, zs, seed):
        learner = make_learner(seed=seed)
        for est in learner.train(zs):
            assert est in CANDIDATES

    @settings(max_examples=100, deadline=None)
    @given(zs=intervals)
    def test_event_counters_partition_updates(self, zs):
        learner = make_learner()
        learner.train(zs)
        assert (learner.under_cosched_updates
                + learner.proportional_updates) == len(zs)


class TestLargestCandidateRegression:
    """Repeated under-coscheduling must saturate at the top candidate,
    not bleed all probability mass to the propensity floor."""

    def test_converges_to_longest_candidate(self):
        learner = make_learner()
        # z barely above x: slack <= delta, the under-coscheduling branch.
        est = learner.next_estimate(None)
        for _ in range(50):
            est = learner.next_estimate(est + 1)
        assert est == CANDIDATES[-1]
        # ... and stays there once it is the chosen duration itself.
        for _ in range(20):
            est = learner.next_estimate(est + 1)
            assert est == CANDIDATES[-1]

    def test_top_candidate_propensity_dominates(self):
        learner = make_learner()
        est = learner.next_estimate(None)
        for _ in range(60):
            est = learner.next_estimate(est + 1)
        q = learner.propensities()
        assert int(np.argmax(q)) == len(CANDIDATES) - 1
        assert q[-1] > 10 * _PROPENSITY_FLOOR

    @settings(max_examples=60, deadline=None)
    @given(p=params)
    def test_no_collapse_under_any_parameters(self, p):
        learner = make_learner(recency=p["recency"],
                               experimentation=p["experimentation"])
        est = learner.next_estimate(None)
        for _ in range(40):
            est = learner.next_estimate(est + 1)
        # At least one propensity must sit well above the floor.
        assert learner.propensities().max() > 10 * _PROPENSITY_FLOOR
