"""The static ↔ runtime parity table: every lint rule and every
sanitizer check is claimed by exactly one invariant, and one-sided
additions fail loudly with an actionable message.
"""

from unittest import mock

from repro.analysis import parity, simlint
from repro.analysis.parity import INVARIANT_PARITY, Invariant, verify_parity
from repro.analysis.rules_interproc import INTERPROC_RULES
from repro.analysis.sanitizer import RUNTIME_CHECKS


class TestTableIsConsistent:
    def test_verify_parity_reports_no_problems(self):
        assert verify_parity() == []

    def test_every_static_rule_is_claimed(self):
        claimed = {r for inv in INVARIANT_PARITY for r in inv.static_rules}
        assert claimed == set(simlint.RULES) | set(INTERPROC_RULES)

    def test_every_runtime_check_is_claimed(self):
        claimed = {c for inv in INVARIANT_PARITY
                   for c in inv.runtime_checks}
        assert claimed == set(RUNTIME_CHECKS)

    def test_single_plane_rows_record_their_asymmetry(self):
        for inv in INVARIANT_PARITY:
            if not inv.static_rules or not inv.runtime_checks:
                assert inv.asymmetry, inv.name


class TestDriftFailsLoudly:
    """Simulate the four drift modes by patching one registry at a time:
    each must surface as a distinct, actionable problem string."""

    def test_new_runtime_check_without_row(self):
        grown = dict(RUNTIME_CHECKS)
        grown["brand-new-check"] = "added without a parity decision"
        with mock.patch.object(parity, "RUNTIME_CHECKS", grown):
            problems = verify_parity()
        assert any("brand-new-check" in p and "no row" in p
                   for p in problems)

    def test_new_static_rule_without_row(self):
        grown = dict(INTERPROC_RULES)
        grown["brand-new-rule"] = "added without a parity decision"
        with mock.patch.object(parity, "INTERPROC_RULES", grown):
            problems = verify_parity()
        assert any("brand-new-rule" in p and "no row" in p
                   for p in problems)

    def test_row_referencing_deleted_rule(self):
        bogus = INVARIANT_PARITY + (Invariant(
            name="ghost", description="references a deleted rule",
            static_rules=("no-such-rule",)),)
        with mock.patch.object(parity, "INVARIANT_PARITY", bogus):
            problems = verify_parity()
        assert any("unknown static rule" in p for p in problems)

    def test_double_claimed_check(self):
        bogus = INVARIANT_PARITY + (Invariant(
            name="greedy", description="claims an already-claimed check",
            runtime_checks=("placement",)),)
        with mock.patch.object(parity, "INVARIANT_PARITY", bogus):
            problems = verify_parity()
        assert any("claimed by both" in p for p in problems)

    def test_empty_invariant_rejected(self):
        bogus = INVARIANT_PARITY + (Invariant(
            name="hollow", description="enforces nothing anywhere"),)
        with mock.patch.object(parity, "INVARIANT_PARITY", bogus):
            problems = verify_parity()
        assert any("enforces nothing" in p for p in problems)

    def test_missing_asymmetry_rationale_rejected(self):
        bogus = INVARIANT_PARITY + (Invariant(
            name="half", description="single-plane, no rationale",
            static_rules=()),)
        with mock.patch.object(parity, "INVARIANT_PARITY", bogus):
            problems = verify_parity()
        assert any("asymmetry rationale" in p for p in problems)


class TestRuntimeChecksMatchSanitizer:
    # Registry id -> the callable that actually enforces it.  A check id
    # whose enforcement method is renamed or deleted fails here, keeping
    # the registry honest rather than prose.
    ENFORCEMENT = {
        "placement": "_check_placement",
        "runq-membership": None,  # delegates to scheduler.check_invariants
        "credit-conservation": "_check_credit_monotonic",
        "gang-atomicity": "_check_gang_atomicity",
        "launch-mutex": "_check_launch_mutex",
        "lhp-provenance": "note_spin_wait",
        "ff-quiescence": "check_ff_quiescence",
    }

    def test_enforcement_map_covers_the_registry(self):
        assert set(self.ENFORCEMENT) == set(RUNTIME_CHECKS)

    def test_every_check_has_a_live_enforcement_point(self):
        from repro.analysis.sanitizer import SchedulerSanitizer
        from repro.vmm.scheduler_base import SchedulerBase
        for check, method in self.ENFORCEMENT.items():
            if method is None:
                assert callable(SchedulerBase.check_invariants), check
            else:
                assert callable(getattr(SchedulerSanitizer, method)), check
