"""The discrete-event engine."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.engine import COMPACT_MIN_DEAD, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.at(30, lambda: order.append("c"))
        sim.at(10, lambda: order.append("a"))
        sim.at(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fires_in_scheduling_order(self, sim):
        order = []
        sim.at(10, lambda: order.append(1))
        sim.at(10, lambda: order.append(2))
        sim.at(10, lambda: order.append(3))
        sim.run()
        assert order == [1, 2, 3]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.at(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]

    def test_cannot_schedule_in_past(self, sim):
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5, lambda: None)

    def test_schedule_at_current_time_allowed(self, sim):
        fired = []
        sim.at(10, lambda: sim.at(10, lambda: fired.append(True)))
        sim.run()
        assert fired == [True]

    def test_after_is_relative(self, sim):
        seen = []
        sim.at(100, lambda: sim.after(50, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [150]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.after(-1, lambda: None)

    def test_events_executed_counter(self, sim):
        for t in (1, 2, 3):
            sim.at(t, lambda: None)
        sim.run()
        assert sim.events_executed == 3


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        ev = sim.at(10, lambda: fired.append(True))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        ev = sim.at(10, lambda: None)
        ev.cancel()
        ev.cancel()
        assert ev.cancelled

    def test_cancel_after_fire_is_noop(self, sim):
        ev = sim.at(10, lambda: None)
        sim.run()
        assert ev.fired
        ev.cancel()  # no error

    def test_pending_property(self, sim):
        ev = sim.at(10, lambda: None)
        assert ev.pending
        sim.run()
        assert not ev.pending

    def test_cancel_within_handler(self, sim):
        fired = []
        later = sim.at(20, lambda: fired.append("later"))
        sim.at(10, later.cancel)
        sim.run()
        assert fired == []

    def test_pending_events_excludes_cancelled(self, sim):
        ev1 = sim.at(10, lambda: None)
        sim.at(20, lambda: None)
        ev1.cancel()
        assert sim.pending_events == 1


class TestRunUntil:
    def test_run_until_stops_at_time(self, sim):
        fired = []
        sim.at(10, lambda: fired.append(10))
        sim.at(30, lambda: fired.append(30))
        sim.run_until(20)
        assert fired == [10]
        assert sim.now == 20

    def test_run_until_includes_boundary(self, sim):
        fired = []
        sim.at(20, lambda: fired.append(20))
        sim.run_until(20)
        assert fired == [20]

    def test_run_until_past_rejected(self, sim):
        sim.run_until(100)
        with pytest.raises(SimulationError):
            sim.run_until(50)

    def test_consecutive_windows_partition(self, sim):
        fired = []
        for t in (5, 15, 25):
            sim.at(t, lambda t=t: fired.append(t))
        sim.run_until(10)
        assert fired == [5]
        sim.run_until(20)
        assert fired == [5, 15]
        sim.run_until(30)
        assert fired == [5, 15, 25]


class TestRunUntilTrue:
    def test_satisfied_immediately(self, sim):
        assert sim.run_until_true(lambda: True)

    def test_satisfied_by_event(self, sim):
        state = {"done": False}
        sim.at(10, lambda: state.update(done=True))
        assert sim.run_until_true(lambda: state["done"])
        assert sim.now == 10

    def test_deadline_stops(self, sim):
        state = {"done": False}
        sim.at(100, lambda: state.update(done=True))
        assert not sim.run_until_true(lambda: state["done"], deadline=50)
        assert sim.now == 50

    def test_queue_drain_returns_predicate(self, sim):
        sim.at(10, lambda: None)
        assert not sim.run_until_true(lambda: False)


class TestStop:
    def test_stop_halts_run(self, sim):
        fired = []
        sim.at(10, lambda: (fired.append(10), sim.stop()))
        sim.at(20, lambda: fired.append(20))
        sim.run()
        assert fired == [10]

    def test_run_max_events(self, sim):
        fired = []
        for t in range(1, 6):
            sim.at(t, lambda t=t: fired.append(t))
        sim.run(max_events=2)
        assert fired == [1, 2]


class TestPeriodic:
    def test_fires_repeatedly(self, sim):
        hits = []
        sim.every(10, lambda: hits.append(sim.now))
        sim.run_until(35)
        assert hits == [10, 20, 30]

    def test_start_offset(self, sim):
        hits = []
        sim.every(10, lambda: hits.append(sim.now), start_offset=3)
        sim.run_until(35)
        assert hits == [13, 23, 33]

    def test_cancel_stops_repetition(self, sim):
        hits = []
        handle = sim.every(10, lambda: hits.append(sim.now))
        sim.at(25, handle.cancel)
        sim.run_until(100)
        assert hits == [10, 20]
        assert handle.cancelled

    def test_callback_may_cancel_itself(self, sim):
        hits = []
        handle = sim.every(10, lambda: (hits.append(sim.now),
                                        handle.cancel()))
        sim.run_until(100)
        assert hits == [10]

    def test_nonpositive_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0, lambda: None)

    def test_cancel_from_sibling_event_same_cycle(self, sim):
        # A one-shot scheduled at the same cycle as a periodic firing but
        # with an earlier seq cancels it before it runs.
        hits = []
        sim.at(15, lambda: handle.cancel())  # earlier seq wins the tie
        handle = sim.every(10, lambda: hits.append(sim.now), start_offset=5)
        sim.run_until(100)
        assert hits == []

    def test_raising_callback_does_not_kill_timer(self, sim):
        hits = []

        def cb():
            hits.append(sim.now)
            if len(hits) == 1:
                raise RuntimeError("transient guest fault")

        sim.every(10, cb)
        with pytest.raises(RuntimeError):
            sim.run_until(100)
        # The timer was re-armed before the callback ran: resuming the
        # simulation fires the next period instead of going silent.
        sim.run_until(100)
        assert hits == [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]

    def test_run_until_lands_exactly_on_firing(self, sim):
        hits = []
        sim.every(10, lambda: hits.append(sim.now))
        sim.run_until(30)  # boundary coincides with the third firing
        assert hits == [10, 20, 30]
        assert sim.now == 30
        sim.run_until(40)
        assert hits == [10, 20, 30, 40]

    def test_periodic_counts_in_pending_events(self, sim):
        handle = sim.every(10, lambda: None)
        sim.at(5, lambda: None)
        assert sim.pending_events == 2
        handle.cancel()
        assert sim.pending_events == 1


class TestTimestampValidation:
    def test_fractional_timestamp_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.at(10.5, lambda: None)

    def test_integral_float_accepted(self, sim):
        seen = []
        sim.at(10.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10]

    def test_non_numeric_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.at("10", lambda: None)

    def test_bool_is_an_int(self, sim):
        # bool is an int subclass; harmless, fires at cycle 1.
        seen = []
        sim.at(True, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1]

    def test_fractional_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.after(0.5, lambda: None)

    def test_fractional_past_time_reports_past_not_truncation(self, sim):
        # The past-check must apply to the *coerced* value: before the
        # fix, at(9.5) with now=5 truncated to 9 silently; with now=10 it
        # must be rejected as in the past, not float-truncated to fire.
        sim.run_until(10)
        with pytest.raises(SimulationError):
            sim.at(9.5, lambda: None)

    def test_fractional_run_until_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.run_until(10.5)

    def test_fractional_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.every(10.5, lambda: None)


class TestHeapHygiene:
    def test_compaction_bounds_queue_depth(self, sim):
        # Schedule/cancel churn: without compaction the dead entries
        # accumulate for the life of the run.
        for _ in range(50):
            batch = [sim.at(1_000_000 + j, lambda: None) for j in range(20)]
            for ev in batch:
                ev.cancel()
        assert sim.pending_events == 0
        assert sim.queue_depth <= COMPACT_MIN_DEAD
        assert sim.peak_heap_entries < 1000  # 1000 were scheduled in total

    def test_pending_events_tracks_mixed_operations(self, sim):
        events = [sim.at(10 + i, lambda: None) for i in range(10)]
        assert sim.pending_events == 10
        for ev in events[:4]:
            ev.cancel()
        assert sim.pending_events == 6
        sim.run()
        assert sim.pending_events == 0

    def test_run_until_true_cancelled_head_past_deadline(self, sim):
        # Regression: a cancelled event sitting at the heap head beyond
        # the deadline used to hide the deadline check, letting a later
        # live event fire past the deadline.
        fired = []
        head = sim.at(60, lambda: fired.append(60))
        sim.at(100, lambda: fired.append(100))
        head.cancel()
        assert not sim.run_until_true(lambda: False, deadline=50)
        assert sim.now == 50
        assert fired == []

    def test_compaction_preserves_firing_order(self):
        # Property test: under heavy random cancellation (forcing many
        # compactions), survivors fire in exactly (time, seq) order.
        rng = random.Random(12345)
        sim = Simulator()
        fired = []
        expected = []
        live = []
        for i in range(2_000):
            t = rng.randrange(1, 5_000)
            ev = sim.at(t, lambda t=t, i=i: fired.append((t, i)))
            live.append((t, i, ev))
            if rng.random() < 0.7:
                victim = live.pop(rng.randrange(len(live)))
                victim[2].cancel()
        expected = sorted((t, i) for t, i, _ in live)
        sim.run()
        assert fired == expected
