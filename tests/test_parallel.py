"""The parallel experiment fabric: specs, cache, executor, determinism."""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.config import SchedulerConfig
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.runner import (SingleVmResult, run_multi_vm,
                                      run_single_vm)
from repro.parallel import (CellSpec, ResultCache, WorkloadSpec,
                            canonical_value, execute_cell, get_default_cache,
                            pool_map, resolve_jobs, result_fingerprint,
                            run_cells, set_default_cache, set_default_jobs,
                            single_vm_cell, specjbb_cell)

EP = WorkloadSpec("nas", "EP", scale=0.05)
LU = WorkloadSpec("nas", "LU", scale=0.05)


def _double(x):
    # Module-level so it pickles under the spawn start method.
    return x * 2


# --------------------------------------------------------------------- #
# Specs: canonical form and cache keys
# --------------------------------------------------------------------- #
class TestCellSpec:
    def test_canonical_is_stable_json(self):
        a = single_vm_cell(EP, scheduler="credit", online_rate=0.4, seed=1)
        b = single_vm_cell(EP, scheduler="credit", online_rate=0.4, seed=1)
        assert a.canonical() == b.canonical()
        doc = json.loads(a.canonical())
        assert doc["kind"] == "single_vm"
        # The *resolved* SchedulerConfig is embedded, not the None field.
        assert doc["sched_config"]["work_conserving"] is False

    def test_every_parameter_rekeys(self):
        base = single_vm_cell(EP, online_rate=0.4, seed=1)
        variants = [
            single_vm_cell(EP, online_rate=0.4, seed=2),
            single_vm_cell(EP, online_rate=1.0, seed=1),
            single_vm_cell(EP, scheduler="asman", online_rate=0.4, seed=1),
            single_vm_cell(WorkloadSpec("nas", "EP", scale=0.1),
                           online_rate=0.4, seed=1),
            single_vm_cell(EP, online_rate=0.4, seed=1,
                           sched_config=SchedulerConfig(
                               work_conserving=True)),
        ]
        keys = {v.cache_key("salt") for v in variants}
        assert len(keys) == len(variants)
        assert base.cache_key("salt") not in keys

    def test_salt_rekeys(self):
        spec = single_vm_cell(EP)
        assert spec.cache_key("v1") != spec.cache_key("v2")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CellSpec(kind="bogus")
        with pytest.raises(ConfigurationError):
            CellSpec(kind="single_vm")  # needs a workload
        with pytest.raises(ConfigurationError):
            CellSpec(kind="specjbb", warehouses=0)
        with pytest.raises(ConfigurationError):
            single_vm_cell(EP, on_deadline="explode")
        with pytest.raises(ConfigurationError):
            WorkloadSpec("cuda", "LU")

    def test_specs_pickle(self):
        spec = single_vm_cell(EP, scheduler="asman", online_rate=0.4,
                              seed=3, collect_scatter=True)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.canonical() == spec.canonical()

    def test_canonical_value_rejects_exotic(self):
        with pytest.raises(ConfigurationError):
            canonical_value(object())

    @settings(max_examples=25, deadline=None)
    @given(scheduler=st.sampled_from(["credit", "asman", "con"]),
           rate=st.sampled_from([1.0, 2 / 3, 0.4, 2 / 9]),
           seed=st.integers(1, 50),
           scale=st.floats(0.01, 2.0))
    def test_key_is_pure_function_of_spec(self, scheduler, rate, seed,
                                          scale):
        wl = WorkloadSpec("nas", "LU", scale=scale)
        a = single_vm_cell(wl, scheduler=scheduler, online_rate=rate,
                           seed=seed)
        b = single_vm_cell(WorkloadSpec("nas", "LU", scale=scale),
                           scheduler=scheduler, online_rate=rate, seed=seed)
        assert a.cache_key("s") == b.cache_key("s")
        assert a.canonical() == b.canonical()


# --------------------------------------------------------------------- #
# Cache: round-trip, invalidation, corruption
# --------------------------------------------------------------------- #
class TestResultCache:
    def test_round_trip_returns_stored_result(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        spec = single_vm_cell(EP, online_rate=0.4)
        hit, _ = cache.get(spec)
        assert not hit
        value = execute_cell(spec)
        cache.put(spec, value)
        hit, got = cache.get(spec)
        assert hit
        assert isinstance(got, SingleVmResult)
        assert got.runtime_seconds == value.runtime_seconds
        assert result_fingerprint(got) == result_fingerprint(value)

    def test_salt_change_misses(self, tmp_path):
        spec = single_vm_cell(EP, online_rate=0.4)
        value = execute_cell(spec)
        old = ResultCache(tmp_path, salt="version-1")
        old.put(spec, value)
        new = ResultCache(tmp_path, salt="version-2")
        hit, _ = new.get(spec)
        assert not hit
        # ... and the old salt still hits: entries coexist per salt.
        hit, _ = ResultCache(tmp_path, salt="version-1").get(spec)
        assert hit

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = single_vm_cell(EP, online_rate=0.4)
        key = cache.put(spec, execute_cell(spec))
        (tmp_path / key[:2] / f"{key}.pkl").write_bytes(b"not a pickle")
        hit, value = cache.get(spec)
        assert not hit and value is None

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = single_vm_cell(EP, online_rate=0.4)
        cache.put(spec, execute_cell(spec))
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["stores"] == 1
        assert cache.clear() == 1
        assert cache.stats()["entries"] == 0
        out = cache.write_stats(tmp_path / "stats.json")
        assert json.loads(out.read_text())["stores"] == 1


# --------------------------------------------------------------------- #
# Executor: job resolution, pool map, batch semantics
# --------------------------------------------------------------------- #
class TestJobsResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_beats_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        set_default_jobs(2)
        try:
            assert resolve_jobs() == 2
            assert resolve_jobs(5) == 5
        finally:
            set_default_jobs(None)

    def test_auto_and_validation(self):
        assert resolve_jobs("auto") >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ConfigurationError):
            resolve_jobs(-1)
        with pytest.raises(ConfigurationError):
            resolve_jobs("many")
        with pytest.raises(ConfigurationError):
            set_default_jobs("bogus")

    def test_pool_map_preserves_order(self):
        items = list(range(10))
        assert pool_map(_double, items, jobs=1) == [x * 2 for x in items]
        assert pool_map(_double, items, jobs=2) == [x * 2 for x in items]


class TestRunCells:
    def _batch(self):
        # Fig 1(a) / Fig 7 style cells: LU under both schedulers at the
        # paper rates, one seed, tiny scale.
        return [single_vm_cell(LU, scheduler=sched, online_rate=rate,
                               seed=1, collect_scatter=(rate == 0.4))
                for sched in ("credit", "asman")
                for rate in (1.0, 0.4)]

    def test_serial_and_parallel_runs_are_bit_identical(self):
        cells = self._batch()
        serial = run_cells(cells, jobs=1, cache=None)
        parallel = run_cells(cells, jobs=4, cache=None)
        assert serial.fingerprints() == parallel.fingerprints()
        assert (serial.combined_fingerprint()
                == parallel.combined_fingerprint())
        for spec in cells:
            a = serial.value(spec)
            b = parallel.value(spec)
            assert isinstance(a, SingleVmResult)
            assert isinstance(b, SingleVmResult)
            assert a.runtime_seconds == b.runtime_seconds
            assert a.spin_summary == b.spin_summary
            assert a.spin_scatter == b.spin_scatter

    def test_duplicate_specs_coalesce(self):
        spec = single_vm_cell(EP, online_rate=0.4)
        results = run_cells([spec, spec, single_vm_cell(EP,
                                                        online_rate=0.4)])
        assert len(results) == 1

    def test_cache_hit_skips_execution(self, tmp_path):
        cache = ResultCache(tmp_path)
        cells = [single_vm_cell(EP, online_rate=r) for r in (1.0, 0.4)]
        cold = run_cells(cells, cache=cache)
        assert cold.cache_hits == 0 and cache.stores == 2
        warm = run_cells(cells, cache=cache)
        assert warm.cache_hits == 2
        assert warm.fingerprints() == cold.fingerprints()
        # A salt bump (new code version) invalidates the whole batch.
        stale = run_cells(cells, cache=ResultCache(tmp_path, salt="next"))
        assert stale.cache_hits == 0
        assert stale.fingerprints() == cold.fingerprints()

    def test_default_cache_is_used(self, tmp_path):
        assert get_default_cache() is None
        cache = ResultCache(tmp_path)
        set_default_cache(cache)
        try:
            run_cells([single_vm_cell(EP, online_rate=0.4)])
            assert cache.stores == 1
        finally:
            set_default_cache(None)


# --------------------------------------------------------------------- #
# Structured unfinished results (pool workers must not die on deadlines)
# --------------------------------------------------------------------- #
class TestUnfinishedResults:
    def test_single_vm_deadline_returns_structured_result(self):
        r = run_single_vm(lambda: LU.build(), online_rate=0.4, seed=1,
                          deadline_cycles=units.ms(1),
                          on_deadline="return")
        assert not r.finished
        assert r.events_executed > 0
        with pytest.raises(SimulationError):
            r.raise_if_unfinished()
        clone = pickle.loads(pickle.dumps(r))  # pool-friendly
        assert not clone.finished

    def test_multi_vm_deadline_returns_structured_result(self):
        lu = WorkloadSpec("nas", "LU", scale=0.05, rounds=3)
        ep = WorkloadSpec("nas", "EP", scale=0.05, rounds=3)
        assignments = [("V1", lu.build, True), ("V2", ep.build, False)]
        r = run_multi_vm(assignments, deadline_cycles=units.ms(1),
                         on_deadline="return")
        assert not r.finished
        assert set(r.labels) == {"V1", "V2"}
        with pytest.raises(SimulationError):
            r.raise_if_unfinished()
        assert pickle.loads(pickle.dumps(r)).events_executed > 0

    def test_deadline_cell_is_cacheable(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = single_vm_cell(LU, online_rate=0.4,
                              deadline_cycles=units.ms(1),
                              on_deadline="return")
        results = run_cells([spec], cache=cache)
        value = results.value(spec)
        assert isinstance(value, SingleVmResult)
        assert not value.finished
        warm = run_cells([spec], cache=cache)
        assert warm.cache_hits == 1


# --------------------------------------------------------------------- #
# Figure-level determinism (the acceptance criterion's shape)
# --------------------------------------------------------------------- #
class TestFigureDeterminism:
    def test_fig01a_serial_vs_parallel(self):
        from repro.experiments.figures import fig01_lu_runtime
        serial = fig01_lu_runtime(scale=0.05, seeds=(1,), jobs=1,
                                  cache=None)
        parallel = fig01_lu_runtime(scale=0.05, seeds=(1,), jobs=4,
                                    cache=None)
        assert serial.series == parallel.series
        assert serial.fingerprint == parallel.fingerprint
        assert serial.fingerprint is not None
