"""Trace-driven workloads (JSON replay)."""

import json

import pytest

from repro import units
from repro.errors import WorkloadError
from repro.guest.ops import BarrierOp, Compute, Critical, Sleep
from repro.workloads.trace import (TraceWorkload, decode_op, dump_trace,
                                   encode_op, load_trace, load_trace_file)
from tests.conftest import Harness


def minimal_doc(**over):
    doc = {
        "name": "demo",
        "threads": [
            {"vcpu": 0, "ops": [{"op": "compute", "cycles": 10_000}]},
        ],
    }
    doc.update(over)
    return doc


class TestOpCodec:
    @pytest.mark.parametrize("record,expected_type", [
        ({"op": "compute", "cycles": 5}, Compute),
        ({"op": "critical", "lock": "L", "hold": 7}, Critical),
        ({"op": "barrier", "barrier": "B"}, BarrierOp),
        ({"op": "sleep", "cycles": 9}, Sleep),
    ])
    def test_decode_kinds(self, record, expected_type):
        assert isinstance(decode_op(record), expected_type)

    def test_decode_unknown_kind(self):
        with pytest.raises(WorkloadError):
            decode_op({"op": "teleport"})

    def test_decode_missing_field(self):
        with pytest.raises(WorkloadError):
            decode_op({"op": "critical", "lock": "L"})

    def test_roundtrip_all_kinds(self):
        from repro.guest.ops import (FlagSet, FlagWait, SemDown, SemUp)
        ops = [Compute(5), Critical("L", 7), BarrierOp("B"),
               FlagSet("F", 2), FlagWait("F", 2), SemDown("S"),
               SemUp("S"), Sleep(9)]
        for op in ops:
            assert decode_op(encode_op(op)) == op


class TestLoadValidation:
    def test_minimal_loads(self):
        wl = load_trace(json.dumps(minimal_doc()))
        assert wl.name == "trace.demo"
        assert wl.num_threads == 1

    def test_invalid_json(self):
        with pytest.raises(WorkloadError):
            load_trace("{nope")

    def test_non_object_root(self):
        with pytest.raises(WorkloadError):
            load_trace("[1, 2]")

    def test_missing_name(self):
        with pytest.raises(WorkloadError):
            TraceWorkload(minimal_doc(name=""))

    def test_empty_threads(self):
        with pytest.raises(WorkloadError):
            TraceWorkload(minimal_doc(threads=[]))

    def test_thread_without_ops(self):
        with pytest.raises(WorkloadError):
            TraceWorkload(minimal_doc(threads=[{"vcpu": 0, "ops": []}]))

    def test_undeclared_barrier_rejected_at_install(self, rng):
        doc = minimal_doc(threads=[
            {"vcpu": 0, "ops": [{"op": "barrier", "barrier": "B"}]}])
        wl = TraceWorkload(doc)
        h = Harness()
        with pytest.raises(WorkloadError):
            wl.install(h.kernel, rng)


class TestExecution:
    def test_runs_to_completion(self, rng):
        doc = {
            "name": "two",
            "threads": [
                {"vcpu": 0, "ops": [
                    {"op": "compute", "cycles": units.us(200)},
                    {"op": "barrier", "barrier": "B"}]},
                {"vcpu": 1, "ops": [
                    {"op": "compute", "cycles": units.us(100)},
                    {"op": "barrier", "barrier": "B"}]},
            ],
            "barriers": {"B": 2},
            "repeat": 3,
        }
        wl = TraceWorkload(doc)
        h = Harness(num_pcpus=2, num_vcpus=2)
        wl.install(h.kernel, rng)
        assert h.run_until_done(deadline_ms=2000)
        assert wl.rounds_completed() == 3
        assert h.kernel.barriers["B"].crossings == 3

    def test_dump_then_load_runs(self, rng, tmp_path):
        text = dump_trace(
            "rt", [[Compute(units.us(50)), Critical("L", 2000)],
                   [Compute(units.us(60)), Critical("L", 2000)]])
        path = tmp_path / "trace.json"
        path.write_text(text)
        wl = load_trace_file(path)
        h = Harness(num_pcpus=2, num_vcpus=2)
        wl.install(h.kernel, rng)
        assert h.run_until_done(deadline_ms=2000)
        assert h.kernel.locks["L"].acquisitions == 2

    def test_round_robin_vcpu_when_null(self, rng):
        doc = minimal_doc(threads=[
            {"vcpu": None, "ops": [{"op": "compute", "cycles": 100}]},
            {"vcpu": None, "ops": [{"op": "compute", "cycles": 100}]},
        ])
        wl = TraceWorkload(doc)
        h = Harness(num_pcpus=2, num_vcpus=2)
        wl.install(h.kernel, rng)
        tasks = [t for t in h.kernel.tasks if not t.daemon]
        assert {t.vcpu.index for t in tasks} == {0, 1}
