"""Configuration validation."""

import pytest

from repro import units
from repro.config import (GuestConfig, LearningConfig, MachineConfig,
                          MonitorConfig, SchedulerConfig, VMConfig,
                          vcpu_online_rate, weight_proportion)
from repro.errors import ConfigurationError


class TestMachineConfig:
    def test_defaults_match_paper_testbed(self):
        cfg = MachineConfig()
        assert cfg.num_pcpus == 8
        assert cfg.sockets == 2

    def test_rejects_zero_pcpus(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_pcpus=0)

    def test_rejects_indivisible_sockets(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(num_pcpus=8, sockets=3)

    def test_rejects_negative_ipi_latency(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(ipi_latency=-1)


class TestSchedulerConfig:
    def test_defaults_match_xen_credit(self):
        cfg = SchedulerConfig()
        assert cfg.slice_cycles == units.ms(30)
        assert cfg.tick_cycles == units.ms(10)
        assert cfg.assign_slots == 3
        assert cfg.credit_per_tick == 100

    def test_slice_must_be_tick_multiple(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(slice_cycles=units.ms(25), tick_cycles=units.ms(10))

    def test_rejects_zero_tick(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(tick_cycles=0)

    def test_rejects_zero_assign_slots(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(assign_slots=0)

    def test_rejects_negative_context_switch(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(context_switch_cycles=-1)

    def test_sampled_accounting_is_default(self):
        assert SchedulerConfig().exact_accounting is False


class TestLearningConfig:
    def test_defaults_valid(self):
        cfg = LearningConfig()
        assert 0 <= cfg.recency < 1
        assert 0 <= cfg.experimentation < 1
        assert len(cfg.candidates) >= 2

    def test_rejects_bad_recency(self):
        with pytest.raises(ConfigurationError):
            LearningConfig(recency=1.0)
        with pytest.raises(ConfigurationError):
            LearningConfig(recency=-0.1)

    def test_rejects_bad_experimentation(self):
        with pytest.raises(ConfigurationError):
            LearningConfig(experimentation=1.0)

    def test_rejects_single_candidate(self):
        with pytest.raises(ConfigurationError):
            LearningConfig(candidates=(units.ms(1),))

    def test_rejects_unsorted_candidates(self):
        with pytest.raises(ConfigurationError):
            LearningConfig(candidates=(units.ms(4), units.ms(2)))

    def test_rejects_nonpositive_candidate(self):
        with pytest.raises(ConfigurationError):
            LearningConfig(candidates=(0, units.ms(2)))

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ConfigurationError):
            LearningConfig(initial_scale=0.0)


class TestMonitorConfig:
    def test_defaults_match_paper(self):
        cfg = MonitorConfig()
        assert cfg.delta_exp == 20
        assert cfg.over_threshold_cycles == 2 ** 20
        assert cfg.measure_floor_cycles == 2 ** 10

    def test_floor_must_not_exceed_delta(self):
        with pytest.raises(ConfigurationError):
            MonitorConfig(delta_exp=10, measure_floor_exp=12)


class TestGuestConfig:
    def test_rejects_zero_timeslice(self):
        with pytest.raises(ConfigurationError):
            GuestConfig(timeslice_cycles=0)

    def test_rejects_negative_spin_budget(self):
        with pytest.raises(ConfigurationError):
            GuestConfig(futex_spin_cycles=-1)

    def test_irq_daemon_disabled_by_zero_interval(self):
        cfg = GuestConfig(irq_interval_cycles=0)
        assert cfg.irq_interval_cycles == 0

    def test_rejects_zero_irq_lock_period(self):
        with pytest.raises(ConfigurationError):
            GuestConfig(irq_lock_period=0)


class TestVMConfig:
    def test_valid_default(self):
        cfg = VMConfig(name="v")
        assert cfg.num_vcpus == 4
        assert cfg.weight == 256

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            VMConfig(name="")

    def test_rejects_zero_vcpus(self):
        with pytest.raises(ConfigurationError):
            VMConfig(name="v", num_vcpus=0)

    def test_rejects_zero_weight(self):
        with pytest.raises(ConfigurationError):
            VMConfig(name="v", weight=0)


class TestEquations:
    """Equations (1) and (2) from the paper."""

    def test_weight_proportion(self):
        assert weight_proportion([256, 256], 0) == pytest.approx(0.5)
        assert weight_proportion([128, 256], 0) == pytest.approx(1 / 3)

    def test_weight_proportions_sum_to_one(self):
        weights = [256, 128, 64, 32]
        total = sum(weight_proportion(weights, i) for i in range(4))
        assert total == pytest.approx(1.0)

    def test_rejects_zero_total_weight(self):
        with pytest.raises(ConfigurationError):
            weight_proportion([0], 0)

    @pytest.mark.parametrize("weight,expected", [
        (256, 1.0), (128, 2 / 3), (64, 0.4), (32, 2 / 9),
    ])
    def test_paper_online_rates(self, weight, expected):
        """The paper's Section 5.2 table: weights 256/128/64/32 against an
        idle Domain-0 (weight 256) give 100/66.7/40/22.2%."""
        omega = weight_proportion([weight, 256], 0)
        assert vcpu_online_rate(8, omega, 4) == pytest.approx(expected)

    def test_online_rate_capped_at_one(self):
        assert vcpu_online_rate(8, 1.0, 4) == 1.0

    def test_online_rate_rejects_zero_vcpus(self):
        with pytest.raises(ConfigurationError):
            vcpu_online_rate(8, 0.5, 0)
