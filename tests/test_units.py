"""Units and conversion helpers."""

import pytest

from repro import units


class TestConversions:
    def test_cpu_frequency_is_paper_testbed(self):
        # Xeon X5410: 2.33 GHz.
        assert units.CPU_HZ == 2_330_000_000

    def test_ms_roundtrip(self):
        assert units.to_ms(units.ms(30)) == pytest.approx(30.0)

    def test_us_is_thousandth_of_ms(self):
        assert units.us(1000) == units.ms(1)

    def test_seconds_roundtrip(self):
        assert units.to_seconds(units.seconds(2.5)) == pytest.approx(2.5)

    def test_ms_truncates_to_integer_cycles(self):
        assert isinstance(units.ms(0.1), int)

    def test_zero_is_zero(self):
        assert units.ms(0) == 0
        assert units.us(0) == 0
        assert units.seconds(0) == 0

    def test_cycles_per_second_consistency(self):
        assert units.CYCLES_PER_S == units.CPU_HZ
        assert units.CYCLES_PER_MS * 1000 == units.CPU_HZ
        assert units.CYCLES_PER_US * 1_000_000 <= units.CPU_HZ


class TestProducerValidation:
    """ms/us/seconds reject poisoned inputs at the conversion boundary
    instead of propagating them into the event heap."""

    @pytest.mark.parametrize("producer",
                             [units.ms, units.us, units.seconds])
    def test_nan_rejected(self, producer):
        with pytest.raises(ValueError, match="NaN"):
            producer(float("nan"))

    @pytest.mark.parametrize("producer",
                             [units.ms, units.us, units.seconds])
    @pytest.mark.parametrize("sign", [1.0, -1.0])
    def test_infinity_rejected(self, producer, sign):
        with pytest.raises(ValueError, match="infinite"):
            producer(sign * float("inf"))

    @pytest.mark.parametrize("producer",
                             [units.ms, units.us, units.seconds])
    def test_negative_rejected(self, producer):
        with pytest.raises(ValueError, match="negative"):
            producer(-1)
        with pytest.raises(ValueError, match="negative"):
            producer(-0.001)

    def test_truncation_unchanged_for_valid_inputs(self):
        # The seed's behaviour (int() truncation toward zero) must be
        # preserved exactly — event timestamps depend on it.
        assert units.ms(0.1) == int(0.1 * units.CYCLES_PER_MS)
        assert units.us(1.7) == int(1.7 * units.CYCLES_PER_US)
        assert units.seconds(2.5) == int(2.5 * units.CYCLES_PER_S)

    def test_deterministic_across_calls(self):
        assert all(units.ms(3.3) == units.ms(3.3) for _ in range(100))


class TestLog2Cycles:
    def test_exact_powers(self):
        assert units.log2_cycles(1024) == pytest.approx(10.0)
        assert units.log2_cycles(1 << 20) == pytest.approx(20.0)

    def test_monotone_between_powers(self):
        a = units.log2_cycles(1500)
        assert 10.0 < a < 11.0

    def test_zero_and_negative_clamped(self):
        assert units.log2_cycles(0) == 0.0
        assert units.log2_cycles(-5) == 0.0

    def test_one(self):
        assert units.log2_cycles(1) == pytest.approx(0.0)


class TestThresholds:
    def test_delta_is_twenty(self):
        # Paper Section 4.2: delta = 20.
        assert units.DELTA_EXP == 20
        assert units.OVER_THRESHOLD_CYCLES == 2 ** 20

    def test_measure_floor_is_two_to_ten(self):
        assert units.MEASURE_FLOOR_CYCLES == 2 ** 10

    def test_over_threshold_is_submillisecond(self):
        # 2^20 cycles at 2.33 GHz is ~0.45 ms: long waits are detectable
        # well before one scheduling tick.
        assert units.to_ms(units.OVER_THRESHOLD_CYCLES) < 1.0
