"""Edge cases and failure injection across layers."""

import pytest

from repro import units
from repro.config import MachineConfig, SchedulerConfig, VMConfig
from repro.errors import (GuestStateError, SchedulerInvariantError,
                          WorkloadError)
from repro.guest.kernel import GuestKernel
from repro.guest.ops import Compute, Critical, FlagSet, FlagWait
from repro.guest.task import Activity, Task, TaskState
from repro.hardware.machine import Machine
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.vmm.credit import CreditScheduler
from repro.vmm.vm import VM, VCPUState
from tests.conftest import Harness, quiet_guest_config


class TestSchedulerCorruptionDetection:
    """check_invariants must catch every class of corruption."""

    def _sched(self):
        sim = Simulator()
        trace = TraceBus()
        machine = Machine(MachineConfig(num_pcpus=2, sockets=1), sim)
        sched = CreditScheduler(machine, sim, trace, SchedulerConfig())
        vm = VM(0, VMConfig(name="a", num_vcpus=2,
                            guest=quiet_guest_config()), sim, trace)
        sched.add_vm(vm)
        return sched, vm

    def test_clean_state_passes(self):
        sched, vm = self._sched()
        sched.check_invariants()

    def test_detects_duplicate_runq_entry(self):
        sched, vm = self._sched()
        sched.runqs[1].append(vm.vcpus[0])  # already homed on 0
        with pytest.raises(SchedulerInvariantError):
            sched.check_invariants()

    def test_detects_home_mismatch(self):
        sched, vm = self._sched()
        vm.vcpus[0].home_pcpu_id = 1  # still queued on 0
        with pytest.raises(SchedulerInvariantError):
            sched.check_invariants()

    def test_detects_runnable_orphan(self):
        sched, vm = self._sched()
        sched.runqs[0].remove(vm.vcpus[0])
        with pytest.raises(SchedulerInvariantError):
            sched.check_invariants()

    def test_detects_wrong_state_in_runq(self):
        sched, vm = self._sched()
        vm.vcpus[0].state = VCPUState.BLOCKED  # but still queued
        with pytest.raises(SchedulerInvariantError):
            sched.check_invariants()

    def test_remove_from_wrong_runq_raises(self):
        sched, vm = self._sched()
        v = vm.vcpus[0]
        sched.runqs[0].remove(v)
        with pytest.raises(SchedulerInvariantError):
            sched._remove_from_runq(v)


class TestGuestFailureInjection:
    def test_workload_exception_propagates(self, harness):
        def broken():
            yield Compute(1000)
            raise RuntimeError("application crashed")

        harness.kernel.spawn("t", broken(), 0)
        with pytest.raises(RuntimeError, match="application crashed"):
            harness.run_until_done()

    def test_double_release_detected(self, harness):
        lk = harness.kernel.lock("L")
        t = harness.kernel.spawn("t", iter([Compute(100)]), 0)
        with pytest.raises(GuestStateError):
            lk.release(t)

    def test_activity_pause_before_start_is_noop(self):
        act = Activity(100, lambda: None)
        act.pause(50)  # never armed
        assert act.remaining == 100

    def test_require_state_raises(self, sim, trace):
        vm = VM(0, VMConfig(name="v", num_vcpus=1), sim, trace)
        t = Task("t", iter(()), vm.vcpus[0])
        with pytest.raises(GuestStateError):
            t.require_state(TaskState.RUNNING)

    def test_on_all_done_callbacks_fire(self, harness):
        fired = []
        harness.kernel.on_all_done(lambda: fired.append(True))
        harness.kernel.spawn("t", iter([Compute(1000)]), 0)
        harness.run_until_done()
        assert fired == [True]

    def test_unknown_op_rejected(self, harness):
        class Alien:
            pass

        harness.kernel.spawn("t", iter([Alien()]), 0)
        with pytest.raises(WorkloadError):
            harness.run_until_done()


class TestFlagEdgeCases:
    def test_flag_satisfied_while_spinner_offline(self):
        """The producer raises the flag while the consumer's VCPU is
        descheduled; the consumer proceeds on its next online window."""
        h = Harness(num_pcpus=1, num_vcpus=1)
        _, k2 = h.add_vm("vm1", num_vcpus=1)
        consumer = h.kernel.spawn(
            "c", iter([FlagWait("f", 1), Compute(100)]), 0)
        producer = k2.spawn(
            "p", iter([Compute(units.ms(5)), FlagSet("f", 1)]), 0)
        # Two VMs share one PCPU: while the producer runs, the consumer
        # is offline; the flag-set happens during that window.
        h.start()
        # The producer's own kernel owns flag "f" of ITS guest; flags are
        # per-guest, so give the consumer its own producer task instead.
        done = h.sim.run_until_true(lambda: producer.done,
                                    deadline=units.seconds(2))
        assert done
        # Cross-VM flags don't exist: the consumer still spins.
        assert consumer.state is TaskState.SPINNING

    def test_same_guest_offline_resume(self):
        from repro.config import MachineConfig
        sim = Simulator()
        trace = TraceBus()
        machine = Machine(MachineConfig(num_pcpus=1, sockets=1), sim)
        sched = CreditScheduler(machine, sim, trace, SchedulerConfig())
        vm = VM(0, VMConfig(name="g", num_vcpus=1,
                            guest=quiet_guest_config()), sim, trace)
        sched.add_vm(vm)
        k = GuestKernel(vm, sim, trace, quiet_guest_config())
        # One VCPU, two tasks: consumer spins, producer can only run via
        # guest rotation... a spinner can't be rotated out, so this would
        # deadlock in a real unpreemptible spin too.  Use the timeslice:
        # the spinning task is SPINNING (not at an op boundary) and the
        # kernel never rotates it — document that semantic here.
        consumer = k.spawn("c", iter([FlagWait("f", 1)]), 0)
        producer = k.spawn("p", iter([FlagSet("f", 1)]), 0)
        sched.start()
        sim.run_until(units.ms(50))
        # Single-VCPU userspace spin against a same-VCPU producer
        # livelocks — exactly why real pipelined codes pin one thread
        # per core.  The simulator preserves that behaviour.
        assert consumer.state is TaskState.SPINNING
        assert not producer.done


class TestWakePlacement:
    def test_wake_prefers_idle_pcpu_when_home_busy(self):
        sim = Simulator()
        trace = TraceBus()
        machine = Machine(MachineConfig(num_pcpus=2, sockets=1), sim)
        sched = CreditScheduler(machine, sim, trace, SchedulerConfig())
        a = VM(0, VMConfig(name="a", num_vcpus=1,
                           guest=quiet_guest_config()), sim, trace)
        b = VM(1, VMConfig(name="b", num_vcpus=1,
                           guest=quiet_guest_config()), sim, trace)
        sched.add_vm(a)
        sched.add_vm(b)
        ka = GuestKernel(a, sim, trace, quiet_guest_config())
        kb = GuestKernel(b, sim, trace, quiet_guest_config())
        ka.spawn("busy", iter([Compute(units.seconds(1))]), 0)
        # b's home is pcpu 1; no task yet -> blocks at start.
        sched.start()
        sim.run_until(units.ms(5))
        # Move b's home onto the busy pcpu 0, then give it work.
        b.vcpus[0].home_pcpu_id = 0
        kb.spawn("late", iter([Compute(units.ms(1))]), 0)
        sim.run_until(units.ms(10))
        # It woke onto the idle PCPU 1 rather than queueing behind a.
        assert kb.finished or b.vcpus[0].is_online

    def test_wake_boost_set_only_with_credit(self, harness):
        v = harness.vm.vcpus[0]
        harness.start()
        harness.sim.run_until(units.ms(1))  # blocks (no tasks)
        v.credit = -50
        v.wake()
        assert not v.wake_boost
