"""simlint: every rule fires on a minimal positive case, stays quiet on
the idiomatic negative case, and honours the pragma escape hatch."""

import ast
import json
from pathlib import Path

import pytest

from repro.analysis import simlint
from repro.cli import main as cli_main

FIXTURE = Path(__file__).parent / "fixtures" / "simlint" / "violations.py"


def rules_in(source, **kwargs):
    """Lint a snippet as sim-scoped code; return the set of rule ids hit."""
    kwargs.setdefault("sim_scope", True)
    found, _ = simlint.lint_source(source, **kwargs)
    return {v.rule for v in found}


# --------------------------------------------------------------------- #
# Rule positives and negatives
# --------------------------------------------------------------------- #
class TestWallClock:
    def test_import_time(self):
        assert "wall-clock" in rules_in("import time\n")

    def test_from_datetime(self):
        assert "wall-clock" in rules_in("from datetime import datetime\n")

    def test_call(self):
        assert "wall-clock" in rules_in("x = time.perf_counter()\n")

    def test_out_of_scope_files_may_time(self):
        assert rules_in("import time\n", sim_scope=False) == set()


class TestRandomModule:
    def test_stdlib_import(self):
        assert "random-module" in rules_in("import random\n")

    def test_stdlib_call(self):
        assert "random-module" in rules_in("x = random.random()\n")

    def test_numpy_legacy_global(self):
        assert "random-module" in rules_in("x = np.random.randint(3)\n")

    def test_unseeded_default_rng(self):
        assert "random-module" in rules_in("g = np.random.default_rng()\n")

    def test_seeded_default_rng_ok(self):
        assert rules_in("g = np.random.default_rng(42)\n") == set()

    # -- aliased imports must not defeat detection ---------------------- #
    def test_stdlib_module_alias(self):
        src = "import random as rnd\nx = rnd.gauss(0, 1)\n"
        found, _ = simlint.lint_source(src, sim_scope=True)
        # both the import and the aliased call are caught
        assert [v.rule for v in found] == ["random-module", "random-module"]
        assert "rnd.gauss()" in found[1].message

    def test_stdlib_function_alias(self):
        src = "from random import random as _r\nx = _r()\n"
        found, _ = simlint.lint_source(src, sim_scope=True)
        assert [v.rule for v in found] == ["random-module", "random-module"]
        assert "random.random" in found[1].message

    def test_numpy_submodule_alias(self):
        src = "import numpy.random as npr\nx = npr.randint(3)\n"
        found, _ = simlint.lint_source(src, sim_scope=True)
        assert [v.rule for v in found] == ["random-module"]
        assert "numpy.random.randint()" in found[0].message

    def test_from_numpy_import_random(self):
        src = "from numpy import random as nr\ng = nr.default_rng()\n"
        assert "random-module" in rules_in(src)

    def test_aliased_unseeded_default_rng(self):
        src = "from numpy.random import default_rng\ng = default_rng()\n"
        assert "random-module" in rules_in(src)

    def test_aliased_seeded_default_rng_ok(self):
        src = "from numpy.random import default_rng\ng = default_rng(42)\n"
        assert rules_in(src) == set()

    def test_numpy_module_alias_legacy_global(self):
        src = "import numpy as xp\nx = xp.random.rand(3)\n"
        assert "random-module" in rules_in(src)


class TestNondetIter:
    def test_set_literal(self):
        assert "nondet-iter" in rules_in("for x in {1, 2}:\n    pass\n")

    def test_set_call(self):
        assert "nondet-iter" in rules_in("for x in set(y):\n    pass\n")

    def test_local_set_variable(self):
        src = ("def f(xs):\n"
               "    seen = set(xs)\n"
               "    for s in seen:\n"
               "        print(s)\n")
        assert "nondet-iter" in rules_in(src)

    def test_set_annotated_parameter(self):
        src = ("def f(occupied: Set[int]):\n"
               "    for pid in occupied:\n"
               "        print(pid)\n")
        assert "nondet-iter" in rules_in(src)

    def test_sorted_wrapper_ok(self):
        src = ("def f(occupied: Set[int]):\n"
               "    for pid in sorted(occupied):\n"
               "        print(pid)\n")
        assert rules_in(src) == set()

    def test_comprehension(self):
        assert "nondet-iter" in rules_in("y = [x for x in {1, 2}]\n")

    def test_list_iteration_ok(self):
        assert rules_in("for x in [1, 2]:\n    pass\n") == set()


class TestFloatIntoCycles:
    def test_float_literal_in_after(self):
        assert "float-into-cycles" in rules_in("sim.after(1.5, fn)\n")

    def test_division_in_every(self):
        assert "float-into-cycles" in rules_in("sim.every(n / 4, fn)\n")

    def test_self_sim_receiver(self):
        assert "float-into-cycles" in rules_in("self.sim.at(0.5, fn)\n")

    def test_units_producer_blessed(self):
        assert rules_in("sim.after(units.ms(0.5), fn)\n") == set()

    def test_int_wrapper_blessed(self):
        assert rules_in("sim.after(int(n * 1.5), fn)\n") == set()

    def test_floor_division_ok(self):
        assert rules_in("sim.after(n // 4, fn)\n") == set()

    def test_cycle_op_constructor(self):
        assert "float-into-cycles" in rules_in("ops.append(Compute(n / 2))\n")

    def test_unrelated_receiver_ignored(self):
        assert rules_in("queue.after(1.5, fn)\n") == set()


class TestSilentTruncation:
    def test_int_of_division(self):
        assert "silent-truncation" in rules_in("k = int(a / b)\n")

    def test_plain_int_ok(self):
        assert rules_in("k = int(a)\n") == set()


class TestMutableDefault:
    def test_list_literal(self):
        assert "mutable-default" in rules_in("def f(a=[]):\n    pass\n",
                                             sim_scope=False)

    def test_dict_call(self):
        assert "mutable-default" in rules_in("def f(a=dict()):\n    pass\n",
                                             sim_scope=False)

    def test_kwonly_default(self):
        assert "mutable-default" in rules_in(
            "def f(*, a={}):\n    pass\n", sim_scope=False)

    def test_none_default_ok(self):
        assert rules_in("def f(a=None):\n    pass\n",
                        sim_scope=False) == set()


class TestSlotsRequired:
    def test_plain_class_flagged(self):
        src = "class Task:\n    def __init__(self):\n        self.x = 1\n"
        assert "slots-required" in rules_in(src, hot_module=True)

    def test_slotted_class_ok(self):
        src = "class Task:\n    __slots__ = ('x',)\n"
        assert rules_in(src, hot_module=True) == set()

    def test_dataclass_slots_ok(self):
        src = ("@dataclass(frozen=True, slots=True)\n"
               "class Rec:\n    x: int\n")
        assert rules_in(src, hot_module=True) == set()

    def test_enum_exempt(self):
        src = "class Color(enum.Enum):\n    RED = 1\n"
        assert rules_in(src, hot_module=True) == set()

    def test_exception_exempt(self):
        src = "class BoomError(ValueError):\n    pass\n"
        assert rules_in(src, hot_module=True) == set()

    def test_cold_modules_unaffected(self):
        src = "class Config:\n    def __init__(self):\n        self.x = 1\n"
        assert rules_in(src, hot_module=False) == set()


class TestBareExcept:
    def test_bare(self):
        src = "try:\n    f()\nexcept:\n    g()\n"
        assert "bare-except" in rules_in(src, sim_scope=False)

    def test_base_exception_without_reraise(self):
        src = "try:\n    f()\nexcept BaseException:\n    g()\n"
        assert "bare-except" in rules_in(src, sim_scope=False)

    def test_base_exception_with_reraise_ok(self):
        src = "try:\n    f()\nexcept BaseException:\n    raise\n"
        assert rules_in(src, sim_scope=False) == set()

    def test_silent_pass(self):
        src = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert "bare-except" in rules_in(src, sim_scope=False)

    def test_typed_handler_ok(self):
        src = "try:\n    f()\nexcept ValueError:\n    g()\n"
        assert rules_in(src, sim_scope=False) == set()


# --------------------------------------------------------------------- #
# Pragmas
# --------------------------------------------------------------------- #
class TestPragmas:
    def test_rule_specific_waiver(self):
        src = "sim.after(1.5, fn)  # simlint: ignore[float-into-cycles]\n"
        found, used = simlint.lint_source(src, sim_scope=True)
        assert found == [] and used == 1

    def test_blanket_waiver(self):
        src = "import time  # simlint: ignore\n"
        found, used = simlint.lint_source(src, sim_scope=True)
        assert found == [] and used == 1

    def test_waiver_for_other_rule_does_not_apply(self):
        src = "import time  # simlint: ignore[mutable-default]\n"
        found, _ = simlint.lint_source(src, sim_scope=True)
        assert {v.rule for v in found} == {"wall-clock"}

    def test_waiver_on_other_line_does_not_apply(self):
        src = ("x = 1  # simlint: ignore\n"
               "import time\n")
        found, _ = simlint.lint_source(src, sim_scope=True)
        assert {v.rule for v in found} == {"wall-clock"}

    def test_waivers_counted_per_rule(self):
        src = ("import time  # simlint: ignore\n"
               "sim.after(1.5, fn)  # simlint: ignore[float-into-cycles]\n"
               "sim.after(2.5, fn)  # simlint: ignore[float-into-cycles]\n")
        tree = ast.parse(src)
        found, used, per_rule = simlint.lint_tree(
            tree, src, path="<w>", sim_scope=True, hot_module=False,
            rules=None)
        assert found == [] and used == 3
        assert per_rule == {"wall-clock": 1, "float-into-cycles": 2}

    def test_report_aggregates_waivers_by_rule(self):
        report = simlint.lint_paths([FIXTURE], assume_sim=True)
        assert report.waivers_by_rule == {"float-into-cycles": 1}

    def test_json_render_includes_waivers_by_rule(self):
        report = simlint.lint_paths([FIXTURE], assume_sim=True)
        doc = json.loads(simlint.render_json(report))
        assert doc["waivers_by_rule"] == {"float-into-cycles": 1}


# --------------------------------------------------------------------- #
# Scoping, drivers, reporters
# --------------------------------------------------------------------- #
class TestScoping:
    @pytest.mark.parametrize("rel,expect_sim,expect_hot", [
        ("src/repro/vmm/adaptive.py", True, False),
        ("src/repro/sim/engine.py", True, True),
        ("src/repro/guest/task.py", True, True),
        ("src/repro/config.py", False, False),
        ("src/repro/perf/harness.py", False, False),
        ("elsewhere/module.py", False, False),
    ])
    def test_scope_of(self, rel, expect_sim, expect_hot):
        sim, hot = simlint._scope_of(Path(rel), assume_sim=False)
        assert (sim, hot) == (expect_sim, expect_hot)

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown simlint rule"):
            simlint.lint_source("x = 1\n", rules=["no-such-rule"])

    def test_rule_subset(self):
        src = "import time\nimport random\n"
        found, _ = simlint.lint_source(src, sim_scope=True,
                                       rules=["wall-clock"])
        assert {v.rule for v in found} == {"wall-clock"}


class TestDriversAndReporters:
    def test_fixture_trips_every_rule(self):
        found, used = simlint.lint_file(FIXTURE, assume_sim=True)
        hit = {v.rule for v in found}
        expected = set(simlint.RULES) - {"slots-required"}
        assert expected <= hit
        assert used == 1  # the waived() pragma

    def test_lint_paths_report(self):
        report = simlint.lint_paths([FIXTURE.parent], assume_sim=True)
        assert report.files_checked == 1
        assert not report.ok

    def test_json_render_round_trips(self):
        report = simlint.lint_paths([FIXTURE], assume_sim=True)
        doc = json.loads(simlint.render_json(report))
        assert doc["ok"] is False
        assert doc["pragmas_used"] == 1
        first = doc["violations"][0]
        assert set(first) == {"path", "line", "col", "rule", "message"}

    def test_text_render_is_compiler_style(self):
        report = simlint.lint_paths([FIXTURE], assume_sim=True)
        line = simlint.render_text(report).splitlines()[0]
        path, lineno, col, rest = line.split(":", 3)
        assert path.endswith("violations.py")
        assert lineno.isdigit() and col.isdigit()


class TestCli:
    def test_lint_src_repro_is_clean(self, capsys):
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        assert cli_main(["lint", str(src)]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_lint_fixture_fails(self, capsys):
        assert cli_main(["lint", "--assume-sim", str(FIXTURE)]) == 1
        out = capsys.readouterr().out
        assert "wall-clock" in out and "mutable-default" in out

    def test_lint_json_format(self, capsys):
        code = cli_main(["lint", "--assume-sim", "--format", "json",
                         str(FIXTURE)])
        assert code == 1
        assert json.loads(capsys.readouterr().out)["ok"] is False

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in simlint.RULES:
            assert rule in out

    def test_unknown_rule_is_usage_error(self, capsys):
        assert cli_main(["lint", "--rules", "bogus", str(FIXTURE)]) == 2

    def test_rule_subset_via_cli(self, capsys):
        code = cli_main(["lint", "--assume-sim", "--rules",
                         "wall-clock", str(FIXTURE)])
        assert code == 1
        out = capsys.readouterr().out
        assert "wall-clock" in out and "mutable-default" not in out

    def test_max_waivers_within_budget(self, tmp_path, capsys):
        f = tmp_path / "waived.py"
        f.write_text("import time  # simlint: ignore\n", encoding="utf-8")
        assert cli_main(["lint", "--assume-sim", "--max-waivers", "1",
                         str(f)]) == 0

    def test_max_waivers_exceeded_fails(self, tmp_path, capsys):
        f = tmp_path / "waived.py"
        f.write_text("import time  # simlint: ignore\n", encoding="utf-8")
        assert cli_main(["lint", "--assume-sim", "--max-waivers", "0",
                         str(f)]) == 1
        err = capsys.readouterr().err
        assert "exceed the --max-waivers budget" in err

    def test_output_writes_report_file(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        code = cli_main(["lint", "--assume-sim", "--format", "json",
                         "--output", str(out_path), str(FIXTURE)])
        assert code == 1
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        assert doc["ok"] is False
        assert "wrote" in capsys.readouterr().out
