"""VCPU/VM state machines and the hypercall table."""

import pytest

from repro import units
from repro.config import VMConfig
from repro.errors import ConfigurationError, SchedulerInvariantError
from repro.vmm.hypercall import HYPERCALL_VCRD_OP, HypercallTable
from repro.vmm.vm import VCRD, VCPUState, VM
from tests.conftest import Harness


class _InertGuest:
    """Guest that neither blocks nor resumes — pure-state-machine tests."""

    def on_online(self, vcpu):
        pass

    def on_offline(self, vcpu):
        pass


@pytest.fixture
def vm(sim, trace):
    machine = VM(0, VMConfig(name="v", num_vcpus=2), sim, trace)
    machine.guest = _InertGuest()
    return machine


class TestVCPUStates:
    def test_initial_state_runnable(self, vm):
        assert all(v.state is VCPUState.RUNNABLE for v in vm.vcpus)

    def test_start_running(self, vm, machine):
        v = vm.vcpus[0]
        v.start_running(machine[0])
        assert v.state is VCPUState.RUNNING
        assert v.is_online
        assert v.pcpu is machine[0]

    def test_double_start_rejected(self, vm, machine):
        v = vm.vcpus[0]
        v.start_running(machine[0])
        with pytest.raises(SchedulerInvariantError):
            v.start_running(machine[1])

    def test_stop_running(self, vm, machine):
        v = vm.vcpus[0]
        v.start_running(machine[0])
        v.stop_running()
        assert v.state is VCPUState.RUNNABLE
        assert v.pcpu is None
        assert v.preemptions == 1

    def test_stop_when_not_running_rejected(self, vm):
        with pytest.raises(SchedulerInvariantError):
            vm.vcpus[0].stop_running()

    def test_cannot_run_blocked_vcpu(self, harness, machine):
        # Use the harness VM whose scheduler plumbing exists.
        v = harness.vm.vcpus[0]
        v.block()
        with pytest.raises(SchedulerInvariantError):
            v.start_running(machine[0])

    def test_online_accounting(self, sim, trace, machine):
        vm = VM(0, VMConfig(name="v", num_vcpus=1), sim, trace)
        vm.guest = _InertGuest()
        v = vm.vcpus[0]
        sim.at(100, lambda: v.start_running(machine[0]))
        sim.at(400, lambda: v.stop_running())
        sim.run()
        sim.at(1000, lambda: None)
        sim.run()
        assert v.online_cycles == 300
        assert v.online_rate() == pytest.approx(0.3)

    def test_wake_boost_cleared_on_preemption(self, vm, machine):
        v = vm.vcpus[0]
        v.wake_boost = True
        v.start_running(machine[0])
        v.stop_running()
        assert not v.wake_boost

    def test_name(self, vm):
        assert vm.vcpus[1].name == "v/v1"


class TestVMBlockWake:
    def test_block_and_wake_via_scheduler(self):
        h = Harness(num_pcpus=2, num_vcpus=1)
        v = h.vm.vcpus[0]
        h.start()
        # The null... guest kernel has no tasks: on first online it blocks.
        h.sim.run_until(units.ms(1))
        assert v.state is VCPUState.BLOCKED

    def test_wake_noop_unless_blocked(self, vm):
        v = vm.vcpus[0]
        before = v.state
        v.wake()  # RUNNABLE: no-op
        assert v.state is before

    def test_block_idempotent(self, harness):
        v = harness.vm.vcpus[0]
        v.block()
        v.block()
        assert v.state is VCPUState.BLOCKED


class TestVM:
    def test_vcrd_defaults_low(self, vm):
        assert vm.vcrd is VCRD.LOW

    def test_set_vcrd_emits_trace(self, harness):
        got = []
        harness.trace.subscribe("vcrd.change", got.append)
        harness.vm.set_vcrd(VCRD.HIGH)
        assert len(got) == 1
        assert got[0]["vcrd"] == "high"
        assert harness.vm.vcrd_changes == 1

    def test_set_vcrd_same_value_is_noop(self, harness):
        got = []
        harness.trace.subscribe("vcrd.change", got.append)
        harness.vm.set_vcrd(VCRD.LOW)
        assert got == []

    def test_cpu_time_sums_vcpus(self, sim, trace, machine):
        vm = VM(0, VMConfig(name="v", num_vcpus=2), sim, trace)
        vm.guest = _InertGuest()
        sim.at(0, lambda: vm.vcpus[0].start_running(machine[0]))
        sim.at(100, lambda: vm.vcpus[0].stop_running())
        sim.run()
        assert vm.cpu_time() == 100

    def test_online_vcpus(self, vm, machine):
        assert vm.online_vcpus() == []
        vm.vcpus[0].start_running(machine[0])
        assert vm.online_vcpus() == [vm.vcpus[0]]


class TestHypercalls:
    def test_do_vcrd_op_updates_vm(self, harness):
        table = HypercallTable(harness.sim, harness.trace)
        assert table.do_vcrd_op(harness.vm, VCRD.HIGH) == 0
        assert harness.vm.vcrd is VCRD.HIGH

    def test_invocation_counted(self, harness):
        table = HypercallTable(harness.sim, harness.trace)
        table.do_vcrd_op(harness.vm, VCRD.HIGH)
        table.do_vcrd_op(harness.vm, VCRD.LOW)
        assert table.invocations[HYPERCALL_VCRD_OP] == 2

    def test_unknown_hypercall_rejected(self, sim, trace):
        table = HypercallTable(sim, trace)
        with pytest.raises(ConfigurationError):
            table.call(9999)

    def test_bad_vcrd_value_rejected(self, harness):
        table = HypercallTable(harness.sim, harness.trace)
        with pytest.raises(ConfigurationError):
            table.do_vcrd_op(harness.vm, "high")

    def test_custom_hypercall_registration(self, sim, trace):
        table = HypercallTable(sim, trace)
        table.register(60, lambda x: x * 2)
        assert table.call(60, 21) == 42
