"""Op vocabulary validation."""

import pytest

from repro.errors import WorkloadError
from repro.guest.ops import (BarrierOp, Compute, Critical, FlagSet, FlagWait,
                             SemDown, SemUp, Sleep)


class TestOpValidation:
    def test_compute_accepts_zero(self):
        assert Compute(0).cycles == 0

    def test_compute_rejects_negative(self):
        with pytest.raises(WorkloadError):
            Compute(-1)

    def test_critical_fields(self):
        op = Critical("lk", 500)
        assert op.lock == "lk"
        assert op.hold == 500

    def test_critical_rejects_negative_hold(self):
        with pytest.raises(WorkloadError):
            Critical("lk", -1)

    def test_critical_rejects_empty_lock(self):
        with pytest.raises(WorkloadError):
            Critical("", 1)

    def test_barrier_rejects_empty_name(self):
        with pytest.raises(WorkloadError):
            BarrierOp("")

    def test_sem_ops_reject_empty_name(self):
        with pytest.raises(WorkloadError):
            SemDown("")
        with pytest.raises(WorkloadError):
            SemUp("")

    def test_sleep_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            Sleep(0)

    def test_flag_ops_reject_empty_name(self):
        with pytest.raises(WorkloadError):
            FlagSet("", 1)
        with pytest.raises(WorkloadError):
            FlagWait("", 1)

    def test_ops_are_frozen(self):
        op = Compute(10)
        with pytest.raises(AttributeError):
            op.cycles = 20

    def test_ops_are_hashable_values(self):
        assert Compute(10) == Compute(10)
        assert Critical("a", 1) != Critical("b", 1)
        assert len({Compute(10), Compute(10), Compute(20)}) == 2
