"""The fault-injection fabric: spec surface, determinism, degradation.

Covers the robustness acceptance criteria: faults-off runs are
bit-identical to a build without :mod:`repro.faults`; the same
(FaultSpec, seed) yields the same fingerprint at any job count; a
stuck-LOW monitor degrades ASMan exactly to plain credit; and no fault
class violates the Algorithm 3 invariants under the sanitizer.
"""

import dataclasses

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.experiments.robustness import (FAULT_CLASSES, QUICK_CLASSES,
                                          robustness_report)
from repro.experiments.runner import run_cells, run_single_vm
from repro.experiments.setup import Testbed as SimTestbed
from repro.experiments.setup import weight_for_rate
from repro.faults import FaultInjector, FaultSpec, MONITOR_MODES
from repro.parallel import (WorkloadSpec, result_fingerprint,
                            single_vm_cell)
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.tracing import TraceBus
from repro.vmm.hypercall import HypercallTable
from repro.workloads.nas import NasBenchmark

RATE = 2.0 / 9.0
LU = WorkloadSpec("nas", "LU", scale=0.3)


def _lu(scale: float = 0.3):
    return NasBenchmark.by_name("LU", scale=scale)


# --------------------------------------------------------------------- #
# FaultSpec: validation, parse/describe, no-op contract
# --------------------------------------------------------------------- #
class TestFaultSpec:
    def test_default_is_noop(self):
        spec = FaultSpec()
        assert spec.is_noop()
        assert spec.describe() == "none"

    def test_parse_empty_and_none(self):
        assert FaultSpec.parse("").is_noop()
        assert FaultSpec.parse("none").is_noop()

    def test_parse_describe_round_trip(self):
        spec = FaultSpec(hypercall_loss=0.25, ipi_jitter_cycles=1000,
                         monitor_mode="stuck_low",
                         degraded_pcpus=(0, 3), degraded_speed=0.5)
        assert FaultSpec.parse(spec.describe()) == spec

    def test_parse_degraded_pcpu_list(self):
        spec = FaultSpec.parse("degraded_pcpus=1+4+6,degraded_speed=0.25")
        assert spec.degraded_pcpus == (1, 4, 6)
        assert spec.degraded_speed == 0.25

    @pytest.mark.parametrize("text", [
        "hypercall_loss=1.5",               # probability out of range
        "ipi_drop=-0.1",
        "monitor_mode=flaky",               # unknown mode
        "hypercall_delay=0.5",              # delay without delay_cycles
        "degraded_pcpus=0",                 # degraded without a slow speed
        "degraded_speed=0.0",               # speed outside (0, 1]
        "no_such_field=1",
        "hypercall_loss",                   # missing '='
        "hypercall_loss=abc",
    ])
    def test_rejects_bad_specs(self, text):
        with pytest.raises(ConfigurationError):
            FaultSpec.parse(text)

    def test_monitor_modes_exported(self):
        assert set(MONITOR_MODES) == {"ok", "stuck_high", "stuck_low"}

    def test_spec_is_hashable_and_frozen(self):
        spec = FaultSpec(ipi_drop=0.5)
        assert hash(spec) == hash(FaultSpec(ipi_drop=0.5))
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.ipi_drop = 0.0  # type: ignore[misc]


# --------------------------------------------------------------------- #
# Cell composition: fault specs are part of the cache identity
# --------------------------------------------------------------------- #
class TestCellComposition:
    def test_faults_rekey_the_cell(self):
        clean = single_vm_cell(LU, "asman", online_rate=RATE, seed=1)
        f1 = single_vm_cell(LU, "asman", online_rate=RATE, seed=1,
                            faults=FaultSpec(ipi_drop=0.5))
        f2 = single_vm_cell(LU, "asman", online_rate=RATE, seed=1,
                            faults=FaultSpec(ipi_drop=0.5, seed=7))
        keys = {clean.cache_key("s"), f1.cache_key("s"), f2.cache_key("s")}
        assert len(keys) == 3  # clean vs faulted vs re-seeded faults

    def test_same_faults_same_key(self):
        a = single_vm_cell(LU, "asman", online_rate=RATE, seed=1,
                           faults=FaultSpec(hypercall_loss=0.5))
        b = single_vm_cell(LU, "asman", online_rate=RATE, seed=1,
                           faults=FaultSpec(hypercall_loss=0.5))
        assert a.cache_key("s") == b.cache_key("s")


# --------------------------------------------------------------------- #
# Injector determinism
# --------------------------------------------------------------------- #
class TestInjectorDeterminism:
    def _loss_run(self, fault_seed: int):
        sim = Simulator()
        trace = TraceBus()
        table = HypercallTable(sim, trace)
        inj = FaultInjector(FaultSpec(hypercall_loss=0.5, seed=fault_seed),
                            sim, trace, RngStreams(1))
        table.faults = inj
        delivered = []
        table.register(99, lambda: delivered.append(1) or 0)
        outcomes = [table.call(99) for _ in range(200)]
        return outcomes, len(delivered), inj.hypercalls_lost

    def test_same_fault_seed_same_schedule(self):
        assert self._loss_run(0) == self._loss_run(0)

    def test_fault_seed_decorrelates(self):
        a, _, _ = self._loss_run(0)
        b, _, _ = self._loss_run(1)
        assert a != b

    def test_loss_actually_drops(self):
        _, delivered, lost = self._loss_run(0)
        assert lost > 0 and delivered > 0
        assert delivered + lost == 200


# --------------------------------------------------------------------- #
# End-to-end determinism and the faults-off identity
# --------------------------------------------------------------------- #
class TestEndToEndDeterminism:
    def test_noop_spec_is_bit_identical_to_no_spec(self):
        clean = run_single_vm(_lu, scheduler="asman", online_rate=RATE,
                              seed=1)
        noop = run_single_vm(_lu, scheduler="asman", online_rate=RATE,
                             seed=1, faults=FaultSpec())
        assert result_fingerprint(clean) == result_fingerprint(noop)
        assert noop.fault_stats is None  # no injector was even built

    def test_faulted_run_repeats_exactly(self):
        spec = FaultSpec(hypercall_loss=0.5, ipi_drop=0.3,
                         ipi_jitter_cycles=units.us(50))
        a = run_single_vm(_lu, scheduler="asman", online_rate=RATE,
                          seed=1, faults=spec)
        b = run_single_vm(_lu, scheduler="asman", online_rate=RATE,
                          seed=1, faults=spec)
        assert result_fingerprint(a) == result_fingerprint(b)
        assert a.fault_stats == b.fault_stats
        assert sum(a.fault_stats.values()) > 0

    def test_job_count_invariance(self):
        wl = WorkloadSpec("nas", "LU", scale=0.15)
        cells = [
            single_vm_cell(wl, sched, online_rate=RATE, seed=1,
                           faults=faults)
            for sched in ("credit", "asman")
            for faults in (None, FaultSpec(hypercall_loss=0.5),
                           FaultSpec(monitor_mode="stuck_low"))
        ]
        serial = run_cells(cells, jobs=1, cache=None)
        fanned = run_cells(cells, jobs=2, cache=None)
        assert serial.combined_fingerprint() == fanned.combined_fingerprint()


# --------------------------------------------------------------------- #
# Degradation semantics
# --------------------------------------------------------------------- #
class TestDegradation:
    def test_stuck_low_reduces_asman_to_plain_credit(self):
        """With every report pinned LOW the adaptive layer never fires a
        hypercall, so the scheduling trajectory is *exactly* credit's."""
        credit = run_single_vm(_lu, scheduler="credit", online_rate=RATE,
                               seed=1)
        broken = run_single_vm(_lu, scheduler="asman", online_rate=RATE,
                               seed=1,
                               faults=FaultSpec(monitor_mode="stuck_low"))
        assert broken.runtime_cycles == credit.runtime_cycles

    def test_stuck_high_forces_coscheduling(self):
        clean = run_single_vm(_lu, scheduler="asman", online_rate=RATE,
                              seed=1, collect_timeline=True)
        stuck = run_single_vm(_lu, scheduler="asman", online_rate=RATE,
                              seed=1, collect_timeline=True,
                              faults=FaultSpec(monitor_mode="stuck_high"))
        assert stuck.co_online_fraction > clean.co_online_fraction

    def test_degraded_pcpus_slow_the_run(self):
        clean = run_single_vm(_lu, scheduler="credit", online_rate=RATE,
                              seed=1)
        slow = run_single_vm(_lu, scheduler="credit", online_rate=RATE,
                             seed=1,
                             faults=FaultSpec(degraded_pcpus=(0, 1, 2, 3),
                                              degraded_speed=0.25))
        assert slow.runtime_cycles > clean.runtime_cycles

    def test_ipi_drops_are_counted(self):
        r = run_single_vm(_lu, scheduler="asman", online_rate=RATE,
                          seed=1, faults=FaultSpec(ipi_drop=1.0))
        assert r.fault_stats["ipis_dropped"] > 0


# --------------------------------------------------------------------- #
# Invariants hold under every fault class (--sanitize)
# --------------------------------------------------------------------- #
class TestSanitizedUnderFaults:
    def _run(self, scheduler: str, spec: FaultSpec) -> SimTestbed:
        tb = SimTestbed(scheduler=scheduler, seed=1, sanitize=True,
                     faults=spec)
        tb.add_domain0()
        tb.add_vm("V1", weight=weight_for_rate(RATE), workload=_lu(0.2))
        tb.run_until_workloads_done(["V1"],
                                    deadline_cycles=units.seconds(120))
        assert tb.sanitizer is not None
        assert tb.sanitizer.schedules_checked > 0
        assert tb.sanitizer.violations == []
        return tb

    def test_hypercall_fault_storm_keeps_credit_conservation(self):
        """Lost/duplicated do_vcrd_op calls must not break Algorithm 3:
        the credit pool is conserved no matter which VCRD updates the
        VMM actually saw."""
        tb = self._run("asman", FaultSpec(hypercall_loss=0.5,
                                          hypercall_duplication=0.2,
                                          monitor_flip_period=units.ms(5)))
        assert sum(tb.faults.stats().values()) > 0

    def test_ipi_faults_keep_gang_invariants(self):
        self._run("asman", FaultSpec(ipi_drop=0.5,
                                     ipi_jitter_cycles=units.us(100)))

    def test_degraded_pcpus_keep_invariants(self):
        self._run("credit", FaultSpec(degraded_pcpus=(0, 1),
                                      degraded_speed=0.5))


# --------------------------------------------------------------------- #
# The robustness experiment driver
# --------------------------------------------------------------------- #
class TestRobustnessReport:
    def test_quick_classes_are_a_subset(self):
        assert set(QUICK_CLASSES) <= set(FAULT_CLASSES)
        assert FAULT_CLASSES["none"].is_noop()

    def test_report_shape_and_baseline(self):
        rep = robustness_report(workload="LU", scale=0.1, rate=RATE,
                                seeds=(1,), schedulers=("credit", "asman"),
                                classes=("none", "monitor_stuck_low"),
                                fairness=False, jobs=1, cache=None)
        assert len(rep.rows) == 4
        assert rep.fingerprint
        for sched in ("credit", "asman"):
            assert rep.row("none", sched).slowdown == 1.0
        # stuck-LOW never slows credit: it has no monitor to lie to.
        assert rep.row("monitor_stuck_low", "credit").slowdown == \
            pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            rep.row("none", "nope")

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            robustness_report(classes=("no_such_class",))

    def test_render_mentions_every_row(self):
        rep = robustness_report(workload="LU", scale=0.1, rate=RATE,
                                seeds=(1,), schedulers=("credit",),
                                classes=("none",), fairness=False,
                                jobs=1, cache=None)
        text = rep.render()
        assert "fault class" in text and "credit" in text
        assert "fingerprint" in text
