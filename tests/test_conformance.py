"""Conformance layer: fuzzer determinism, oracle, mutants, shrink, golden.

The full 200-scenario corpus runs in CI's dedicated ``conformance`` job;
here a smaller smoke corpus keeps the default test tier fast.  Slower
end-to-end cases (the smoke corpus itself, the shrinker) carry the
``conformance`` marker so they can be deselected with
``-m 'not conformance'``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.conformance import (Scenario, conform, generate, judge,
                               scenario_at)
from repro.conformance.golden import (GOLDEN_SCENARIOS,
                                      check as golden_check, record)
from repro.conformance.mutants import (MUTANT_ROLES, MUTANT_SCHEDULERS,
                                       install as install_mutants)
from repro.conformance.scenarios import SCALES, SINGLE_POOL
from repro.conformance.shrink import (replay_artifact, save_artifact,
                                      shrink)
from repro.errors import ConfigurationError
from repro.parallel.cells import CellSpec, WorkloadSpec, from_canonical

FIXTURES = Path(__file__).parent / "fixtures"


# --------------------------------------------------------------------- #
class TestFuzzer:
    def test_addressable_equals_enumerated(self):
        corpus = generate(25)
        for i in (0, 7, 12, 24):
            assert scenario_at(i) == corpus[i]

    def test_explicit_indices(self):
        assert generate([3, 9]) == [scenario_at(3), scenario_at(9)]

    def test_seed_changes_scenarios(self):
        a = [scenario_at(i, seed=1) for i in range(10)]
        b = [scenario_at(i, seed=2) for i in range(10)]
        assert a != b

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            scenario_at(-1)

    def test_drawn_cells_are_feasible(self):
        for sc in generate(60):
            base = sc.base
            assert base.num_pcpus >= base.num_vcpus
            if base.kind == "single_vm":
                q = base.online_rate * base.num_vcpus / base.num_pcpus
                assert q <= 0.9
                assert base.workload is not None
                assert base.workload.scale in SCALES[base.workload.family]
            else:
                assert base.assignments
            assert base.deadline_cycles is not None
            assert base.on_deadline == "return"

    def test_concurrent_flag_matches_pool(self):
        by_profile = {(fam, prof): conc
                      for fam, prof, _v, conc in SINGLE_POOL}
        for sc in generate(60):
            if sc.base.kind != "single_vm":
                continue
            w = sc.base.workload
            assert sc.concurrent == by_profile[(w.family, w.name)]

    def test_scenarios_round_trip_canonically(self):
        for sc in generate(20):
            doc = sc.base.canonical()
            assert from_canonical(doc).canonical() == doc

    def test_describe_mentions_shape(self):
        text = scenario_at(0).describe()
        assert "#0" in text and "v/" in text


# --------------------------------------------------------------------- #
@pytest.mark.conformance
class TestSmokeCorpus:
    def test_small_corpus_holds_and_is_deterministic(self):
        first = conform(scenarios=15, jobs=1, cache=None,
                        metamorphic_every=5)
        assert first.ok, "\n".join(v.render() for v in first.violations)
        again = conform(scenarios=15, jobs=1, cache=None,
                        metamorphic_every=5)
        assert first.fingerprints() == again.fingerprints()
        assert first.combined_fingerprint() == again.combined_fingerprint()

    def test_report_render_mentions_fingerprint(self):
        report = conform(scenarios=3, jobs=1, cache=None,
                         metamorphic_every=0)
        text = report.render()
        assert report.combined_fingerprint() in text
        assert "3 scenario(s)" in text

    def test_rejects_degenerate_arguments(self):
        with pytest.raises(ConfigurationError):
            conform(scenarios=0)
        with pytest.raises(ConfigurationError):
            conform(scenarios=1, schedulers=())


# --------------------------------------------------------------------- #
class TestOracle:
    def test_clean_scenario_judges_clean(self):
        sc = scenario_at(1)  # clean single-VM scenario (barrier2)
        assert sc.fault_free
        results = {s: _run(sc, s) for s in ("credit",)}
        assert judge(sc, results) == []

    def test_unexpected_result_type_is_flagged(self):
        sc = scenario_at(1)
        violations = judge(sc, {"credit": object()})
        assert [v.check for v in violations] == ["result-type"]

    def test_violation_render_has_context(self):
        sc = scenario_at(1)
        v = judge(sc, {"credit": object()})[0]
        assert "#1" in v.render() and "credit" in v.render()


def _run(sc: Scenario, scheduler: str):
    from repro.parallel.cells import execute_cell
    return execute_cell(sc.cell(scheduler))


# --------------------------------------------------------------------- #
@pytest.mark.conformance
class TestMutantRegression:
    """The seeded lost-VCPU bug must be caught, shrunk, and replayable."""

    def test_oracle_catches_lost_vcpu_mutant(self):
        install_mutants()
        # Scenario 12 (nas/SP, clean) exercises the broken wake path.
        sc = scenario_at(12)
        assert sc.fault_free
        results = {s: _run(sc, s) for s in ("credit", "mutant-lost-vcpu")}
        checks = {(v.check, v.scheduler)
                  for v in judge(sc, results, roles=MUTANT_ROLES)}
        assert ("liveness", "mutant-lost-vcpu") in checks
        assert ("cross-agreement", None) in checks

    def test_mutant_shrinks_to_tiny_machine(self, tmp_path):
        install_mutants()
        result = shrink(scenario_at(12),
                        schedulers=("credit", "mutant-lost-vcpu"),
                        roles=MUTANT_ROLES)
        small = result.minimized.base
        n_vms = 1 if small.kind == "single_vm" else len(small.assignments)
        assert n_vms <= 2
        assert small.num_pcpus <= 2
        assert small.num_vcpus <= 2
        # The artifact round-trips and still reproduces the signature.
        path = save_artifact(result, tmp_path / "artifact.json")
        outcome = replay_artifact(path)
        assert outcome.reproduced

    def test_checked_in_artifact_replays(self):
        path = FIXTURES / "conformance" / "lost_vcpu_minimized.json"
        outcome = replay_artifact(path)
        assert outcome.reproduced, outcome.render()

    def test_shrink_refuses_passing_scenario(self):
        sc = scenario_at(1)
        with pytest.raises(ConfigurationError):
            shrink(sc, schedulers=("credit",))

    def test_replay_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "not_artifact.json"
        p.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ConfigurationError):
            replay_artifact(p)

    def test_mutants_register_idempotently(self):
        install_mutants()
        install_mutants()
        from repro.experiments.setup import make_scheduler
        cls = make_scheduler("mutant-lost-vcpu")
        assert cls is MUTANT_SCHEDULERS["mutant-lost-vcpu"]

    def test_production_names_cannot_be_rebound(self):
        from repro.experiments.setup import register_scheduler
        from repro.vmm.credit import CreditScheduler

        class Impostor(CreditScheduler):
            name = "credit"

        with pytest.raises(ConfigurationError):
            register_scheduler("credit", Impostor)


# --------------------------------------------------------------------- #
@pytest.mark.conformance
class TestGolden:
    def test_fixtures_match(self):
        drifts = golden_check()
        assert drifts == [], "\n".join(d.render() for d in drifts)

    def test_record_is_deterministic(self):
        a = record("concurrent_mix")
        b = record("concurrent_mix")
        assert a["fingerprint"] == b["fingerprint"]
        assert a["events"] == b["events"]

    def test_concurrent_mix_contains_adaptation(self):
        doc = record("concurrent_mix")
        cats = {cat for _c, cat, _p in doc["events"]}
        assert "vcrd.change" in cats and "sched.cosched" in cats

    def test_noncurrent_mix_never_coschedules(self):
        doc = record("noncurrent_mix")
        cats = {cat for _c, cat, _p in doc["events"]}
        assert "sched.cosched" not in cats

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            record("nope")

    def test_missing_fixture_reported(self, tmp_path):
        drifts = golden_check(tmp_path, names=["concurrent_mix"])
        assert len(drifts) == 1 and "missing" in drifts[0].reason

    def test_scenarios_cover_required_regimes(self):
        assert set(GOLDEN_SCENARIOS) >= {
            "concurrent_mix", "noncurrent_mix", "faulted_degraded"}
        faulted = GOLDEN_SCENARIOS["faulted_degraded"]
        assert faulted.faults is not None
        assert faulted.faults.degraded_pcpus


# --------------------------------------------------------------------- #
class TestTraceCapture:
    def test_collect_trace_populates_events(self):
        spec = CellSpec(
            kind="single_vm", scheduler="credit", seed=3,
            num_pcpus=2, num_vcpus=2, online_rate=0.4,
            workload=WorkloadSpec("synthetic", "compute2", scale=0.3),
            collect_trace=("credit.assign", "workload.done"))
        res = _exec(spec)
        assert res.trace_events
        cats = {cat for _c, cat, _p in res.trace_events}
        assert cats <= {"credit.assign", "workload.done"}
        assert "workload.done" in cats
        # Payloads must be JSON-plain (canonical traces are fixtures).
        json.dumps(res.trace_events)

    def test_no_collect_trace_means_no_events(self):
        spec = CellSpec(
            kind="single_vm", scheduler="credit", seed=3,
            num_pcpus=2, num_vcpus=2, online_rate=0.4,
            workload=WorkloadSpec("synthetic", "compute2", scale=0.3))
        assert _exec(spec).trace_events is None

    def test_collect_trace_validation(self):
        with pytest.raises(ConfigurationError):
            CellSpec(kind="single_vm", scheduler="credit",
                     workload=WorkloadSpec("synthetic", "compute2"),
                     collect_trace=("",))


def _exec(spec: CellSpec):
    from repro.parallel.cells import execute_cell
    return execute_cell(spec)


# --------------------------------------------------------------------- #
class TestMetamorphicConstants:
    def test_twin_cells_for_clean_single(self):
        from repro.conformance.driver import _twin_cells
        sc = scenario_at(1)
        assert sc.fault_free and sc.base.kind == "single_vm"
        twins = _twin_cells(sc)
        assert set(twins) == {"noop-faults", "degraded"}
        assert twins["noop-faults"].faults.is_noop()
        deg = twins["degraded"].faults
        assert deg.degraded_pcpus == tuple(range(sc.base.num_pcpus))

    def test_no_twins_for_faulted(self):
        from repro.conformance.driver import _twin_cells
        faulted = next(sc for sc in generate(40) if not sc.fault_free)
        assert _twin_cells(faulted) == {}
