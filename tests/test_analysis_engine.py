"""Unit tests for the whole-program analysis substrate: the Project
indexer, the call graph, the taint summaries and the baseline workflow.

The fixture packages under ``tests/fixtures/lint/`` double as targets:
each is a tiny ``repro`` tree the engine indexes exactly like the real
one.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.callgraph import build_call_graph
from repro.analysis.engine import (
    Project,
    analyze,
    fingerprint_violation,
    load_baseline,
    partition_against_baseline,
    stable_rel_path,
    write_baseline,
)
from repro.analysis.simlint import Violation
from repro.analysis.taint import compute_summaries

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
CLEAN = FIXTURES / "clean_pkg" / "repro"
CYCLES = FIXTURES / "cycles_pkg" / "repro"
WALLCLOCK = FIXTURES / "wallclock_pkg" / "repro"


@pytest.fixture(scope="module")
def clean_project():
    return Project.load(CLEAN)


@pytest.fixture(scope="module")
def cycles_project():
    return Project.load(CYCLES)


# --------------------------------------------------------------------- #
# Project indexing and symbol resolution
# --------------------------------------------------------------------- #
class TestProjectIndex:
    def test_modules_named_from_tree(self, clean_project):
        assert {"repro", "repro.vmm.sched", "repro.asman.mon",
                "repro.metrics.fmt"} <= set(clean_project.modules)

    def test_classes_and_methods_indexed(self, clean_project):
        assert "repro.vmm.sched.Scheduler" in clean_project.classes
        assert "repro.vmm.sched.Scheduler.pick" in clean_project.functions
        assert "repro.vmm.sched.wire" in clean_project.functions

    def test_param_types_resolved(self, clean_project):
        init = clean_project.functions["repro.vmm.sched.Scheduler.__init__"]
        assert init.param_types["rng"] == "numpy.random.Generator"
        wire = clean_project.functions["repro.vmm.sched.wire"]
        assert wire.param_types["streams"].endswith("RngStreams")

    def test_attr_type_from_ctor(self, clean_project):
        t = clean_project.attr_type("repro.vmm.sched.Scheduler", "rng")
        assert t == "numpy.random.Generator"

    def test_return_type_resolved(self, clean_project):
        f = clean_project.functions["repro.vmm.sched.report_ms"]
        assert f.return_type == "float"

    def test_bad_root_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not a directory"):
            Project.load(tmp_path / "nope")

    def test_subclass_map_and_mro_lookup(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "base.py").write_text(
            "class Base:\n"
            "    def step(self) -> int:\n"
            "        return 0\n"
            "class Mid(Base):\n"
            "    pass\n"
            "class Leaf(Mid):\n"
            "    def step(self) -> int:\n"
            "        return 1\n",
            encoding="utf-8")
        project = Project.load(pkg)
        subs = project.subclasses["repro.base.Base"]
        assert {"repro.base.Mid", "repro.base.Leaf"} <= subs
        # Mid has no step of its own: MRO lookup walks to Base.
        hit = project.lookup_method("repro.base.Mid", "step")
        assert hit is not None and hit.qname == "repro.base.Base.step"


# --------------------------------------------------------------------- #
# Call graph
# --------------------------------------------------------------------- #
class TestCallGraph:
    def test_direct_function_edge(self, clean_project):
        graph = build_call_graph(clean_project)
        callees = {s.callee for s in
                   graph.callees_of("repro.vmm.sched.describe")
                   if not s.external}
        assert "repro.metrics.fmt.fmt_cycles" in callees

    def test_constructor_dispatch(self, clean_project):
        graph = build_call_graph(clean_project)
        callees = {s.callee for s in
                   graph.callees_of("repro.vmm.sched.wire")
                   if not s.external}
        assert "repro.vmm.sched.Scheduler.__init__" in callees
        assert "repro.vmm.sched.arm_in_ms" in callees

    def test_transitive_external_reachability(self):
        project = Project.load(WALLCLOCK)
        graph = build_call_graph(project)
        chains = graph.reachable_externals("repro.vmm.clock.stamp")
        assert "time.time" in chains
        hops = [site.caller for site in chains["time.time"]]
        assert hops == ["repro.vmm.clock.stamp",
                        "repro.metrics.host.hostclock"]

    def test_clean_functions_reach_no_wall_clock(self, clean_project):
        graph = build_call_graph(clean_project)
        chains = graph.reachable_externals("repro.vmm.sched.describe")
        assert "time.time" not in chains and "os.environ.get" not in chains


# --------------------------------------------------------------------- #
# Taint summaries
# --------------------------------------------------------------------- #
class TestTaintSummaries:
    def test_wrapper_param_becomes_cycle_sink(self, cycles_project):
        ctx = compute_summaries(cycles_project)
        arm = ctx.summaries["repro.vmm.timing.arm"]
        # arm(sim, delay): delay (index 1) flows into sim.after inside.
        assert 1 in arm.param_sink
        assert "sim." in arm.param_sink[1]

    def test_float_return_summary(self, cycles_project):
        ctx = compute_summaries(cycles_project)
        js = ctx.summaries["repro.vmm.timing.jitter_scale"]
        assert any(tag[0] == "float" for tag in js.returns)

    def test_ctor_attr_params_collected(self, clean_project):
        ctx = compute_summaries(clean_project)
        attrs = ctx.ctor_attr_params["repro.vmm.sched.Scheduler"]
        assert "rng" in attrs

    def test_summaries_converge(self, cycles_project):
        # A second full fixpoint from scratch lands on identical facts:
        # the iteration is deterministic and actually converged.
        a = compute_summaries(cycles_project)
        b = compute_summaries(cycles_project)
        snap_a = {q: s.snapshot() for q, s in a.summaries.items()}
        snap_b = {q: s.snapshot() for q, s in b.summaries.items()}
        assert snap_a == snap_b


# --------------------------------------------------------------------- #
# Fingerprints and the baseline round-trip
# --------------------------------------------------------------------- #
def _violation(path="/ck/a/repro/vmm/x.py", line=3, rule="cycle-unit-flow",
               message="m"):
    return Violation(path=path, line=line, col=1, rule=rule,
                     message=message)


class TestFingerprints:
    def test_stable_rel_path_strips_checkout_prefix(self):
        assert stable_rel_path("/home/a/src/repro/vmm/x.py") == \
            "repro/vmm/x.py"
        assert stable_rel_path("/other/ck/repro/vmm/x.py") == \
            "repro/vmm/x.py"
        assert stable_rel_path("/tmp/loose.py") == "loose.py"

    def test_line_shift_does_not_change_fingerprint(self):
        lines_a = ["", "", "sim.after(window, None)"]
        lines_b = ["", "", "", "", "sim.after(window, None)"]
        fp_a = fingerprint_violation(_violation(line=3), lines_a)
        fp_b = fingerprint_violation(_violation(line=5), lines_b)
        assert fp_a == fp_b

    def test_checkout_move_does_not_change_fingerprint(self):
        lines = ["", "", "sim.after(window, None)"]
        fp_a = fingerprint_violation(
            _violation(path="/ck1/repro/vmm/x.py"), lines)
        fp_b = fingerprint_violation(
            _violation(path="/somewhere/else/repro/vmm/x.py"), lines)
        assert fp_a == fp_b

    def test_anchor_text_change_does_change_fingerprint(self):
        fp_a = fingerprint_violation(
            _violation(), ["", "", "sim.after(window, None)"])
        fp_b = fingerprint_violation(
            _violation(), ["", "", "sim.after(delay, None)"])
        assert fp_a != fp_b


class TestBaselineRoundTrip:
    def test_round_trip_grandfathers_everything(self, tmp_path):
        v1 = _violation(line=3, message="first")
        v2 = _violation(line=7, rule="rng-provenance", message="second")
        sources = {v1.path: ["x"] * 10}
        out = tmp_path / "baseline.json"
        write_baseline([v1, v2], sources, out)
        baseline = load_baseline(out)
        new, grand, stale = partition_against_baseline(
            [v1, v2], sources, baseline)
        assert new == [] and stale == []
        assert len(grand) == 2

    def test_new_finding_fails_and_removed_goes_stale(self, tmp_path):
        v1 = _violation(line=3)
        sources = {v1.path: ["x"] * 10}
        out = tmp_path / "baseline.json"
        write_baseline([v1], sources, out)
        baseline = load_baseline(out)
        v_new = _violation(line=5, rule="rng-provenance", message="fresh")
        new, grand, stale = partition_against_baseline(
            [v_new], sources, baseline)
        assert new == [v_new] and grand == []
        assert len(stale) == 1
        assert stale[0]["rule"] == "cycle-unit-flow"

    def test_duplicate_anchors_get_distinct_fingerprints(self, tmp_path):
        # Two violations with the same rule/anchor text must not collapse
        # into one baseline entry.
        lines = ["dup()", "dup()"]
        v1 = _violation(line=1, message="a")
        v2 = _violation(line=2, message="b")
        sources = {v1.path: lines}
        out = tmp_path / "baseline.json"
        write_baseline([v1, v2], sources, out)
        doc = json.loads(out.read_text(encoding="utf-8"))
        fps = [f["fingerprint"] for f in doc["findings"]]
        assert len(set(fps)) == 2
        assert all(doc_f["path"] == "repro/vmm/x.py"
                   for doc_f in doc["findings"])

    def test_no_baseline_means_everything_is_new(self):
        v1 = _violation()
        new, grand, stale = partition_against_baseline(
            [v1], {v1.path: ["x"] * 5}, None)
        assert new == [v1] and grand == [] and stale == []

    def test_schema_mismatch_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99}', encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported baseline"):
            load_baseline(bad)


# --------------------------------------------------------------------- #
# The analyze() driver
# --------------------------------------------------------------------- #
class TestAnalyzeDriver:
    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown simlint rule"):
            analyze(CLEAN, rules=["not-a-rule"])

    def test_clean_package_is_clean(self):
        report, project, sources = analyze(CLEAN)
        assert report.violations == [] and report.ok
        assert report.files_checked == len(project.modules)
        assert set(sources) == {str(m.path)
                                for m in project.modules.values()}

    def test_diff_mode_filters_reporting_not_indexing(self):
        # Restrict to the innocent wrapper file: the contamination in
        # wire.py / inj.py must not be reported, but the whole project
        # was still indexed (files_checked spans the package).
        rng_pkg = FIXTURES / "rng_pkg" / "repro"
        target = rng_pkg / "asman" / "mon.py"
        report, _, _ = analyze(rng_pkg, changed_files=[target])
        assert {v.path for v in report.violations} == {str(target)}
        assert report.files_checked > 1
