"""RNG streams and the trace bus."""

import numpy as np

from repro.sim.rng import RngStreams
from repro.sim.tracing import TraceBus, TraceRecord


class TestRngStreams:
    def test_same_name_is_cached(self):
        s = RngStreams(1)
        assert s.get("a") is s.get("a")

    def test_different_names_independent(self):
        s = RngStreams(1)
        a = s.get("a").random(100)
        b = s.get("b").random(100)
        assert not np.allclose(a, b)

    def test_reproducible_across_instances(self):
        a = RngStreams(5).get("x").random(10)
        b = RngStreams(5).get("x").random(10)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("x").random(10)
        b = RngStreams(2).get("x").random(10)
        assert not np.allclose(a, b)

    def test_stream_name_order_does_not_matter(self):
        s1 = RngStreams(9)
        s1.get("first")
        v1 = s1.get("second").random(10)
        s2 = RngStreams(9)
        v2 = s2.get("second").random(10)  # no "first" drawn
        assert np.allclose(v1, v2)

    def test_fork_gives_independent_family(self):
        s = RngStreams(3)
        f = s.fork(1)
        assert not np.allclose(s.get("x").random(10), f.get("x").random(10))

    def test_contains(self):
        s = RngStreams(1)
        assert "x" not in s
        s.get("x")
        assert "x" in s


class TestTraceBus:
    def test_subscriber_receives_matching_category(self, trace):
        got = []
        trace.subscribe("a", got.append)
        trace.emit(1, "a", k=1)
        trace.emit(2, "b", k=2)
        assert len(got) == 1
        assert got[0].category == "a"
        assert got[0]["k"] == 1

    def test_star_subscriber_receives_all(self, trace):
        got = []
        trace.subscribe("*", got.append)
        trace.emit(1, "a")
        trace.emit(2, "b")
        assert [r.category for r in got] == ["a", "b"]

    def test_emit_without_listeners_is_noop(self, trace):
        trace.emit(1, "ghost", x=1)
        assert trace.records == []

    def test_retention_requires_optin(self, trace):
        trace.emit(1, "a")
        assert trace.records == []
        trace.retain("a")
        trace.emit(2, "a")
        assert len(trace.records) == 1

    def test_retain_star(self, trace):
        trace.retain("*")
        trace.emit(1, "anything")
        assert len(trace.records) == 1

    def test_of_filters_by_category(self, trace):
        trace.retain("a", "b")
        trace.emit(1, "a")
        trace.emit(2, "b")
        trace.emit(3, "a")
        assert len(trace.of("a")) == 2

    def test_unsubscribe(self, trace):
        got = []
        trace.subscribe("a", got.append)
        trace.unsubscribe("a", got.append)
        trace.emit(1, "a")
        assert got == []

    def test_multiple_subscribers_all_called(self, trace):
        got1, got2 = [], []
        trace.subscribe("a", got1.append)
        trace.subscribe("a", got2.append)
        trace.emit(1, "a")
        assert len(got1) == len(got2) == 1

    def test_clear(self, trace):
        trace.retain("a")
        trace.emit(1, "a")
        trace.clear()
        assert trace.records == []

    def test_record_is_frozen(self, trace):
        rec = TraceRecord(1, "a", {"x": 1})
        assert rec["x"] == 1
        assert rec.time == 1
