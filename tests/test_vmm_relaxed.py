"""The relaxed (skew-bounded) coscheduler."""

import pytest

from repro import units
from repro.config import MachineConfig, SchedulerConfig, VMConfig
from repro.guest.kernel import GuestKernel
from repro.guest.ops import Compute
from repro.hardware.machine import Machine
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.vmm.relaxed import RelaxedCoscheduler
from repro.vmm.vm import VCRD, VM
from tests.conftest import quiet_guest_config


def build(num_pcpus=4, skew_bound=units.ms(3), vms=(("a", 2, 256),)):
    sim = Simulator()
    trace = TraceBus()
    machine = Machine(MachineConfig(num_pcpus=num_pcpus, sockets=1), sim)
    sched = RelaxedCoscheduler(machine, sim, trace,
                               SchedulerConfig(work_conserving=True),
                               skew_bound=skew_bound)
    out = []
    for i, (name, nv, weight) in enumerate(vms):
        vm = VM(i, VMConfig(name=name, num_vcpus=nv, weight=weight,
                            guest=quiet_guest_config()), sim, trace)
        sched.add_vm(vm)
        out.append(vm)
    return sim, trace, sched, out


def busy(vm, sim, trace, seconds=5.0):
    k = GuestKernel(vm, sim, trace, quiet_guest_config())
    for i in range(len(vm.vcpus)):
        k.spawn(f"{vm.name}.t{i}", iter([Compute(units.seconds(seconds))]), i)
    return k


class TestSkewPolicy:
    def test_non_concurrent_vm_unconstrained(self):
        sim, trace, sched, (a,) = build()
        a.concurrent_hint = False
        a.vcpus[0].online_cycles = units.ms(100)  # huge artificial skew
        assert sched.eligible(a.vcpus[0])

    def test_leader_beyond_bound_ineligible(self):
        sim, trace, sched, (a,) = build()
        a.concurrent_hint = True
        a.vcpus[0].online_cycles = units.ms(10)
        a.vcpus[1].online_cycles = 0
        assert not sched.eligible(a.vcpus[0])
        assert sched.eligible(a.vcpus[1])

    def test_blocked_sibling_not_a_laggard(self):
        sim, trace, sched, (a,) = build()
        k = GuestKernel(a, sim, trace, quiet_guest_config())
        a.concurrent_hint = True
        a.vcpus[0].online_cycles = units.ms(10)
        # vcpu1 blocked in the guest: its lack of progress must not stop
        # vcpu0 (it is idle, not behind).
        sched.start()
        sim.run_until(units.ms(1))  # empty guest blocks both
        assert sched.eligible(a.vcpus[0])

    def test_laggard_gets_priority_lift(self):
        sim, trace, sched, (a,) = build()
        a.concurrent_hint = True
        a.vcpus[0].online_cycles = units.ms(10)
        lead_key = sched._key(a.vcpus[0])
        lag_key = sched._key(a.vcpus[1])
        assert lag_key < lead_key

    def test_single_vcpu_vm_never_constrained(self):
        sim, trace, sched, (a,) = build(vms=(("a", 1, 256),))
        a.concurrent_hint = True
        a.vcpus[0].online_cycles = units.ms(100)
        assert sched.eligible(a.vcpus[0])

    def test_ignores_vcrd(self):
        sim, trace, sched, (a,) = build()
        a.set_vcrd(VCRD.HIGH)  # no crash, no effect
        assert a.vcrd is VCRD.HIGH


class TestSkewBoundedExecution:
    def test_progress_stays_within_bound(self):
        # Two 2-VCPU VMs on 2 PCPUs: contention forces interleaving; the
        # concurrent VM's skew must stay around the bound.
        bound = units.ms(4)
        sim, trace, sched, (a, b) = build(
            num_pcpus=2, skew_bound=bound,
            vms=(("a", 2, 256), ("b", 2, 256)))
        a.concurrent_hint = True
        busy(a, sim, trace)
        busy(b, sim, trace)
        sched.start()
        worst = 0
        for step in range(1, 60):
            sim.run_until(units.ms(step * 5))
            progress = [sched._progress(v) for v in a.vcpus]
            worst = max(worst, max(progress) - min(progress))
        # Slack: a leader may overshoot by up to a tick before the veto
        # takes effect.
        assert worst <= bound + units.ms(11)

    def test_workload_completes(self):
        sim, trace, sched, (a, b) = build(
            num_pcpus=2, vms=(("a", 2, 256), ("b", 2, 256)))
        a.concurrent_hint = True
        ka = busy(a, sim, trace, seconds=0.05)
        kb = busy(b, sim, trace, seconds=0.05)
        sched.start()
        done = sim.run_until_true(
            lambda: ka.finished and kb.finished,
            deadline=units.seconds(5))
        assert done

    def test_skew_stops_counted(self):
        sim, trace, sched, (a, b) = build(
            num_pcpus=2, skew_bound=units.ms(1),
            vms=(("a", 2, 256), ("b", 2, 256)))
        a.concurrent_hint = True
        busy(a, sim, trace)
        busy(b, sim, trace)
        # Seed an existing imbalance: vcpu0 is already 5 ms ahead.
        a.vcpus[0].online_cycles += units.ms(5)
        sched.start()
        sim.run_until(units.ms(300))
        assert sched.skew_stops > 0

    def test_registered_in_experiment_setup(self):
        from repro.experiments.setup import make_scheduler
        assert make_scheduler("relaxed") is RelaxedCoscheduler
