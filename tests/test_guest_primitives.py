"""Guest synchronisation primitives as standalone state machines."""

import pytest

from repro.config import VMConfig
from repro.errors import GuestStateError
from repro.guest.barrier import Barrier
from repro.guest.flags import FlagVar
from repro.guest.futex import FutexQueue
from repro.guest.hrtimer import Hrtimer
from repro.guest.semaphore import Semaphore
from repro.guest.spinlock import SpinLock
from repro.guest.task import Task
from repro.vmm.vm import VM


@pytest.fixture
def tasks(sim, trace):
    vm = VM(0, VMConfig(name="v", num_vcpus=4), sim, trace)
    return [Task(f"t{i}", iter(()), vm.vcpus[i]) for i in range(4)]


class TestSpinLock:
    def test_uncontended_acquire(self, tasks):
        lk = SpinLock("l")
        assert lk.try_acquire(tasks[0], 0)
        assert lk.holder is tasks[0]
        assert lk.is_held

    def test_contended_acquire_fails(self, tasks):
        lk = SpinLock("l")
        lk.try_acquire(tasks[0], 0)
        assert not lk.try_acquire(tasks[1], 5)

    def test_release_requires_holder(self, tasks):
        lk = SpinLock("l")
        lk.try_acquire(tasks[0], 0)
        with pytest.raises(GuestStateError):
            lk.release(tasks[1])

    def test_release_frees(self, tasks):
        lk = SpinLock("l")
        lk.try_acquire(tasks[0], 0)
        lk.release(tasks[0])
        assert lk.holder is None
        assert lk.try_acquire(tasks[1], 10)

    def test_waiter_queue_fifo(self, tasks):
        lk = SpinLock("l")
        lk.enqueue_waiter(tasks[0], 1)
        lk.enqueue_waiter(tasks[1], 2)
        assert lk.remove_waiter(tasks[0]) == 1
        assert lk.remove_waiter(tasks[1]) == 2

    def test_remove_unknown_waiter_rejected(self, tasks):
        lk = SpinLock("l")
        with pytest.raises(GuestStateError):
            lk.remove_waiter(tasks[0])

    def test_wait_statistics(self, tasks):
        lk = SpinLock("l")
        lk.record_acquisition(100)
        lk.record_acquisition(300)
        assert lk.acquisitions == 2
        assert lk.max_wait == 300
        assert lk.mean_wait() == pytest.approx(200.0)

    def test_mean_wait_empty(self):
        assert SpinLock("l").mean_wait() == 0.0


class TestSemaphore:
    def test_initial_count_consumed(self, tasks):
        sem = Semaphore("s", initial=2)
        assert sem.try_down(tasks[0])
        assert sem.try_down(tasks[1])
        assert not sem.try_down(tasks[2])

    def test_negative_initial_rejected(self):
        with pytest.raises(GuestStateError):
            Semaphore("s", initial=-1)

    def test_up_banks_when_no_waiters(self, tasks):
        sem = Semaphore("s")
        assert sem.up(0) is None
        assert sem.count == 1
        assert sem.try_down(tasks[0])

    def test_up_wakes_oldest_waiter(self, tasks):
        sem = Semaphore("s")
        sem.enqueue_waiter(tasks[0], 10)
        sem.enqueue_waiter(tasks[1], 20)
        woken, wait = sem.up(110)
        assert woken is tasks[0]
        assert wait == 100

    def test_wake_does_not_touch_count(self, tasks):
        sem = Semaphore("s")
        sem.enqueue_waiter(tasks[0], 0)
        sem.up(5)
        assert sem.count == 0

    def test_block_wait_stats(self, tasks):
        sem = Semaphore("s")
        sem.enqueue_waiter(tasks[0], 0)
        sem.up(500)
        assert sem.blocked_waits == 1
        assert sem.max_block_wait == 500

    def test_remove_waiter(self, tasks):
        sem = Semaphore("s")
        sem.enqueue_waiter(tasks[0], 7)
        assert sem.remove_waiter(tasks[0]) == 7
        with pytest.raises(GuestStateError):
            sem.remove_waiter(tasks[0])


class TestFutexQueue:
    def test_generation_starts_zero(self):
        assert FutexQueue("f").sample() == 0

    def test_block_enqueues_when_generation_matches(self, tasks):
        f = FutexQueue("f")
        assert f.block(tasks[0], expected=0, now=10)
        assert len(f.blocked) == 1

    def test_block_refuses_stale_generation(self, tasks):
        f = FutexQueue("f")
        f.wake_all()
        assert not f.block(tasks[0], expected=0, now=10)
        assert f.blocked == []

    def test_wake_all_drains_and_bumps(self, tasks):
        f = FutexQueue("f")
        f.block(tasks[0], 0, 1)
        f.block(tasks[1], 0, 2)
        woken = f.wake_all()
        assert [t for t, _ in woken] == [tasks[0], tasks[1]]
        assert f.generation == 1
        assert f.blocked == []

    def test_spin_phase_tracking(self, tasks):
        f = FutexQueue("f")
        f.start_spin(tasks[0], 0)
        assert not f.spin_satisfied(tasks[0])
        f.wake_all()
        assert f.spin_satisfied(tasks[0])
        f.end_spin(tasks[0])
        with pytest.raises(GuestStateError):
            f.spin_satisfied(tasks[0])

    def test_end_spin_idempotent(self, tasks):
        f = FutexQueue("f")
        f.end_spin(tasks[0])  # no error


class TestBarrier:
    def test_arrivals_count_up(self):
        b = Barrier("b", 3)
        assert not b.arrive()
        assert not b.arrive()
        assert b.arrive()

    def test_too_many_arrivals_rejected(self):
        b = Barrier("b", 1)
        b.arrive()
        with pytest.raises(GuestStateError):
            b.arrive()

    def test_reset_requires_full(self):
        b = Barrier("b", 2)
        b.arrive()
        with pytest.raises(GuestStateError):
            b.reset_and_wake()

    def test_reset_and_wake_returns_blocked(self, tasks):
        b = Barrier("b", 2)
        b.arrive()
        b.futex.block(tasks[0], 0, 1)
        b.arrive()
        woken = b.reset_and_wake()
        assert [t for t, _ in woken] == [tasks[0]]
        assert b.count == 0
        assert b.crossings == 1
        assert b.futex.generation == 1

    def test_reusable_across_generations(self):
        b = Barrier("b", 2)
        for _ in range(3):
            b.arrive()
            assert b.arrive()
            b.reset_and_wake()
        assert b.crossings == 3

    def test_rejects_zero_parties(self):
        with pytest.raises(GuestStateError):
            Barrier("b", 0)


class TestFlagVar:
    def test_monotone_advance(self):
        f = FlagVar("f")
        f.advance(5)
        f.advance(3)
        assert f.value == 5

    def test_satisfied(self):
        f = FlagVar("f")
        f.advance(2)
        assert f.satisfied(2)
        assert not f.satisfied(3)

    def test_advance_returns_satisfied_waiters(self, tasks):
        f = FlagVar("f")
        f.add_waiter(tasks[0], 2, now=0)
        f.add_waiter(tasks[1], 5, now=0)
        ready = f.advance(3)
        assert [t for t, _, _ in ready] == [tasks[0]]
        assert len(f.waiters) == 1

    def test_wait_stats(self):
        f = FlagVar("f")
        f.record_wait(100)
        f.record_wait(50)
        assert f.spin_waits == 2
        assert f.max_spin_wait == 100
        assert f.total_spin_wait == 150


class TestHrtimer:
    def test_reads_sim_clock(self, sim):
        t = Hrtimer(sim)
        sim.at(123, lambda: None)
        sim.run()
        assert t.read() == 123

    def test_granularity_quantises(self, sim):
        t = Hrtimer(sim, granularity=100)
        sim.at(250, lambda: None)
        sim.run()
        assert t.read() == 200

    def test_elapsed_never_negative(self, sim):
        t = Hrtimer(sim)
        assert t.elapsed(500) == 0

    def test_rejects_zero_granularity(self, sim):
        with pytest.raises(ValueError):
            Hrtimer(sim, granularity=0)
