"""Chaos harness: deterministic injection, the bit-identity gate under
worker kills/stalls/corruption, and the CLI exit-code contract."""

import pickle

import pytest

from repro.errors import (CacheIntegrityError, CellTimeoutError,
                          ConfigurationError, ExecutionError)
from repro.parallel import (ChaosSpec, ResultCache, SupervisorPolicy,
                            WorkloadSpec, run_cells, run_supervised,
                            single_vm_cell)
from repro.parallel.chaos import (ChaosError, ChaosKill, ChaosPoisoned,
                                  apply_worker_chaos, chaos_draw,
                                  chaos_fabric, corrupt_cache_entries,
                                  is_poisoned)

assert chaos_fabric is not None  # fixture import doubles as the plugin

COMPUTE = WorkloadSpec("synthetic", "compute1", scale=0.2)


def _cells(n=2, rate=0.4):
    return [single_vm_cell(COMPUTE, scheduler="credit", online_rate=rate,
                           seed=seed) for seed in range(1, n + 1)]


# --------------------------------------------------------------------- #
# ChaosSpec
# --------------------------------------------------------------------- #
class TestChaosSpec:
    def test_default_is_noop_and_picklable(self):
        spec = ChaosSpec()
        assert spec.is_noop()
        assert spec.describe() == "none"
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec(kill_rate=1.5)
        with pytest.raises(ConfigurationError):
            ChaosSpec(corrupt_rate=-0.1)
        with pytest.raises(ConfigurationError):
            ChaosSpec(stall_rate=0.5)  # stall_rate needs stall_s > 0
        with pytest.raises(ConfigurationError):
            ChaosSpec(poison_keys=("",))

    def test_parse_round_trip(self):
        spec = ChaosSpec.parse(
            "seed=9,kill_rate=0.5,stall_rate=0.2,stall_s=0.01,"
            'poison_keys="seed":3+"seed":4,spare_final_attempt=false')
        assert spec.seed == 9
        assert spec.kill_rate == 0.5
        assert spec.poison_keys == ('"seed":3', '"seed":4')
        assert spec.spare_final_attempt is False
        reparsed = ChaosSpec.parse(
            f"seed={spec.seed},{spec.describe()}")
        assert reparsed == spec

    def test_parse_empty_and_none(self):
        assert ChaosSpec.parse("").is_noop()
        assert ChaosSpec.parse("none").is_noop()

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec.parse("bogus_field=1")
        with pytest.raises(ConfigurationError):
            ChaosSpec.parse("kill_rate=high")
        with pytest.raises(ConfigurationError):
            ChaosSpec.parse("kill_rate=0.1,kill_rate=0.2")
        with pytest.raises(ConfigurationError):
            ChaosSpec.parse("kill_rate")
        with pytest.raises(ConfigurationError):
            ChaosSpec.parse("spare_final_attempt=maybe")


class TestDraws:
    def test_pure_function_of_inputs(self):
        spec = ChaosSpec(seed=3, kill_rate=0.5)
        a = chaos_draw(spec, "kill", "cell-a", 0)
        assert 0.0 <= a < 1.0
        assert a == chaos_draw(spec, "kill", "cell-a", 0)
        assert a != chaos_draw(spec, "kill", "cell-a", 1)
        assert a != chaos_draw(spec, "stall", "cell-a", 0)
        assert a != chaos_draw(spec, "kill", "cell-b", 0)
        assert a != chaos_draw(ChaosSpec(seed=4, kill_rate=0.5),
                               "kill", "cell-a", 0)

    def test_is_poisoned_substring_match(self):
        spec = ChaosSpec(poison_keys=('"seed":3',))
        assert is_poisoned(spec, '{"scheduler":"credit","seed":3}')
        assert not is_poisoned(spec, '{"scheduler":"credit","seed":4}')


class TestApplyWorkerChaos:
    def test_poison_fires_even_on_final_attempt(self):
        spec = ChaosSpec(poison_keys=("victim",))
        with pytest.raises(ChaosPoisoned):
            apply_worker_chaos(spec, "a-victim-cell", 0, final=True,
                               in_process=True)
        # Non-matching cells pass through untouched.
        apply_worker_chaos(spec, "innocent", 0, final=False,
                           in_process=True)

    def test_in_process_kill_is_an_exception(self):
        spec = ChaosSpec(kill_rate=1.0)
        with pytest.raises(ChaosKill):
            apply_worker_chaos(spec, "k", 0, final=False, in_process=True)

    def test_final_attempt_is_spared(self):
        spec = ChaosSpec(kill_rate=1.0, error_rate=1.0)
        apply_worker_chaos(spec, "k", 5, final=True, in_process=True)

    def test_error_injection(self):
        spec = ChaosSpec(error_rate=1.0)
        with pytest.raises(ChaosError):
            apply_worker_chaos(spec, "k", 0, final=False, in_process=True)

    def test_stall_uses_patchable_sleep(self, monkeypatch):
        from repro.parallel import chaos as chaos_mod
        stalls = []
        monkeypatch.setattr(chaos_mod, "_sleep", stalls.append)
        spec = ChaosSpec(stall_rate=1.0, stall_s=0.25)
        apply_worker_chaos(spec, "k", 0, final=False, in_process=True)
        assert stalls == [0.25]


# --------------------------------------------------------------------- #
# Host-side corruption site
# --------------------------------------------------------------------- #
class TestCorruption:
    def test_corrupts_only_existing_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        specs = _cells(2)
        cache.put(specs[0], {"v": 1})  # specs[1] has no entry
        spec = ChaosSpec(corrupt_rate=1.0)
        assert corrupt_cache_entries(spec, cache, specs) == 1
        assert cache.verify()["corrupt"] == [cache.key_for(specs[0])]

    def test_noop_rate_touches_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="s")
        cache.put(_cells(1)[0], {"v": 1})
        assert corrupt_cache_entries(ChaosSpec(), cache, _cells(1)) == 0
        assert cache.verify(strict=True)["corrupt"] == []

    def test_supervised_rerun_survives_corruption(self, tmp_path):
        specs = _cells(2)
        cache = ResultCache(tmp_path / "c")
        clean = run_supervised(specs, jobs=1, cache=cache)
        with pytest.warns(Warning):  # CacheIntegrityWarning per entry
            rerun = run_supervised(
                specs, jobs=1, cache=cache,
                chaos=ChaosSpec(corrupt_rate=1.0))
        assert rerun.combined_fingerprint() == clean.combined_fingerprint()
        report = rerun.supervisor
        assert report is not None
        assert report.corrupt_injected == 2
        assert report.executed == 2  # every corrupt entry re-executed
        assert cache.quarantined == 2
        assert cache.stats()["quarantine_entries"] == 2


# --------------------------------------------------------------------- #
# The determinism gate: injected chaos, bit-identical results
# --------------------------------------------------------------------- #
class TestDeterminismGate:
    def test_serial_kills_and_errors_converge(self, tmp_path):
        specs = _cells(3)
        clean = run_cells(specs, jobs=1, cache=None)
        chaotic = run_supervised(
            specs, jobs=1, cache=ResultCache(tmp_path / "c"),
            policy=SupervisorPolicy(max_retries=2, backoff_base_ms=0.0),
            chaos=ChaosSpec(seed=11, kill_rate=1.0))
        # Every first attempt dies (in-process ChaosKill); the spared
        # final attempts converge to the clean results.
        assert chaotic.ok
        assert chaotic.combined_fingerprint() == \
            clean.combined_fingerprint()
        report = chaotic.supervisor
        assert report is not None
        assert report.retried >= 3

    def test_pool_chaos_bit_identical_to_clean_serial(self, chaos_fabric):
        specs = _cells(4)
        clean = run_cells(specs, jobs=1, cache=None)
        chaos = ChaosSpec(seed=7, kill_rate=0.5, error_rate=0.4)
        chaotic = chaos_fabric(specs, chaos=chaos)
        assert chaotic.ok
        assert chaotic.combined_fingerprint() == \
            clean.combined_fingerprint()
        report = chaotic.supervisor
        assert report is not None
        assert report.executed == 4
        # The fixed seed makes the schedule reproducible: at least one
        # injection actually fired.
        assert report.pool_rebuilds + report.retried >= 1

    def test_pool_stall_trips_cell_timeout_then_recovers(self, tmp_path):
        specs = _cells(2)
        clean = run_cells(specs, jobs=1, cache=None)
        # Every non-final attempt stalls far past the cell budget; the
        # supervisor must kill the pool, charge the timeout, and let the
        # spared final attempts finish.
        chaotic = run_supervised(
            specs, jobs=2, cache=ResultCache(tmp_path / "c"),
            policy=SupervisorPolicy(cell_timeout_s=1.0, max_retries=1,
                                    backoff_base_ms=0.0),
            chaos=ChaosSpec(seed=5, stall_rate=1.0, stall_s=60.0))
        assert chaotic.ok
        assert chaotic.combined_fingerprint() == \
            clean.combined_fingerprint()
        report = chaotic.supervisor
        assert report is not None
        assert report.timeouts == 2
        assert report.retried == 2

    def test_poison_in_pool_is_structured_failure(self, chaos_fabric):
        specs = _cells(2)
        chaos = ChaosSpec(poison_keys=('"seed":2',))
        results = chaos_fabric(specs, chaos=chaos)
        assert len(results) == 2
        assert len(results.failures()) == 1
        assert results.failures()[0].key == specs[1].canonical()
        with pytest.raises(ExecutionError):
            results.raise_if_failed()


# --------------------------------------------------------------------- #
# CLI exit-code contract
# --------------------------------------------------------------------- #
class TestCliExitCodes:
    def test_chaos_demo_gate_passes(self, tmp_path, capsys):
        from repro import cli
        code = cli.main(["chaos", "--scale", "0.05",
                         "--schedulers", "credit", "--seeds", "1",
                         "--chaos", "error_rate=0.8",
                         "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos determinism gate OK" in out

    def test_poison_exhaustion_exits_3(self, tmp_path, capsys):
        from repro import cli
        code = cli.main(["chaos", "--scale", "0.05",
                         "--schedulers", "credit", "--seeds", "1",
                         "--chaos", 'poison_keys="seed":1',
                         "--retries", "0", "--jobs", "1",
                         "--cache-dir", str(tmp_path)])
        assert code == 3
        assert "failed" in capsys.readouterr().err

    def test_batch_deadline_exits_4(self, tmp_path, capsys):
        from repro import cli
        code = cli.main(["chaos", "--scale", "0.05",
                         "--schedulers", "credit", "--seeds", "1",
                         "--batch-deadline", "0.0001", "--jobs", "1",
                         "--cache-dir", str(tmp_path)])
        assert code == 4
        assert "timeout" in capsys.readouterr().err

    def test_zero_timeout_exits_2(self, tmp_path, capsys):
        from repro import cli
        code = cli.main(["chaos", "--cell-timeout", "0",
                         "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "cell_timeout_s" in capsys.readouterr().err

    def test_cache_integrity_exits_5(self, monkeypatch, capsys):
        from repro import cli

        def impound(args):
            raise CacheIntegrityError("entry deadbeef failed its checksum")

        monkeypatch.setattr(cli, "cmd_list", impound)
        assert cli.main(["list"]) == 5
        assert "checksum" in capsys.readouterr().err

    def test_bad_chaos_spec_is_usage_error(self, tmp_path):
        from repro import cli
        with pytest.raises(SystemExit):
            cli.main(["chaos", "--chaos", "bogus=1",
                      "--cache-dir", str(tmp_path)])

    def test_help_documents_exit_codes(self, capsys):
        from repro import cli
        with pytest.raises(SystemExit):
            cli.main(["--help"])
        out = capsys.readouterr().out
        for token in ("exit", "3", "4", "5"):
            assert token in out


# --------------------------------------------------------------------- #
# The pytest fixture surface itself
# --------------------------------------------------------------------- #
class TestFixture:
    def test_fixture_exposes_cache_and_journal(self, chaos_fabric):
        specs = _cells(1)
        results = chaos_fabric(specs, jobs=1)
        assert results.ok
        cache = chaos_fabric.cache
        assert cache.stats()["entries"] == 1
        journal_dir = cache.root / "journal"
        assert len(list(journal_dir.glob("*.jsonl"))) == 1
