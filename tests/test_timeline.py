"""Timeline reconstruction and the co-online metric."""

import pytest

from repro import units
from repro.config import SchedulerConfig
from repro.experiments.setup import weight_for_rate
from repro.experiments.setup import Testbed as SimTestbed
from repro.metrics.timeline import Segment, TimelineCollector
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.workloads.nas import NasBenchmark


class TestSegmentBuilding:
    def _collector(self):
        sim = Simulator()
        trace = TraceBus()
        return sim, trace, TimelineCollector(trace, sim)

    def test_occupy_then_vacate_makes_segment(self):
        sim, trace, tl = self._collector()
        trace.emit(10, "sched.switch", pcpu=0, vcpu="a/v0")
        trace.emit(50, "sched.switch", pcpu=0, vcpu=None)
        assert tl.segments == [Segment(0, "a/v0", 10, 50)]

    def test_switch_closes_previous(self):
        sim, trace, tl = self._collector()
        trace.emit(0, "sched.switch", pcpu=0, vcpu="a/v0")
        trace.emit(30, "sched.switch", pcpu=0, vcpu="b/v0")
        trace.emit(60, "sched.switch", pcpu=0, vcpu=None)
        assert [s.vcpu for s in tl.pcpu_segments(0)] == ["a/v0", "b/v0"]
        assert tl.pcpu_segments(0)[0].end == 30

    def test_zero_length_segments_dropped(self):
        sim, trace, tl = self._collector()
        trace.emit(10, "sched.switch", pcpu=0, vcpu="a/v0")
        trace.emit(10, "sched.switch", pcpu=0, vcpu=None)
        assert tl.segments == []

    def test_close_flushes_open_segments(self):
        sim, trace, tl = self._collector()
        trace.emit(0, "sched.switch", pcpu=1, vcpu="a/v0")
        sim.at(100, lambda: None)
        sim.run()
        tl.close()
        assert tl.segments == [Segment(1, "a/v0", 0, 100)]

    def test_vcpu_intervals(self):
        sim, trace, tl = self._collector()
        trace.emit(0, "sched.switch", pcpu=0, vcpu="a/v0")
        trace.emit(10, "sched.switch", pcpu=0, vcpu=None)
        trace.emit(20, "sched.switch", pcpu=1, vcpu="a/v0")
        trace.emit(40, "sched.switch", pcpu=1, vcpu=None)
        assert tl.vcpu_intervals("a/v0") == [(0, 10), (20, 40)]


class TestConcurrencyProfile:
    def _with_two_vcpus(self, spans0, spans1):
        sim = Simulator()
        trace = TraceBus()
        tl = TimelineCollector(trace, sim)
        for pcpu, name, spans in ((0, "a/v0", spans0), (1, "a/v1", spans1)):
            for s, e in spans:
                trace.emit(s, "sched.switch", pcpu=pcpu, vcpu=name)
                trace.emit(e, "sched.switch", pcpu=pcpu, vcpu=None)
        return tl

    def test_full_overlap(self):
        tl = self._with_two_vcpus([(0, 100)], [(0, 100)])
        assert tl.co_online_fraction("a") == pytest.approx(1.0)
        assert tl.concurrency_profile("a") == {2: 100}

    def test_no_overlap(self):
        tl = self._with_two_vcpus([(0, 100)], [(100, 200)])
        assert tl.co_online_fraction("a") == 0.0
        assert tl.concurrency_profile("a") == {1: 200}

    def test_partial_overlap(self):
        tl = self._with_two_vcpus([(0, 100)], [(50, 150)])
        profile = tl.concurrency_profile("a")
        assert profile == {1: 100, 2: 50}
        assert tl.co_online_fraction("a") == pytest.approx(50 / 150)

    def test_unknown_vm_zero(self):
        tl = self._with_two_vcpus([(0, 10)], [(0, 10)])
        assert tl.co_online_fraction("ghost") == 0.0


class TestGantt:
    def test_renders_rows_and_legend(self):
        sim = Simulator()
        trace = TraceBus()
        tl = TimelineCollector(trace, sim)
        trace.emit(0, "sched.switch", pcpu=0, vcpu="a/v0")
        trace.emit(50, "sched.switch", pcpu=0, vcpu=None)
        out = tl.gantt(0, 100, width=20)
        assert "P0 |" in out
        assert "a=a/v0" in out
        assert "a" * 5 in out  # roughly half the row filled

    def test_empty_window(self):
        sim = Simulator()
        trace = TraceBus()
        tl = TimelineCollector(trace, sim)
        assert "(empty window)" in tl.gantt(10, 10)


class TestCoschedulingMeasured:
    """The headline use: gang scheduling raises the co-online fraction."""

    def _run(self, scheduler, concurrent):
        tb = SimTestbed(scheduler=scheduler, seed=1,
                        sched_config=SchedulerConfig(work_conserving=False))
        tl = TimelineCollector(tb.trace, tb.sim)
        tb.add_domain0()
        tb.add_vm("V1", weight=weight_for_rate(2 / 9),
                  workload=NasBenchmark.by_name("LU", scale=0.3),
                  concurrent_hint=concurrent)
        tb.run_until_workloads_done(["V1"],
                                    deadline_cycles=units.seconds(120))
        tl.close()
        return tl.co_online_fraction("V1", parties=4)

    def test_static_coscheduler_raises_co_online(self):
        credit = self._run("credit", concurrent=False)
        con = self._run("con", concurrent=True)
        assert con > credit
        assert con > 0.5  # a gang scheduler keeps the gang together
