"""Edge cases for the ``--faults`` vocabulary: FaultSpec.parse round-trip
and the CLI's error surfacing.

Every malformed spec must come back as a clear ConfigurationError (or a
clean ``SystemExit`` through the CLI helper), never a raw ValueError /
TypeError traceback.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cli import _parse_faults
from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec


class TestParseEdges:
    def test_empty_and_none_are_noop(self):
        assert FaultSpec.parse("").is_noop()
        assert FaultSpec.parse("   ").is_noop()
        assert FaultSpec.parse("none").is_noop()

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FaultSpec.parse("hypercall_loss=0.1,hypercall_loss=0.2")

    def test_duplicate_keys_rejected_even_when_equal(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FaultSpec.parse("ipi_drop=0.1,ipi_drop=0.1")

    def test_unknown_field_lists_choices(self):
        with pytest.raises(ConfigurationError) as err:
            FaultSpec.parse("hypercall_lossy=0.5")
        assert "hypercall_loss" in str(err.value)  # suggestions included

    def test_missing_equals_sign(self):
        with pytest.raises(ConfigurationError, match="key=value"):
            FaultSpec.parse("hypercall_loss")

    def test_bad_numeric_value(self):
        with pytest.raises(ConfigurationError, match="bad value"):
            FaultSpec.parse("hypercall_loss=lots")

    def test_bad_pcpu_list_value(self):
        with pytest.raises(ConfigurationError, match="bad value"):
            FaultSpec.parse("degraded_pcpus=0+x,degraded_speed=0.5")

    def test_out_of_range_probability(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.parse("hypercall_loss=1.5")

    def test_bad_monitor_mode(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.parse("monitor_mode=confused")

    def test_degraded_pcpus_without_speed_is_rejected(self):
        with pytest.raises(ConfigurationError, match="no-op"):
            FaultSpec.parse("degraded_pcpus=0")


class TestRoundTrip:
    def test_describe_parse_round_trip(self):
        spec = FaultSpec(hypercall_loss=0.25, ipi_jitter_cycles=5_000,
                         degraded_pcpus=(0, 3), degraded_speed=0.5)
        again = FaultSpec.parse(spec.describe())
        assert dataclasses.replace(again, seed=spec.seed) == spec

    def test_noop_describe_round_trip(self):
        assert FaultSpec.parse(FaultSpec().describe()).is_noop()

    def test_every_fault_class_round_trips(self):
        from repro.experiments.robustness import FAULT_CLASSES
        for name, spec in FAULT_CLASSES.items():
            text = spec.describe()
            again = FaultSpec.parse(text)
            assert dataclasses.replace(again, seed=spec.seed) == spec, name


class TestCliSurface:
    def test_cli_absent_is_none(self):
        assert _parse_faults(None) is None

    def test_cli_noop_collapses_to_none(self):
        assert _parse_faults("none") is None
        assert _parse_faults("") is None

    def test_cli_valid_spec(self):
        spec = _parse_faults("hypercall_loss=0.5")
        assert spec is not None and spec.hypercall_loss == 0.5

    def test_cli_error_is_systemexit_not_traceback(self):
        with pytest.raises(SystemExit) as err:
            _parse_faults("hypercall_loss=0.1,hypercall_loss=0.2")
        assert "duplicate" in str(err.value)

    def test_cli_unknown_site_is_systemexit(self):
        with pytest.raises(SystemExit) as err:
            _parse_faults("warp_drive=1")
        assert "unknown fault field" in str(err.value)
