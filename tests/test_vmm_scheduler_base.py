"""SchedulerBase mechanics: runqs, credits, parking, stealing, boost."""

import pytest

from repro import units
from repro.config import MachineConfig, SchedulerConfig, VMConfig
from repro.errors import ConfigurationError, SchedulerInvariantError
from repro.guest.kernel import GuestKernel
from repro.guest.ops import Compute
from repro.hardware.machine import Machine
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.vmm.credit import CreditScheduler
from repro.vmm.vm import VCPUState, VM
from tests.conftest import Harness, quiet_guest_config


def build(num_pcpus=4, wc=True, vms=(), exact=False):
    """(sim, sched, [VM...]) with optional guests attached."""
    sim = Simulator()
    trace = TraceBus()
    machine = Machine(MachineConfig(num_pcpus=num_pcpus, sockets=1), sim)
    sched = CreditScheduler(machine, sim, trace,
                            SchedulerConfig(work_conserving=wc,
                                            exact_accounting=exact))
    out = []
    for i, (name, nv, weight) in enumerate(vms):
        vm = VM(i, VMConfig(name=name, num_vcpus=nv, weight=weight,
                            guest=quiet_guest_config()), sim, trace)
        sched.add_vm(vm)
        out.append(vm)
    return sim, sched, out


def busy_guest(vm, sim, trace, seconds=5.0):
    """Attach a guest with one CPU-bound task per VCPU."""
    k = GuestKernel(vm, sim, trace, quiet_guest_config())
    for i in range(len(vm.vcpus)):
        k.spawn(f"{vm.name}.t{i}",
                iter([Compute(units.seconds(seconds))]), i)
    return k


class TestRegistration:
    def test_vcpus_spread_round_robin(self):
        _, sched, (vm,) = build(vms=[("a", 4, 256)])
        homes = [v.home_pcpu_id for v in vm.vcpus]
        assert homes == [0, 1, 2, 3]

    def test_second_vm_continues_rotation(self):
        _, sched, (a, b) = build(vms=[("a", 2, 256), ("b", 2, 256)])
        assert [v.home_pcpu_id for v in a.vcpus] == [0, 1]
        assert [v.home_pcpu_id for v in b.vcpus] == [2, 3]

    def test_more_vcpus_than_pcpus_rejected(self):
        with pytest.raises(ConfigurationError):
            build(num_pcpus=2, vms=[("a", 3, 256)])

    def test_double_start_rejected(self):
        _, sched, _ = build(vms=[("a", 1, 256)])
        sched.start()
        with pytest.raises(SchedulerInvariantError):
            sched.start()

    def test_initial_credit_banked(self):
        _, sched, (vm,) = build(vms=[("a", 2, 256)])
        burst = 100 * 3
        assert all(v.credit == burst for v in vm.vcpus)


class TestCreditAssignment:
    def test_total_credit_by_weight(self):
        sim, sched, (a, b) = build(vms=[("a", 1, 256), ("b", 1, 256)])
        a.vcpus[0].credit = 0
        b.vcpus[0].credit = 0
        sched.assign_credits()
        # Both active (RUNNABLE), equal weights -> equal income.
        assert a.vcpus[0].credit == b.vcpus[0].credit > 0

    def test_weight_proportionality(self):
        sim, sched, (a, b) = build(vms=[("a", 1, 512), ("b", 1, 256)])
        a.vcpus[0].credit = b.vcpus[0].credit = 0
        sched.assign_credits()
        assert a.vcpus[0].credit == pytest.approx(2 * b.vcpus[0].credit)

    def test_blocked_vcpu_earns_nothing(self):
        sim, sched, (a,) = build(vms=[("a", 2, 256)])
        GuestKernel(a, sim, sched.trace, quiet_guest_config())
        a.vcpus[0].credit = a.vcpus[1].credit = 0.0
        # Block one VCPU (guest kernel present so block plumbing works).
        sched.start()
        sim.run_until(units.ms(1))  # empty guest blocks both at first online
        for v in a.vcpus:
            v.credit = 0.0
        sched.assign_credits()
        # All blocked -> fallback: treated as all active.
        assert all(v.credit > 0 for v in a.vcpus)

    def test_active_split_concentrates_income(self):
        sim, sched, (a,) = build(vms=[("a", 2, 256)])
        k = GuestKernel(a, sim, sched.trace, quiet_guest_config())
        # One busy task on vcpu0 only; vcpu1 blocks.
        k.spawn("t", iter([Compute(units.seconds(10))]), 0)
        sched.start()
        sim.run_until(units.ms(5))
        c_before = a.vcpus[0].credit
        sched.assign_credits()
        gain_active = a.vcpus[0].credit - c_before
        # vcpu1 is blocked: it earned nothing.
        assert gain_active > 0

    def test_banking_cap_clips(self):
        sim, sched, (a,) = build(vms=[("a", 1, 256)])
        a.vcpus[0].credit = 1e9
        sched.assign_credits()
        burst = 100 * 3
        assert a.vcpus[0].credit < 10 * burst  # clipped to the hi bound

    def test_debt_floor_clips(self):
        sim, sched, (a,) = build(vms=[("a", 1, 256)])
        a.vcpus[0].credit = -1e9
        sched.assign_credits()
        assert a.vcpus[0].credit > -10_000


class TestParkingNWC:
    def test_parked_when_cannot_fund_period(self):
        sim, sched, (a, b) = build(wc=False,
                                   vms=[("a", 1, 32), ("b", 1, 256)])
        a.vcpus[0].credit = 0
        sched.assign_credits()
        assert a.vcpus[0].parked  # tiny weight: income < one period's burn

    def test_unparked_after_saving_up(self):
        sim, sched, (a, b) = build(wc=False,
                                   vms=[("a", 1, 32), ("b", 1, 256)])
        a.vcpus[0].credit = 0
        for _ in range(12):
            sched.assign_credits()
        assert not a.vcpus[0].parked  # banked enough for a full period

    def test_never_parked_in_wc_mode(self):
        sim, sched, (a, b) = build(wc=True,
                                   vms=[("a", 1, 32), ("b", 1, 256)])
        a.vcpus[0].credit = -1e6
        sched.assign_credits()
        assert not a.vcpus[0].parked

    def test_parked_vcpu_ineligible(self):
        sim, sched, (a,) = build(wc=False, vms=[("a", 1, 256)])
        v = a.vcpus[0]
        v.parked = True
        assert not sched.eligible(v)
        v.parked = False
        assert sched.eligible(v)


class TestPriorityKey:
    def test_class_order(self):
        _, sched, (a,) = build(vms=[("a", 4, 256)])
        v_cos, v_boost, v_under, v_over = a.vcpus
        v_cos.boosted = True
        v_boost.wake_boost = True
        v_boost.credit = 10
        v_under.credit = 1000
        v_over.credit = -5
        keys = [sched._key(v) for v in (v_cos, v_boost, v_under, v_over)]
        assert keys == sorted(keys)

    def test_credit_breaks_ties(self):
        _, sched, (a,) = build(vms=[("a", 2, 256)])
        a.vcpus[0].credit = 100
        a.vcpus[1].credit = 200
        assert sched._key(a.vcpus[1]) < sched._key(a.vcpus[0])

    def test_wake_boost_requires_credit(self):
        _, sched, (a,) = build(vms=[("a", 2, 256)])
        v = a.vcpus[0]
        v.wake_boost = True
        v.credit = -10
        w = a.vcpus[1]
        w.credit = 10
        assert sched._key(w) < sched._key(v)


class TestSchedulingAndStealing:
    def test_work_stealing_fills_idle_pcpus(self):
        sim, sched, (a,) = build(num_pcpus=4, vms=[("a", 2, 256)])
        # Both vcpus homed on pcpus 0,1; pcpus 2,3 idle but nothing to
        # steal once both run.  Force both onto pcpu 0's runq:
        sched._move_to_runq(a.vcpus[1], 0)
        busy_guest(a, sim, sched.trace)
        sched.start()
        sim.run_until(units.ms(15))
        online = [v for v in a.vcpus if v.is_online]
        assert len(online) == 2  # the second one was stolen to an idle pcpu

    def test_invariants_hold_during_run(self):
        sim, sched, (a, b) = build(num_pcpus=2,
                                   vms=[("a", 2, 256), ("b", 2, 256)])
        busy_guest(a, sim, sched.trace)
        busy_guest(b, sim, sched.trace)
        sched.start()
        for ms_mark in range(5, 100, 5):
            sim.run_until(units.ms(ms_mark))
            sched.check_invariants()

    def test_proportional_share_under_contention(self):
        sim, sched, (a, b) = build(num_pcpus=2,
                                   vms=[("a", 2, 512), ("b", 2, 256)])
        busy_guest(a, sim, sched.trace)
        busy_guest(b, sim, sched.trace)
        sched.start()
        sim.run_until(units.seconds(3))
        share_a = a.cpu_time()
        share_b = b.cpu_time()
        # weight 2:1 -> CPU time about 2:1 (within 15%).
        assert share_a / share_b == pytest.approx(2.0, rel=0.15)

    def test_nwc_cap_enforced(self):
        sim, sched, (a, b) = build(num_pcpus=4, wc=False,
                                   vms=[("a", 2, 256), ("b", 2, 256)])
        busy_guest(a, sim, sched.trace)
        # b has no guest: blocks immediately -> pcpus idle, but a must
        # still be capped at its weight share (2 pcpus worth... its
        # proportion is 0.5 of 4 pcpus = 2 pcpus over 2 vcpus = 100%).
        sched.start()
        sim.run_until(units.seconds(1))
        rate = sum(v.online_rate() for v in a.vcpus) / 2
        assert rate == pytest.approx(1.0, abs=0.05)

    def test_nwc_half_share_cap(self):
        sim, sched, (a, b) = build(num_pcpus=2, wc=False,
                                   vms=[("a", 2, 256), ("b", 2, 256)])
        busy_guest(a, sim, sched.trace)
        sched.start()
        sim.run_until(units.seconds(2))
        rate = sum(v.online_rate() for v in a.vcpus) / 2
        # a entitled to half the machine = 50% per VCPU even though b idles.
        assert rate == pytest.approx(0.5, abs=0.08)

    def test_wc_mode_uses_idle_capacity(self):
        sim, sched, (a, b) = build(num_pcpus=2, wc=True,
                                   vms=[("a", 2, 256), ("b", 2, 256)])
        busy_guest(a, sim, sched.trace)
        sched.start()
        sim.run_until(units.seconds(1))
        rate = sum(v.online_rate() for v in a.vcpus) / 2
        assert rate > 0.9  # work-conserving: may exceed the 50% guarantee


class TestExactAccounting:
    def test_exact_mode_charges_elapsed(self):
        sim, sched, (a, b) = build(num_pcpus=1, wc=True, exact=True,
                                   vms=[("a", 1, 256), ("b", 1, 256)])
        busy_guest(a, sim, sched.trace)
        busy_guest(b, sim, sched.trace)
        sched.start()
        sim.run_until(units.seconds(1))
        # Under exact accounting, equal weights on one PCPU -> equal time.
        assert a.cpu_time() == pytest.approx(b.cpu_time(), rel=0.1)
