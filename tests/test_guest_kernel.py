"""Guest kernel dispatch: end-to-end op execution on a wired system."""

import pytest

from repro import units
from repro.errors import WorkloadError
from repro.guest.ops import (BarrierOp, Compute, Critical, FlagSet, FlagWait,
                             SemDown, SemUp, Sleep)
from repro.guest.task import TaskState
from repro.vmm.vm import VCPUState
from tests.conftest import Harness


def prog(*ops):
    return iter(ops)


class TestComputeExecution:
    def test_single_compute_completes(self, harness):
        t = harness.kernel.spawn("t", prog(Compute(units.ms(1))), 0)
        assert harness.run_until_done()
        assert t.done
        assert t.compute_cycles_done == units.ms(1)
        assert harness.kernel.finished_at is not None

    def test_multiple_ops_sequential(self, harness):
        t = harness.kernel.spawn(
            "t", prog(Compute(1000), Compute(2000), Compute(3000)), 0)
        assert harness.run_until_done()
        assert t.compute_cycles_done == 6000
        assert t.ops_completed == 3

    def test_zero_compute_is_instant(self, harness):
        t = harness.kernel.spawn("t", prog(Compute(0)), 0)
        assert harness.run_until_done()
        assert t.done

    def test_workload_done_trace(self, harness):
        got = []
        harness.trace.subscribe("workload.done", got.append)
        harness.kernel.spawn("t", prog(Compute(100)), 0)
        harness.run_until_done()
        assert len(got) == 1
        assert got[0]["vm"] == "vm0"

    def test_empty_program_finishes_immediately(self, harness):
        t = harness.kernel.spawn("t", prog(), 0)
        assert harness.run_until_done()
        assert t.done

    def test_compute_survives_preemption(self):
        # Two 1-VCPU VMs on one PCPU: each task's compute must pause and
        # resume across VMM preemption without losing progress.
        h = Harness(num_pcpus=1, num_vcpus=1)
        _, k2 = h.add_vm("vm1", num_vcpus=1)
        work = units.ms(25)
        t0 = h.kernel.spawn("t0", prog(Compute(work)), 0)
        t1 = k2.spawn("t1", prog(Compute(work)), 0)
        h.start()
        done = h.sim.run_until_true(
            lambda: h.kernel.finished and k2.finished,
            deadline=units.ms(500))
        assert done
        assert t0.compute_cycles_done == work
        assert t1.compute_cycles_done == work
        # Serialised on one PCPU: total elapsed >= sum of work.
        assert h.sim.now >= 2 * work


class TestCriticalSections:
    def test_uncontended_critical(self, harness):
        t = harness.kernel.spawn("t", prog(Critical("lk", 5000)), 0)
        assert harness.run_until_done()
        lk = harness.kernel.locks["lk"]
        assert lk.acquisitions == 1
        assert lk.contended_acquisitions == 0
        assert not lk.is_held
        assert t.locks_held == 0

    def test_contended_critical_serialises(self, harness):
        hold = units.us(50)
        for i in range(2):
            harness.kernel.spawn(
                f"t{i}", prog(Critical("lk", hold), Compute(100)), i)
        assert harness.run_until_done()
        lk = harness.kernel.locks["lk"]
        assert lk.acquisitions == 2
        # The loser waited at least the winner's hold time.
        assert lk.max_wait >= hold

    def test_spinner_occupies_vcpu(self):
        h = Harness(num_pcpus=2, num_vcpus=2)
        hold = units.ms(2)
        h.kernel.spawn("holder", prog(Critical("lk", hold)), 0)
        spinner = h.kernel.spawn("spinner",
                                 prog(Compute(100), Critical("lk", 100)), 1)
        h.run_ms(1)
        # While the holder is inside the critical section, the late
        # arriver spins and its VCPU stays online (not BLOCKED).
        assert spinner.state is TaskState.SPINNING
        assert spinner.vcpu.state is VCPUState.RUNNING

    def test_wait_trace_emitted_above_floor(self, harness):
        got = []
        harness.trace.subscribe("spinlock.wait", got.append)
        hold = units.us(30)  # > 2^10 cycles
        for i in range(2):
            harness.kernel.spawn(f"t{i}", prog(Critical("lk", hold)), i)
        harness.run_until_done()
        assert len(got) >= 1
        assert got[0]["lock"] == "lk"
        assert got[0]["wait"] >= 1 << 10


class TestSemaphores:
    def test_pingpong_across_vcpus(self, harness):
        a = harness.kernel.spawn(
            "a", prog(Compute(1000), SemUp("s"), Compute(1000)), 0)
        b = harness.kernel.spawn(
            "b", prog(SemDown("s"), Compute(1000)), 1)
        assert harness.run_until_done()
        assert a.done and b.done

    def test_blocked_task_releases_vcpu(self, harness):
        b = harness.kernel.spawn("b", prog(SemDown("s")), 1)
        harness.run_ms(1)
        assert b.state is TaskState.BLOCKED
        assert b.vcpu.state is VCPUState.BLOCKED

    def test_sem_wait_trace(self, harness):
        got = []
        harness.trace.subscribe("sem.wait", got.append)
        harness.kernel.spawn("b", prog(SemDown("s")), 1)
        harness.kernel.spawn("a", prog(Compute(units.ms(1)), SemUp("s")), 0)
        assert harness.run_until_done()
        assert len(got) == 1
        assert got[0]["wait"] > 0

    def test_pre_banked_semaphore_never_blocks(self, harness):
        harness.kernel.semaphore("s", initial=1)
        b = harness.kernel.spawn("b", prog(SemDown("s")), 0)
        assert harness.run_until_done()
        assert b.done


class TestBarriers:
    def test_barrier_synchronises(self):
        h = Harness(num_pcpus=4, num_vcpus=4)
        h.kernel.barrier("bar", 4)
        finish = []
        for i in range(4):
            # Uneven arrival times: the barrier must hold early arrivers.
            h.kernel.spawn(
                f"t{i}",
                prog(Compute(units.us(100) * (i + 1)), BarrierOp("bar"),
                     Compute(100)),
                i)
        assert h.run_until_done()
        bar = h.kernel.barriers["bar"]
        assert bar.crossings == 1
        assert bar.count == 0

    def test_repeated_barriers(self):
        h = Harness(num_pcpus=2, num_vcpus=2)
        h.kernel.barrier("bar", 2)
        ops = []
        for _ in range(5):
            ops += [Compute(units.us(10)), BarrierOp("bar")]
        for i in range(2):
            h.kernel.spawn(f"t{i}", prog(*ops), i)
        assert h.run_until_done()
        assert h.kernel.barriers["bar"].crossings == 5

    def test_undeclared_barrier_rejected(self, harness):
        harness.kernel.spawn("t", prog(BarrierOp("nope")), 0)
        with pytest.raises(WorkloadError):
            harness.run_until_done()

    def test_mismatched_parties_rejected(self, harness):
        harness.kernel.barrier("bar", 2)
        with pytest.raises(Exception):
            harness.kernel.barrier("bar", 3)

    def test_late_arrival_blocks_after_spin_budget(self):
        from tests.conftest import quiet_guest_config
        h = Harness(num_pcpus=2, num_vcpus=2,
                    guest_config=quiet_guest_config(
                        futex_spin_cycles=units.us(10)))
        h.kernel.barrier("bar", 2)
        early = h.kernel.spawn("early", prog(BarrierOp("bar")), 0)
        h.kernel.spawn("late", prog(Compute(units.ms(5)),
                                    BarrierOp("bar")), 1)
        h.run_ms(2)
        # Early arriver exhausted its tiny spin budget and went to sleep.
        assert early.state is TaskState.BLOCKED
        assert h.run_until_done()

    def test_early_arrival_spin_success_when_fast(self):
        from tests.conftest import quiet_guest_config
        h = Harness(num_pcpus=2, num_vcpus=2,
                    guest_config=quiet_guest_config(
                        futex_spin_cycles=units.ms(5)))
        h.kernel.barrier("bar", 2)
        h.kernel.spawn("a", prog(BarrierOp("bar")), 0)
        h.kernel.spawn("b", prog(Compute(units.us(100)),
                                 BarrierOp("bar")), 1)
        assert h.run_until_done()
        assert h.kernel.barriers["bar"].futex.spin_successes >= 1
        assert h.kernel.barriers["bar"].futex.blocks == 0


class TestFlags:
    def test_pipeline_ordering(self):
        h = Harness(num_pcpus=2, num_vcpus=2)
        order = []

        def producer():
            yield Compute(units.ms(1))
            order.append("produced")
            yield FlagSet("f", 1)

        def consumer():
            yield FlagWait("f", 1)
            order.append("consumed")
            yield Compute(10)

        h.kernel.spawn("p", producer(), 0)
        h.kernel.spawn("c", consumer(), 1)
        assert h.run_until_done()
        assert order == ["produced", "consumed"]

    def test_flag_wait_burns_cpu(self):
        h = Harness(num_pcpus=2, num_vcpus=2)
        c = h.kernel.spawn("c", iter([FlagWait("f", 1)]), 1)
        h.run_ms(1)
        assert c.state is TaskState.SPINNING
        assert c.vcpu.state is VCPUState.RUNNING  # spinning, not idle

    def test_already_satisfied_flag_is_instant(self, harness):
        harness.kernel.flag("f").advance(5)
        t = harness.kernel.spawn("t", prog(FlagWait("f", 3)), 0)
        assert harness.run_until_done()
        assert t.done

    def test_flag_wait_time_recorded(self):
        h = Harness(num_pcpus=2, num_vcpus=2)
        h.kernel.spawn("p", prog(Compute(units.ms(2)), FlagSet("f", 1)), 0)
        h.kernel.spawn("c", prog(FlagWait("f", 1)), 1)
        assert h.run_until_done()
        f = h.kernel.flags["f"]
        assert f.spin_waits == 1
        assert f.max_spin_wait >= units.ms(1.5)


class TestSleepAndDaemons:
    def test_sleep_blocks_then_wakes(self, harness):
        t = harness.kernel.spawn("t", prog(Sleep(units.ms(3)),
                                           Compute(100)), 0)
        harness.run_ms(1)
        assert t.state is TaskState.BLOCKED
        assert harness.run_until_done()
        assert harness.sim.now >= units.ms(3)

    def test_irq_daemon_spawned_when_configured(self):
        from repro.config import GuestConfig
        h = Harness(guest_config=GuestConfig())  # irq enabled by default
        names = [t.name for t in h.kernel.tasks]
        assert "kernel.irqd" in names

    def test_daemon_excluded_from_finished(self):
        from repro.config import GuestConfig
        h = Harness(guest_config=GuestConfig())
        h.kernel.spawn("w", prog(Compute(units.ms(2))), 1)
        assert h.run_until_done()
        assert h.kernel.finished  # despite the daemon never finishing

    def test_irq_daemon_does_work(self):
        from repro.config import GuestConfig
        h = Harness(guest_config=GuestConfig())
        h.kernel.spawn("w", prog(Compute(units.ms(50))), 1)
        h.run_ms(20)
        assert h.kernel.irq_count >= 10  # ~1 kHz

    def test_no_daemon_when_disabled(self, harness):
        assert all(not t.daemon for t in harness.kernel.tasks)


class TestGuestScheduling:
    def test_two_tasks_share_one_vcpu(self):
        h = Harness(num_pcpus=1, num_vcpus=1)
        work = units.ms(25)
        a = h.kernel.spawn("a", prog(Compute(work)), 0)
        b = h.kernel.spawn("b", prog(Compute(work)), 0)
        assert h.run_until_done(deadline_ms=1000)
        assert a.done and b.done
        assert h.kernel.guest_switches >= 1

    def test_rotation_respects_timeslice(self):
        from tests.conftest import quiet_guest_config
        h = Harness(num_pcpus=1, num_vcpus=1,
                    guest_config=quiet_guest_config(
                        timeslice_cycles=units.ms(1)))
        seg = units.us(100)
        a = h.kernel.spawn("a", prog(*[Compute(seg)] * 100), 0)
        b = h.kernel.spawn("b", prog(*[Compute(seg)] * 100), 0)
        h.run_ms(5)
        # With a 1 ms guest slice, both made progress early on.
        assert a.compute_cycles_done > 0
        assert b.compute_cycles_done > 0

    def test_spawn_round_robin_assignment(self, harness):
        t0 = harness.kernel.spawn("a", prog())
        t1 = harness.kernel.spawn("b", prog())
        assert t0.vcpu.index == 0
        assert t1.vcpu.index == 1

    def test_spawn_rejects_bad_vcpu_index(self, harness):
        with pytest.raises(WorkloadError):
            harness.kernel.spawn("t", prog(), vcpu_index=99)

    def test_unfinished_tasks(self, harness):
        harness.kernel.spawn("t", prog(Compute(units.ms(100))), 0)
        harness.run_ms(1)
        assert len(harness.kernel.unfinished_tasks()) == 1
