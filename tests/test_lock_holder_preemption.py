"""Microscopic lock-holder-preemption scenarios.

These tests construct LHP deliberately (rather than waiting for it to
emerge statistically) and verify each piece of the causal chain the
paper describes: the preempted holder, the wall-clock wait accrual, the
unfair re-acquisition race, and the Monitoring Module's in-progress
detection.
"""

import pytest

from repro import units
from repro.config import GuestConfig, SchedulerConfig, VMConfig
from repro.guest.kernel import GuestKernel
from repro.guest.ops import Compute, Critical
from repro.guest.task import TaskState
from repro.hardware.machine import Machine
from repro.config import MachineConfig
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.vmm.credit import CreditScheduler
from repro.vmm.vm import VCPUState, VM
from tests.conftest import quiet_guest_config


def build_two_vms_one_pcpu():
    """Two 1-VCPU VMs contending one PCPU: preemption is guaranteed."""
    sim = Simulator()
    trace = TraceBus()
    machine = Machine(MachineConfig(num_pcpus=1, sockets=1), sim)
    sched = CreditScheduler(machine, sim, trace, SchedulerConfig())
    vms = []
    kernels = []
    for i in range(2):
        vm = VM(i, VMConfig(name=f"vm{i}", num_vcpus=1,
                            guest=quiet_guest_config()), sim, trace)
        sched.add_vm(vm)
        kernels.append(GuestKernel(vm, sim, trace, quiet_guest_config()))
        vms.append(vm)
    return sim, trace, sched, vms, kernels


class TestHolderPreemption:
    def test_holder_preempted_mid_critical_section(self):
        """A task holding a spinlock keeps it across VMM preemption; the
        release happens only once its VCPU runs again."""
        sim, trace, sched, vms, (k0, k1) = build_two_vms_one_pcpu()
        hold = units.ms(25)  # spans several ticks: preemption guaranteed
        holder = k0.spawn("holder", iter([Critical("L", hold)]), 0)
        k1.spawn("other", iter([Compute(units.ms(60))]), 0)
        sched.start()
        # Run until the holder has been preempted at least once while
        # inside the critical section.
        sim.run_until_true(
            lambda: holder.locks_held == 1
            and holder.vcpu.state is VCPUState.RUNNABLE,
            deadline=units.ms(100))
        assert holder.locks_held == 1
        assert k0.locks["L"].holder is holder
        # Eventually the holder resumes and releases.
        sim.run_until_true(lambda: holder.done, deadline=units.seconds(2))
        assert holder.done
        assert k0.locks["L"].holder is None

    def test_wait_accrues_across_spinner_offline_time(self):
        """The measured wait is wall-clock: it includes periods where the
        spinner itself was descheduled (the guest hrtimer view)."""
        sim = Simulator()
        trace = TraceBus()
        machine = Machine(MachineConfig(num_pcpus=2, sockets=1), sim)
        sched = CreditScheduler(machine, sim, trace, SchedulerConfig())
        vm = VM(0, VMConfig(name="g", num_vcpus=2,
                            guest=quiet_guest_config()), sim, trace)
        sched.add_vm(vm)
        k = GuestKernel(vm, sim, trace, quiet_guest_config())
        got = []
        trace.subscribe("spinlock.wait", got.append)
        hold = units.ms(8)
        k.spawn("holder", iter([Critical("L", hold)]), 0)
        k.spawn("spinner", iter([Compute(units.us(50)),
                                 Critical("L", 1000)]), 1)
        sched.start()
        sim.run_until_true(lambda: k.finished, deadline=units.seconds(2))
        contended = [r for r in got if r["wait"] > units.ms(1)]
        assert contended, "the spinner must have waited for the hold"
        assert contended[0]["wait"] >= hold - units.us(100)

    def test_spinner_burns_online_time(self):
        """While the holder is preempted, an online spinner's VCPU stays
        busy — the CPU-waste mechanism."""
        sim, trace, sched, vms, (k0, k1) = build_two_vms_one_pcpu()
        # vm0's task takes the lock then computes forever; vm1 spins on
        # the same lock?  Locks are per-guest: use one guest with 2 tasks
        # instead — covered in test_guest_kernel.  Here: verify via the
        # PCPU busy accounting that a spinning guest consumes real time.
        k0.spawn("holder", iter([Critical("L", units.ms(30))]), 0)
        k1.spawn("burner", iter([Compute(units.ms(30))]), 0)
        sched.start()
        sim.run_until(units.ms(55))  # inside the combined 60 ms of work
        assert sched.machine[0].utilization() > 0.95


class TestInProgressDetection:
    def test_monitor_fires_during_long_wait(self):
        """The over-threshold check fires ~2^20 cycles into the wait,
        long before acquisition."""
        from repro.asman.monitor import MonitoringModule
        from repro.vmm.hypercall import HypercallTable
        from repro.vmm.vm import VCRD
        import numpy as np

        sim = Simulator()
        trace = TraceBus()
        machine = Machine(MachineConfig(num_pcpus=2, sockets=1), sim)
        sched = CreditScheduler(machine, sim, trace, SchedulerConfig())
        vm = VM(0, VMConfig(name="g", num_vcpus=2,
                            guest=quiet_guest_config()), sim, trace)
        sched.add_vm(vm)
        k = GuestKernel(vm, sim, trace, quiet_guest_config())
        table = HypercallTable(sim, trace)
        mon = MonitoringModule(k, table, rng=np.random.default_rng(0))
        hold = units.ms(10)  # >> 2^20 cycles (~0.45 ms)
        k.spawn("holder", iter([Critical("L", hold)]), 0)
        spinner = k.spawn("spinner", iter([Compute(units.us(20)),
                                           Critical("L", 1000)]), 1)
        sched.start()
        # VCRD goes HIGH while the spinner is still spinning.
        sim.run_until_true(lambda: vm.vcrd is VCRD.HIGH,
                           deadline=units.ms(5))
        assert vm.vcrd is VCRD.HIGH
        assert spinner.state is TaskState.SPINNING  # wait still ongoing
        assert mon.adjusting_events == 1

    def test_unfair_reacquisition_race(self):
        """A newly arriving online task can win a freed lock ahead of an
        offline spinner (the non-ticket lock's unfairness)."""
        sim = Simulator()
        trace = TraceBus()
        machine = Machine(MachineConfig(num_pcpus=1, sockets=1), sim)
        sched = CreditScheduler(machine, sim, trace, SchedulerConfig())
        vm = VM(0, VMConfig(name="g", num_vcpus=1,
                            guest=quiet_guest_config()), sim, trace)
        sched.add_vm(vm)
        k = GuestKernel(vm, sim, trace, quiet_guest_config())
        lock = k.lock("L")
        # Manually construct: task A holds, task B queued as waiter but
        # its "VCPU" offline is impossible with one VCPU... exercise the
        # grant policy directly instead.
        a = k.spawn("a", iter([Compute(units.seconds(1))]), 0)
        sched.start()
        sim.run_until(units.us(10))
        assert lock.try_acquire(a, sim.now)
        lock.release(a)
        # After release with no online spinners the lock is simply free.
        assert lock.holder is None
