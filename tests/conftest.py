"""Shared fixtures for the test suite.

Also provides ``--shuffle-seed N``: a deterministic random reordering of
the collected test items.  Every test module must pass standalone and in
any order; the CI randomized-order step rotates the seed to keep hidden
inter-test coupling from creeping back in.
"""

from __future__ import annotations

import random

import numpy as np
import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--shuffle-seed", type=int, default=None, metavar="N",
        help="deterministically shuffle test order with this seed "
             "(default: collection order)")


def pytest_collection_modifyitems(config: pytest.Config,
                                  items: list) -> None:
    seed = config.getoption("--shuffle-seed")
    if seed is None:
        return
    random.Random(seed).shuffle(items)

from repro.config import (GuestConfig, MachineConfig, SchedulerConfig,
                          VMConfig)
from repro.guest.kernel import GuestKernel
from repro.hardware.machine import Machine
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.tracing import TraceBus
from repro.vmm.credit import CreditScheduler
from repro.vmm.hypercall import HypercallTable
from repro.vmm.vm import VM


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def trace() -> TraceBus:
    return TraceBus()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> RngStreams:
    return RngStreams(seed=7)


@pytest.fixture
def machine(sim) -> Machine:
    return Machine(MachineConfig(num_pcpus=8), sim)


@pytest.fixture
def small_machine(sim) -> Machine:
    return Machine(MachineConfig(num_pcpus=2, sockets=1), sim)


def quiet_guest_config(**overrides) -> GuestConfig:
    """Guest config without the IRQ daemon, for deterministic unit tests."""
    defaults = dict(irq_interval_cycles=0)
    defaults.update(overrides)
    return GuestConfig(**defaults)


@pytest.fixture
def guest_config() -> GuestConfig:
    return quiet_guest_config()


class Harness:
    """A minimal wired system: machine + credit scheduler + one VM with a
    guest kernel, convenient for guest/VMM unit tests."""

    def __init__(self, num_pcpus: int = 4, num_vcpus: int = 2,
                 sched_config: SchedulerConfig | None = None,
                 guest_config: GuestConfig | None = None,
                 scheduler_cls=CreditScheduler) -> None:
        self.sim = Simulator()
        self.trace = TraceBus()
        self.machine = Machine(MachineConfig(num_pcpus=num_pcpus,
                                             sockets=1), self.sim)
        self.scheduler = scheduler_cls(self.machine, self.sim, self.trace,
                                       sched_config or SchedulerConfig())
        self.hypercalls = HypercallTable(self.sim, self.trace)
        gcfg = guest_config or quiet_guest_config()
        self.vm = VM(0, VMConfig(name="vm0", num_vcpus=num_vcpus,
                                 guest=gcfg), self.sim, self.trace)
        self.scheduler.add_vm(self.vm)
        self.kernel = GuestKernel(self.vm, self.sim, self.trace, gcfg)

    def add_vm(self, name: str, num_vcpus: int = 2, weight: int = 256,
               guest_config: GuestConfig | None = None) -> tuple[VM, GuestKernel]:
        gcfg = guest_config or quiet_guest_config()
        vm = VM(len(self.scheduler.vms),
                VMConfig(name=name, num_vcpus=num_vcpus, weight=weight,
                         guest=gcfg),
                self.sim, self.trace)
        self.scheduler.add_vm(vm)
        kernel = GuestKernel(vm, self.sim, self.trace, gcfg)
        return vm, kernel

    def start(self) -> None:
        if not getattr(self, "_started", False):
            self._started = True
            self.scheduler.start()

    def run_ms(self, ms_amount: float) -> None:
        from repro import units
        self.start()
        self.sim.run_until(self.sim.now + units.ms(ms_amount))

    def run_until_done(self, deadline_ms: float = 10_000) -> bool:
        from repro import units
        self.start()
        return self.sim.run_until_true(
            lambda: self.kernel.finished,
            deadline=self.sim.now + units.ms(deadline_ms))


@pytest.fixture
def harness() -> Harness:
    return Harness()
