"""API-surface meta-tests: documentation and export hygiene.

Deliverable (e) requires doc comments on every public item; these tests
enforce it mechanically so it cannot rot.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro.")
    if not name.startswith("repro._")
]


def _public_members(module):
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        obj = getattr(module, attr_name)
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield attr_name, obj


class TestDocumentation:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_every_module_has_a_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), \
            f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", MODULES)
    def test_every_public_class_and_function_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = [
            name for name, obj in _public_members(module)
            if not (obj.__doc__ and obj.__doc__.strip())
        ]
        assert not undocumented, \
            f"{module_name}: missing docstrings on {undocumented}"

    def test_package_all_exports_resolve(self):
        for module_name in MODULES:
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), \
                    f"{module_name}.__all__ lists missing {name!r}"

    def test_top_level_api_importable(self):
        from repro import (AdaptiveScheduler, CreditScheduler,  # noqa: F401
                           NasBenchmark, Testbed, run_single_vm)


class TestVersioning:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2
