"""The perf-regression harness (repro.perf)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.perf.harness import (BenchResult, bench, check_against_baseline,
                                fingerprint_of, load_baseline, registry,
                                write_baseline, write_result)


def result(name="demo", events_per_s=1000.0, fingerprint=None):
    return BenchResult(name=name, wall_s=1.0, events=1000,
                       events_per_s=events_per_s, peak_heap_entries=7,
                       fingerprint=fingerprint)


def baseline_doc(results, calibration=1000.0, config=None):
    from repro.perf.harness import run_config

    return {
        "meta": {"mode": "quick",
                 "config": run_config() if config is None else config,
                 "calibration_events_per_s": calibration},
        "benches": {r.name: r.to_dict() for r in results},
    }


class TestBenchResult:
    def test_to_dict_schema(self):
        d = result(fingerprint=42).to_dict()
        assert set(d) >= {"name", "wall_s", "events", "events_per_s",
                          "peak_heap_entries", "fingerprint"}

    def test_fingerprint_omitted_when_absent(self):
        assert "fingerprint" not in result().to_dict()

    def test_write_result_emits_bench_json(self, tmp_path):
        path = write_result(result(), tmp_path)
        assert path.name == "BENCH_demo.json"
        doc = json.loads(path.read_text())
        assert doc["events"] == 1000
        assert doc["peak_heap_entries"] == 7


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint_of(1, 2, 3) == fingerprint_of(1, 2, 3)

    def test_order_sensitive(self):
        assert fingerprint_of(1, 2) != fingerprint_of(2, 1)

    def test_value_sensitive(self):
        assert fingerprint_of(1000) != fingerprint_of(1001)


class TestRegistry:
    def test_required_benchmarks_registered(self):
        # The PR contract: at least 4 benchmarks, micro and macro tiers.
        assert len(registry) >= 4
        assert "event_throughput" in registry
        assert "schedule_cancel_churn" in registry
        assert "fig07_lu_testbed" in registry
        assert "fig11a_mix_testbed" in registry

    def test_duplicate_name_rejected(self):
        @bench("test_dummy_unique")
        def dummy(quick):
            return result("test_dummy_unique")

        try:
            with pytest.raises(ConfigurationError):
                bench("test_dummy_unique")(dummy)
        finally:
            del registry["test_dummy_unique"]


class TestBaselineCheck:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "base.json"
        write_baseline([result(fingerprint=9)], path,
                       quick=True, calibration=1234.5)
        doc = load_baseline(path)
        assert doc["meta"]["mode"] == "quick"
        assert doc["benches"]["demo"]["fingerprint"] == 9

    def test_equal_run_passes(self):
        base = baseline_doc([result(fingerprint=9)])
        got = [result(fingerprint=9)]
        assert check_against_baseline(got, base, calibration=1000.0) == []

    def test_regression_detected(self):
        base = baseline_doc([result(events_per_s=1000.0)])
        got = [result(events_per_s=500.0)]  # 50% drop > 30% threshold
        failures = check_against_baseline(got, base, calibration=1000.0)
        assert len(failures) == 1
        assert "events/s" in failures[0]

    def test_host_speed_normalisation(self):
        # The run is 50% slower in raw events/s, but the host calibrates
        # 50% slower too: not a regression.
        base = baseline_doc([result(events_per_s=1000.0)],
                            calibration=2000.0)
        got = [result(events_per_s=500.0)]
        assert check_against_baseline(got, base, calibration=1000.0) == []

    def test_fingerprint_mismatch_detected(self):
        base = baseline_doc([result(fingerprint=9)])
        got = [result(fingerprint=10)]
        failures = check_against_baseline(got, base, calibration=1000.0)
        assert len(failures) == 1
        assert "fingerprint" in failures[0]

    def test_missing_benchmark_reported(self):
        base = baseline_doc([result(name="gone")])
        failures = check_against_baseline([], base, calibration=1000.0)
        assert failures and "not run" in failures[0]

    def test_threshold_is_configurable(self):
        base = baseline_doc([result(events_per_s=1000.0)])
        got = [result(events_per_s=850.0)]  # 15% drop
        assert check_against_baseline(got, base, calibration=1000.0,
                                      threshold=0.30) == []
        assert check_against_baseline(got, base, calibration=1000.0,
                                      threshold=0.10) != []

    def test_config_mismatch_refused(self):
        # A baseline recorded with the opposite fast-forward setting is
        # not performance-comparable: the check must fail loudly instead
        # of reporting a phantom regression (or masking a real one).
        from repro.perf.harness import run_config

        other = dict(run_config())
        other["fastforward"] = not other["fastforward"]
        base = baseline_doc([result(events_per_s=1000.0)], config=other)
        failures = check_against_baseline(
            [result(events_per_s=1000.0)], base, calibration=1000.0)
        assert len(failures) == 1
        assert "config mismatch" in failures[0]

    def test_unstamped_baseline_refused(self):
        base = baseline_doc([result()])
        del base["meta"]["config"]
        failures = check_against_baseline([result()], base,
                                          calibration=1000.0)
        assert failures and "config stamp" in failures[0]

    def test_write_baseline_stamps_config(self, tmp_path):
        from repro.perf.harness import run_config, write_baseline

        path = tmp_path / "base.json"
        write_baseline([result()], path, quick=True, calibration=1.0)
        doc = load_baseline(path)
        assert doc["meta"]["config"] == run_config()
