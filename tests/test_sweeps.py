"""The sweep framework."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweeps import Cell, Sweep


def _linear(params, seed):
    # Deterministic pseudo-measurement: value depends on params + seed.
    return params["x"] * 10 + params.get("y", 0) + seed * 0.1


class TestCell:
    def test_mean_std(self):
        c = Cell(params=(("x", 1),), values=(1.0, 2.0, 3.0))
        assert c.mean == pytest.approx(2.0)
        assert c.std == pytest.approx(1.0)
        assert c.n == 3

    def test_single_value_no_dispersion(self):
        c = Cell(params=(), values=(5.0,))
        assert c.std == 0.0
        assert c.ci_halfwidth() == 0.0

    def test_cv(self):
        c = Cell(params=(), values=(9.0, 11.0))
        assert c.cv == pytest.approx(c.std / 10.0)

    def test_param_lookup(self):
        c = Cell(params=(("x", 3), ("y", 4)), values=(0.0,))
        assert c.param("y") == 4

    def test_stats_memoized_without_dict(self):
        c = Cell(params=(), values=(1.0, 2.0, 3.0))
        # __slots__ dataclass: no per-instance __dict__ grows behind it.
        assert not hasattr(c, "__dict__")
        assert c.mean is c.mean  # cached float object, not recomputed
        assert c.std == pytest.approx(1.0)

    def test_still_frozen(self):
        c = Cell(params=(), values=(1.0,))
        with pytest.raises(AttributeError):
            c.values = (2.0,)

    def test_memoized_cell_pickles(self):
        import pickle
        c = Cell(params=(("x", 1),), values=(1.0, 2.0))
        clone = pickle.loads(pickle.dumps(c))
        assert clone.mean == c.mean and clone.std == c.std


class TestSweep:
    def test_grid_covers_cartesian_product(self):
        sweep = Sweep(_linear, {"x": [1, 2], "y": [0, 5]}, seeds=(1,))
        result = sweep.run()
        assert len(result.cells) == 4

    def test_cell_lookup(self):
        result = Sweep(_linear, {"x": [1, 2]}, seeds=(1, 2)).run()
        c = result.cell(x=2)
        assert c.mean == pytest.approx(20.15)

    def test_missing_cell_raises(self):
        result = Sweep(_linear, {"x": [1]}, seeds=(1,)).run()
        with pytest.raises(KeyError):
            result.cell(x=99)

    def test_series_along_axis(self):
        result = Sweep(_linear, {"x": [1, 2, 3], "y": [7]}, seeds=(1,)).run()
        pts = result.series("x", y=7)
        assert [x for x, _ in pts] == [1, 2, 3]
        assert pts[0][1] == pytest.approx(17.1)

    def test_table_renders(self):
        result = Sweep(_linear, {"x": [1]}, seeds=(1, 2)).run()
        out = result.table("runtime").render()
        assert "runtime_mean" in out and "ci95" in out

    def test_progress_callback(self):
        lines = []
        Sweep(_linear, {"x": [1, 2]}, seeds=(1,)).run(progress=lines.append)
        assert len(lines) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Sweep(_linear, {}, seeds=(1,))
        with pytest.raises(ConfigurationError):
            Sweep(_linear, {"x": []}, seeds=(1,))
        with pytest.raises(ConfigurationError):
            Sweep(_linear, {"x": [1]}, seeds=())

    def test_max_cv(self):
        result = Sweep(_linear, {"x": [1]}, seeds=(1, 2, 3)).run()
        assert result.max_cv() > 0

    def test_parallel_run_matches_serial(self):
        # _linear is module-level, so it crosses the spawn boundary.
        sweep = Sweep(_linear, {"x": [1, 2], "y": [0, 5]}, seeds=(1, 2))
        serial = sweep.run(jobs=1)
        parallel = sweep.run(jobs=2)
        assert len(serial.cells) == len(parallel.cells)
        for a, b in zip(serial.cells, parallel.cells):
            assert a.params == b.params
            assert a.values == b.values


class TestSweepWithSimulator:
    def test_real_scenario_end_to_end(self):
        from repro.experiments.runner import run_single_vm
        from repro.workloads.nas import NasBenchmark

        def scenario(params, seed):
            r = run_single_vm(
                lambda: NasBenchmark.by_name("EP", scale=0.05),
                scheduler=params["scheduler"],
                online_rate=params["rate"], seed=seed)
            return r.runtime_seconds

        result = Sweep(scenario,
                       {"scheduler": ["credit"], "rate": [1.0, 0.4]},
                       seeds=(1, 2)).run()
        fast = result.cell(scheduler="credit", rate=1.0).mean
        slow = result.cell(scheduler="credit", rate=0.4).mean
        assert slow > fast
        # The paper's own variability criterion (Section 5.3).
        assert result.max_cv() < 0.10
