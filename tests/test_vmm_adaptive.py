"""The Adaptive Scheduler (ASMan) and the static coscheduler (CON)."""

import pytest

from repro import units
from repro.config import MachineConfig, SchedulerConfig, VMConfig
from repro.guest.kernel import GuestKernel
from repro.guest.ops import Compute
from repro.hardware.machine import Machine
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.vmm.adaptive import AdaptiveScheduler
from repro.vmm.coschedule import StaticCoscheduler
from repro.vmm.vm import VCRD, VCPUState, VM
from tests.conftest import quiet_guest_config


def build(scheduler_cls=AdaptiveScheduler, num_pcpus=8, wc=True,
          vms=(("a", 4, 256),)):
    sim = Simulator()
    trace = TraceBus()
    machine = Machine(MachineConfig(num_pcpus=num_pcpus, sockets=1), sim)
    sched = scheduler_cls(machine, sim, trace,
                          SchedulerConfig(work_conserving=wc))
    out = []
    for i, (name, nv, weight) in enumerate(vms):
        vm = VM(i, VMConfig(name=name, num_vcpus=nv, weight=weight,
                            guest=quiet_guest_config()), sim, trace)
        sched.add_vm(vm)
        out.append(vm)
    return sim, trace, machine, sched, out


def busy_guest(vm, sim, trace, seconds=5.0):
    k = GuestKernel(vm, sim, trace, quiet_guest_config())
    for i in range(len(vm.vcpus)):
        k.spawn(f"{vm.name}.t{i}", iter([Compute(units.seconds(seconds))]), i)
    return k


class TestRelocation:
    def test_relocate_spreads_stacked_vcpus(self):
        sim, trace, machine, sched, (a,) = build()
        # Stack all four VCPUs onto pcpu 0's runq.
        for v in a.vcpus[1:]:
            sched._move_to_runq(v, 0)
        sched.relocate(a)
        homes = sorted(v.home_pcpu_id for v in a.vcpus)
        assert len(set(homes)) == 4

    def test_relocate_counts_moves(self):
        sim, trace, machine, sched, (a,) = build()
        for v in a.vcpus[1:]:
            sched._move_to_runq(v, 0)
        sched.relocate(a)
        assert sched.relocations == 3

    def test_relocate_noop_when_already_spread(self):
        sim, trace, machine, sched, (a,) = build()
        sched.relocate(a)
        assert sched.relocations == 0

    def test_vcrd_high_triggers_relocation(self):
        sim, trace, machine, sched, (a,) = build()
        busy_guest(a, sim, trace)
        for v in a.vcpus[1:]:
            sched._move_to_runq(v, 0)
        a.set_vcrd(VCRD.HIGH)
        homes = set()
        for v in a.vcpus:
            homes.add(v.pcpu.id if v.is_online else v.home_pcpu_id)
        assert len(homes) == 4


class TestMigrationFilter:
    def test_forbids_colocating_cosched_vm(self):
        sim, trace, machine, sched, (a,) = build()
        a.vcrd = VCRD.HIGH  # flag only; keep VCPUs RUNNABLE in their runqs
        v = a.vcpus[0]
        sibling_home = a.vcpus[1].home_pcpu_id
        assert not sched.may_migrate(v, machine[sibling_home])

    def test_allows_free_pcpu(self):
        sim, trace, machine, sched, (a,) = build()
        a.vcrd = VCRD.HIGH
        assert sched.may_migrate(a.vcpus[0], machine[7])

    def test_no_filter_when_vcrd_low(self):
        sim, trace, machine, sched, (a,) = build()
        assert sched.may_migrate(a.vcpus[0],
                                 machine[a.vcpus[1].home_pcpu_id])


class TestCoschedulingFanout:
    def test_high_vcrd_brings_gang_online(self):
        sim, trace, machine, sched, (a, b) = build(
            num_pcpus=4, vms=[("a", 4, 256), ("b", 4, 256)])
        busy_guest(a, sim, trace)
        busy_guest(b, sim, trace)
        sched.start()
        sim.run_until(units.ms(25))
        a.set_vcrd(VCRD.HIGH)
        # The fan-out launches when one member is next picked (a tick away
        # at most, Algorithm 4), then IPIs bring the rest online.
        online_counts = []
        for _ in range(30):
            sim.run_until(sim.now + units.ms(1))
            online_counts.append(sum(1 for v in a.vcpus if v.is_online))
        assert max(online_counts) == 4  # the whole gang was online together

    def test_cosched_trace_emitted(self):
        sim, trace, machine, sched, (a, b) = build(
            num_pcpus=4, vms=[("a", 4, 256), ("b", 4, 256)])
        got = []
        trace.subscribe("sched.cosched", got.append)
        busy_guest(a, sim, trace)
        busy_guest(b, sim, trace)
        sched.start()
        sim.run_until(units.ms(25))
        a.set_vcrd(VCRD.HIGH)
        sim.run_until(sim.now + units.ms(30))
        assert got
        assert got[0]["vm"] == "a"

    def test_launch_counter(self):
        sim, trace, machine, sched, (a, b) = build(
            num_pcpus=4, vms=[("a", 4, 256), ("b", 4, 256)])
        busy_guest(a, sim, trace)
        busy_guest(b, sim, trace)
        sched.start()
        sim.run_until(units.ms(25))
        a.set_vcrd(VCRD.HIGH)
        sim.run_until(units.ms(60))
        assert sched.cosched_launches >= 1
        assert sched.ipi.sent >= 1

    def test_cooldown_limits_launch_rate(self):
        sim, trace, machine, sched, (a, b) = build(
            num_pcpus=4, vms=[("a", 4, 256), ("b", 4, 256)])
        busy_guest(a, sim, trace)
        busy_guest(b, sim, trace)
        sched.start()
        a.set_vcrd(VCRD.HIGH)
        sim.run_until(units.ms(100))
        max_launches = 100 // units.to_ms(
            sched.config.cosched_cooldown_cycles) + 2
        assert sched.cosched_launches <= max_launches

    def test_no_fanout_for_low_vcrd(self):
        sim, trace, machine, sched, (a, b) = build(
            num_pcpus=4, vms=[("a", 4, 256), ("b", 4, 256)])
        busy_guest(a, sim, trace)
        busy_guest(b, sim, trace)
        sched.start()
        sim.run_until(units.ms(100))
        assert sched.cosched_launches == 0

    def test_vcrd_low_clears_gang(self):
        sim, trace, machine, sched, (a, b) = build(
            num_pcpus=4, vms=[("a", 4, 256), ("b", 4, 256)])
        busy_guest(a, sim, trace)
        busy_guest(b, sim, trace)
        sched.start()
        sim.run_until(units.ms(25))
        a.set_vcrd(VCRD.HIGH)
        sim.run_until(units.ms(30))
        a.set_vcrd(VCRD.LOW)
        assert a.id not in sched._gang_until
        assert all(not v.boosted for v in a.vcpus)


class TestGangParking:
    def test_gang_parks_and_unparks_together(self):
        sim, trace, machine, sched, (a, d0) = build(
            num_pcpus=8, wc=False, vms=[("a", 4, 32), ("d0", 8, 256)])
        busy_guest(a, sim, trace, seconds=20)
        a.set_vcrd(VCRD.HIGH)
        sched.start()
        states = []
        for step in range(1, 40):
            sim.run_until(units.ms(step * 10))
            states.append(tuple(v.parked for v in a.vcpus))
        # At every observation all four were parked or none were.
        for snapshot in states:
            assert len(set(snapshot)) == 1

    def test_per_vcpu_parking_when_low(self):
        sim, trace, machine, sched, (a, d0) = build(
            num_pcpus=8, wc=False, vms=[("a", 4, 32), ("d0", 8, 256)])
        busy_guest(a, sim, trace, seconds=20)
        sched.start()
        sim.run_until(units.seconds(1))
        # LOW VCRD: the base per-VCPU rule applies; long-run rate matches
        # the weight entitlement (22.2%).
        rate = sum(v.online_rate() for v in a.vcpus) / 4
        assert rate == pytest.approx(2 / 9, abs=0.05)

    def test_gang_rate_matches_entitlement(self):
        sim, trace, machine, sched, (a, d0) = build(
            num_pcpus=8, wc=False, vms=[("a", 4, 32), ("d0", 8, 256)])
        busy_guest(a, sim, trace, seconds=20)
        a.set_vcrd(VCRD.HIGH)
        sched.start()
        sim.run_until(units.seconds(2))
        rate = sum(v.online_rate() for v in a.vcpus) / 4
        # Coscheduling must not grant extra time (cap preserved).
        assert rate == pytest.approx(2 / 9, abs=0.05)


class TestStaticCoscheduler:
    def test_wants_cosched_follows_hint(self):
        sim, trace, machine, sched, (a, b) = build(
            StaticCoscheduler, vms=[("a", 4, 256), ("b", 4, 256)])
        a.concurrent_hint = True
        assert sched._wants_cosched(a)
        assert not sched._wants_cosched(b)

    def test_ignores_vcrd(self):
        sim, trace, machine, sched, (a,) = build(StaticCoscheduler)
        a.set_vcrd(VCRD.HIGH)  # monitoring module talking to CON
        assert not sched._wants_cosched(a)  # hint not set -> not concurrent

    def test_concurrent_vm_gets_fanouts_without_vcrd(self):
        sim, trace, machine, sched, (a, b) = build(
            StaticCoscheduler, num_pcpus=4,
            vms=[("a", 4, 256), ("b", 4, 256)])
        a.concurrent_hint = True
        busy_guest(a, sim, trace)
        busy_guest(b, sim, trace)
        sched.start()
        sim.run_until(units.ms(100))
        assert sched.cosched_launches >= 1
