"""Reproducibility: identical seeds give identical runs."""

import pytest

from repro.experiments.runner import run_single_vm
from repro.workloads.nas import NasBenchmark


class TestDeterminism:
    def _run(self, sched, seed):
        return run_single_vm(
            lambda: NasBenchmark.by_name("LU", scale=0.2),
            scheduler=sched, online_rate=0.4, seed=seed)

    @pytest.mark.parametrize("sched", ["credit", "asman", "con"])
    def test_same_seed_same_runtime(self, sched):
        a = self._run(sched, seed=11)
        b = self._run(sched, seed=11)
        assert a.runtime_cycles == b.runtime_cycles
        assert a.spin_summary == b.spin_summary

    def test_same_seed_same_wait_trace(self):
        a = run_single_vm(lambda: NasBenchmark.by_name("LU", scale=0.2),
                          "credit", online_rate=2 / 9, seed=4,
                          collect_scatter=True)
        b = run_single_vm(lambda: NasBenchmark.by_name("LU", scale=0.2),
                          "credit", online_rate=2 / 9, seed=4,
                          collect_scatter=True)
        assert a.spin_scatter == b.spin_scatter

    def test_different_seeds_differ(self):
        a = self._run("credit", seed=1)
        b = self._run("credit", seed=2)
        assert a.runtime_cycles != b.runtime_cycles
