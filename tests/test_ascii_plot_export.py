"""ASCII plotting and export serialisation."""

import json

import pytest

from repro.metrics import ascii_plot
from repro.metrics.export import (figure_from_json, figure_to_csv,
                                  figure_to_json, spinlock_stats_to_csv,
                                  trace_records_to_json, write_text)
from repro.metrics.spinlock_stats import SpinlockStats
from repro.sim.tracing import TraceRecord


class TestScatter:
    def test_renders_grid(self):
        out = ascii_plot.scatter([(0, 0), (10, 10)], width=20, height=5,
                                 title="t")
        assert "t" in out
        assert out.count("*") == 2

    def test_empty_input(self):
        assert "(no data)" in ascii_plot.scatter([], title="x")

    def test_single_point(self):
        out = ascii_plot.scatter([(5, 5)])
        assert "*" in out

    def test_axis_labels(self):
        out = ascii_plot.scatter([(0, 1), (2, 3)], x_label="idx",
                                 y_label="log2")
        assert "idx" in out and "log2" in out


class TestBars:
    def test_bar_chart_proportional(self):
        out = ascii_plot.bar_chart({"a": 1.0, "b": 2.0}, width=20)
        lines = out.splitlines()
        assert lines[0].count("#") < lines[1].count("#")

    def test_bar_chart_values_shown(self):
        out = ascii_plot.bar_chart({"x": 1.234}, unit="s")
        assert "1.234s" in out

    def test_grouped_bars(self):
        out = ascii_plot.grouped_bars(
            {"LU": {"credit": 2.0, "asman": 1.5}}, title="fig")
        assert "LU" in out and "credit" in out and "asman" in out

    def test_empty(self):
        assert "(no data)" in ascii_plot.bar_chart({})
        assert "(no data)" in ascii_plot.grouped_bars({})


class TestLinesAndHistograms:
    def test_line_plot_legend(self):
        out = ascii_plot.line_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "*=a" in out and "o=b" in out

    def test_line_plot_empty(self):
        assert "(no data)" in ascii_plot.line_plot({})

    def test_histogram_counts(self):
        out = ascii_plot.histogram([1, 1, 1, 5], bins=4)
        assert " 3" in out and " 1" in out

    def test_histogram_constant_values(self):
        out = ascii_plot.histogram([2.0, 2.0], bins=3)
        assert "2" in out

    def test_wait_histogram_threshold_marker(self):
        out = ascii_plot.wait_histogram([12.0, 21.0], threshold=20.0)
        assert "<- 2^delta threshold" in out
        assert "2^12" in out and "2^21" in out

    def test_wait_histogram_empty(self):
        assert "(no data)" in ascii_plot.wait_histogram([])


class _FakeFigure:
    figure = "Figure X"
    description = "demo"
    series = {"s": [(1.0, 2.0), (3.0, 4.0)]}
    notes = {"n": 5.0}


class TestExport:
    def test_json_roundtrip(self):
        text = figure_to_json(_FakeFigure())
        back = figure_from_json(text)
        assert back["figure"] == "Figure X"
        assert back["series"]["s"] == [(1.0, 2.0), (3.0, 4.0)]

    def test_json_is_valid(self):
        payload = json.loads(figure_to_json(_FakeFigure()))
        assert payload["notes"]["n"] == 5.0

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError):
            figure_from_json('{"not": "a figure"}')

    def test_csv_long_format(self):
        text = figure_to_csv(_FakeFigure())
        lines = text.strip().splitlines()
        assert lines[0] == "series,x,y"
        assert len(lines) == 3

    def test_spinlock_csv(self, trace):
        stats = SpinlockStats(trace)
        trace.emit(10, "spinlock.wait", vm="v", lock="l", wait=2048)
        text = spinlock_stats_to_csv(stats)
        assert "time_cycles,lock,wait_cycles" in text
        assert "10,l,2048" in text

    def test_trace_json(self):
        recs = [TraceRecord(1, "a", {"k": "v"})]
        payload = json.loads(trace_records_to_json(recs))
        assert payload[0]["category"] == "a"

    def test_write_text_creates_dirs(self, tmp_path):
        target = tmp_path / "deep" / "file.txt"
        write_text(target, "hello")
        assert target.read_text() == "hello"


class TestCli:
    def test_list_command(self, capsys):
        from repro.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "asman" in out

    def test_unknown_figure_errors(self, capsys):
        from repro.cli import main
        assert main(["figure", "fig99"]) == 2

    def test_run_command(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["run", "--workload", "EP", "--scale", "0.05",
                     "--rate", "1.0",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "runtime:" in out

    def test_run_command_warm_cache_identical(self, tmp_path, capsys):
        from repro.cli import main
        argv = ["run", "--workload", "EP", "--scale", "0.05",
                "--rate", "1.0", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out      # stdout is byte-stable
        assert "1 hit(s)" in warm.err    # ... and served from the cache

    def test_run_command_no_cache(self, capsys):
        from repro.cli import main
        assert main(["run", "--workload", "EP", "--scale", "0.05",
                     "--rate", "1.0", "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "runtime:" in captured.out
        assert "cache" not in captured.err

    def test_figure_with_exports(self, tmp_path, capsys):
        from repro.cli import main
        j = tmp_path / "fig.json"
        c = tmp_path / "fig.csv"
        assert main(["figure", "fig01a", "--scale", "0.1",
                     "--seeds", "1", "--json", str(j),
                     "--csv", str(c),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert j.exists() and c.exists()
        figure_from_json(j.read_text())  # parses

    def test_sweep_command(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["sweep", "--workload", "EP", "--scale", "0.05",
                     "--schedulers", "credit",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "slowdown sweep" in out

    def test_specjbb_command(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["specjbb", "--max-warehouses", "2",
                     "--window-ms", "100", "--schedulers", "credit",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "SPECjbb" in out
