"""Stateful property test: scheduler invariants under random operations.

A hypothesis rule machine drives an AdaptiveScheduler with arbitrary
interleavings of time advancement, guest block/wake, VCRD flips and
credit perturbations, asserting after every step that the runqueue/state
invariants hold (each RUNNABLE VCPU in exactly one runq, RUNNING VCPUs
linked to their PCPU, no duplicates).
"""

from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, rule)
from hypothesis import strategies as st

from repro import units
from repro.config import MachineConfig, SchedulerConfig, VMConfig
from repro.hardware.machine import Machine
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.vmm.adaptive import AdaptiveScheduler
from repro.vmm.vm import VCRD, VCPUState, VM
from tests.conftest import quiet_guest_config


class _InertGuest:
    def on_online(self, vcpu):
        pass

    def on_offline(self, vcpu):
        pass


class SchedulerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.sim = Simulator()
        trace = TraceBus()
        machine = Machine(MachineConfig(num_pcpus=4, sockets=1), self.sim)
        self.sched = AdaptiveScheduler(
            machine, self.sim, trace,
            SchedulerConfig(work_conserving=True))
        self.vms = []
        for i, nv in enumerate((2, 3, 1)):
            vm = VM(i, VMConfig(name=f"vm{i}", num_vcpus=nv,
                                guest=quiet_guest_config()),
                    self.sim, trace)
            vm.guest = _InertGuest()
            self.sched.add_vm(vm)
            self.vms.append(vm)
        self.sched.start()
        self.vcpus = [v for vm in self.vms for v in vm.vcpus]

    # ------------------------------------------------------------------ #
    @rule(ms_amount=st.floats(min_value=0.1, max_value=25.0))
    def advance_time(self, ms_amount):
        self.sim.run_until(self.sim.now + units.ms(ms_amount))

    @rule(idx=st.integers(min_value=0, max_value=5))
    def block_vcpu(self, idx):
        v = self.vcpus[idx % len(self.vcpus)]
        if v.state is not VCPUState.BLOCKED:
            v.block()

    @rule(idx=st.integers(min_value=0, max_value=5))
    def wake_vcpu(self, idx):
        v = self.vcpus[idx % len(self.vcpus)]
        if v.state is VCPUState.BLOCKED:
            v.wake()

    @rule(vm_idx=st.integers(min_value=0, max_value=2),
          high=st.booleans())
    def flip_vcrd(self, vm_idx, high):
        self.vms[vm_idx].set_vcrd(VCRD.HIGH if high else VCRD.LOW)

    @rule(idx=st.integers(min_value=0, max_value=5),
          credit=st.floats(min_value=-900.0, max_value=900.0))
    def perturb_credit(self, idx, credit):
        self.vcpus[idx % len(self.vcpus)].credit = credit

    @rule()
    def assignment(self):
        self.sched.assign_credits()

    # ------------------------------------------------------------------ #
    @invariant()
    def scheduler_invariants_hold(self):
        if hasattr(self, "sched"):
            self.sched.check_invariants()

    @invariant()
    def pcpus_run_at_most_their_occupant(self):
        if not hasattr(self, "sched"):
            return
        running = [p.current for p in self.sched.machine
                   if p.current is not None]
        assert len(running) == len(set(id(v) for v in running))


TestSchedulerStateMachine = SchedulerMachine.TestCase
TestSchedulerStateMachine.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None)
