"""Degenerate-input coverage for TimelineCollector and fairness metrics.

Zero-length runs, empty traces, single-VM and single-VCPU machines: the
metrics layer must return exact well-defined values (a lone VM is
*exactly* 1.0 fair) and never divide by zero.
"""

from __future__ import annotations

import pytest

from repro.config import MachineConfig, SchedulerConfig, VMConfig
from repro.errors import ConfigurationError
from repro.hardware.machine import Machine
from repro.metrics.fairness import FairnessReport, jains_index
from repro.metrics.timeline import TimelineCollector
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.vmm.credit import CreditScheduler
from repro.vmm.vm import VM


class TestJainsIndex:
    def test_single_value_is_exactly_one(self):
        assert jains_index([0.7]) == 1.0
        assert jains_index([123.0]) == 1.0

    def test_equal_values_are_exactly_one(self):
        assert jains_index([0.5, 0.5, 0.5]) == 1.0

    def test_all_zero_shares_are_fair(self):
        # Nobody ran; nobody was favoured.  Must not divide by zero.
        assert jains_index([0.0, 0.0]) == 1.0

    def test_denormal_squares_do_not_divide_by_zero(self):
        tiny = 5e-324  # smallest subnormal; tiny**2 underflows to 0.0
        assert jains_index([tiny, tiny]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            jains_index([])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            jains_index([1.0, -0.1])

    def test_maximal_unfairness_is_one_over_n(self):
        assert jains_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


class TestFairnessReport:
    def _vm(self, sim, trace, vm_id=0, name="vm0", vcpus=1):
        return VM(vm_id, VMConfig(name=name, num_vcpus=vcpus), sim, trace)

    def test_zero_elapsed_rejected(self):
        sim, trace = Simulator(), TraceBus()
        vm = self._vm(sim, trace)
        with pytest.raises(ConfigurationError):
            FairnessReport([vm], elapsed_cycles=0, num_pcpus=1)

    def test_single_vm_is_exactly_fair(self):
        sim, trace = Simulator(), TraceBus()
        vm = self._vm(sim, trace)
        report = FairnessReport([vm], elapsed_cycles=1_000, num_pcpus=1)
        assert report.jains() == 1.0
        share = report.by_vm()["vm0"]
        assert share.entitled_fraction == 1.0

    def test_idle_vms_report_fair_not_crash(self):
        # Nobody has any cpu_time yet: shares are all zero.
        sim, trace = Simulator(), TraceBus()
        vms = [self._vm(sim, trace, i, f"vm{i}") for i in range(3)]
        report = FairnessReport(vms, elapsed_cycles=1_000, num_pcpus=2)
        assert report.jains() == 1.0
        assert report.max_relative_error() == 1.0  # entitled but idle

    def test_zero_weight_vm_has_no_relative_error(self):
        sim, trace = Simulator(), TraceBus()
        vm = self._vm(sim, trace)
        report = FairnessReport([vm], elapsed_cycles=1_000, num_pcpus=1)
        share = report.shares[0]
        assert share.relative_error == 1.0  # idle vs full entitlement


class TestTimelineDegenerate:
    def test_zero_length_run_is_empty_everywhere(self):
        sim, trace = Simulator(), TraceBus()
        tl = TimelineCollector(trace, sim)
        tl.close()  # immediately, at t=0, with no events at all
        assert tl.segments == []
        assert tl.pcpu_segments(0) == []
        assert tl.vcpu_intervals("vm0/v0") == []
        assert tl.vm_vcpu_names("vm0") == []
        assert tl.concurrency_profile("vm0") == {}
        assert tl.co_online_fraction("vm0") == 0.0

    def test_empty_gantt_window(self):
        sim, trace = Simulator(), TraceBus()
        tl = TimelineCollector(trace, sim)
        assert tl.gantt(5, 5) == "(empty window)"
        assert tl.gantt(7, 3) == "(empty window)"

    def test_instantaneous_occupation_yields_no_segment(self):
        sim, trace = Simulator(), TraceBus()
        tl = TimelineCollector(trace, sim)
        trace.emit(0, "sched.switch", pcpu=0, vcpu="vm0/v0")
        trace.emit(0, "sched.switch", pcpu=0, vcpu=None)
        tl.close()
        assert tl.segments == []

    def test_single_vcpu_machine_co_online_is_total(self):
        """On a 1-PCPU machine a 1-VCPU VM is trivially always co-online:
        the fraction must be exactly 1.0 whenever the VCPU ran at all."""
        from repro import units
        from repro.guest.ops import Compute
        from tests.conftest import Harness

        h = Harness(num_pcpus=1, num_vcpus=1)
        tl = TimelineCollector(h.trace, h.sim)
        h.kernel.spawn("t", iter((Compute(units.ms(1)),)), 0)
        assert h.run_until_done()
        tl.close()
        assert tl.vm_vcpu_names("vm0") == ["vm0/v0"]
        assert tl.co_online_fraction("vm0") == 1.0

    def test_close_is_a_snapshot_not_a_shutdown(self):
        sim, trace = Simulator(), TraceBus()
        tl = TimelineCollector(trace, sim)
        trace.emit(0, "sched.switch", pcpu=0, vcpu="vm0/v0")
        sim.at(100, lambda: None)
        sim.run_until(100)
        tl.close()
        tl.close()  # closing twice must not double-count
        assert [(s.start, s.end) for s in tl.pcpu_segments(0)] == [(0, 100)]
