"""Guest snapshot introspection."""

import pytest

from repro import units
from repro.guest.ops import BarrierOp, Compute, Critical
from repro.guest.stats import snapshot
from tests.conftest import Harness


def prog(*ops):
    return iter(ops)


class TestGuestSnapshot:
    def test_task_table(self, harness):
        harness.kernel.spawn("w", prog(Compute(units.ms(1))), 0)
        harness.run_until_done()
        snap = snapshot(harness.kernel)
        names = [t.name for t in snap.tasks]
        assert "w" in names
        done = next(t for t in snap.tasks if t.name == "w")
        assert done.state == "done"
        assert done.compute_seconds > 0

    def test_lock_table(self, harness):
        for i in range(2):
            harness.kernel.spawn(f"t{i}",
                                 prog(Critical("L", units.us(30))), i)
        harness.run_until_done()
        snap = snapshot(harness.kernel)
        lock = next(l for l in snap.locks if l.name == "L")
        assert lock.acquisitions == 2
        assert 0 <= lock.contention_ratio <= 1
        assert snap.total_acquisitions() >= 2

    def test_barrier_and_futex_counters(self):
        h = Harness(num_pcpus=2, num_vcpus=2)
        h.kernel.barrier("B", 2)
        for i in range(2):
            h.kernel.spawn(f"t{i}",
                           prog(Compute(units.us(100) * (i + 1)),
                                BarrierOp("B")), i)
        h.run_until_done()
        snap = snapshot(h.kernel)
        assert snap.barrier_crossings["B"] == 1
        assert snap.futex_blocks + snap.futex_spin_successes >= 1

    def test_hottest_locks_ordering(self, harness):
        harness.kernel.lock("cold")
        hot = harness.kernel.lock("hot")
        hot.record_contended()
        hot.record_contended()
        snap = snapshot(harness.kernel)
        assert snap.hottest_locks(1)[0].name == "hot"

    def test_runnable_count(self, harness):
        harness.kernel.spawn("w", prog(Compute(units.seconds(10))), 0)
        harness.run_ms(1)
        snap = snapshot(harness.kernel)
        assert snap.runnable_tasks() >= 1

    def test_render_contains_sections(self, harness):
        harness.kernel.spawn("w", prog(Compute(1000)), 0)
        harness.run_until_done()
        out = snapshot(harness.kernel).render()
        assert "tasks" in out
        assert "hottest locks" in out
        assert "guest snapshot: vm0" in out

    def test_worst_wait_empty(self, harness):
        assert snapshot(harness.kernel).worst_wait() == 0
