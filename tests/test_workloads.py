"""Workload models: NAS, SPECjbb, SPEC CPU rate, synthetic."""

import numpy as np
import pytest

from repro import units
from repro.errors import WorkloadError
from repro.guest.ops import BarrierOp, Compute, Critical, FlagWait
from repro.workloads.base import Workload, jittered
from repro.workloads.nas import NAS_PROFILES, NasBenchmark
from repro.workloads.specjbb import SpecJbbWorkload
from repro.workloads.speccpu import SPEC_CPU_PROFILES, SpecCpuRateWorkload
from repro.workloads.synthetic import PhaseSpec, SyntheticWorkload
from tests.conftest import Harness


class TestJittered:
    def test_zero_cv_returns_mean(self, rng):
        assert jittered(rng, 1000, 0.0) == 1000

    def test_mean_preserved(self, rng):
        draws = [jittered(rng, 10_000, 0.3) for _ in range(3000)]
        assert np.mean(draws) == pytest.approx(10_000, rel=0.05)

    def test_always_positive(self, rng):
        assert all(jittered(rng, 100, 2.0) >= 1 for _ in range(200))

    def test_zero_mean_is_zero(self, rng):
        assert jittered(rng, 0, 0.5) == 0


class TestNasProfiles:
    def test_all_seven_benchmarks_present(self):
        assert set(NAS_PROFILES) == {"BT", "CG", "EP", "FT", "MG", "SP", "LU"}

    def test_lu_is_most_synchronising(self):
        lu = NAS_PROFILES["LU"]
        ep = NAS_PROFILES["EP"]
        assert lu.pipeline_sweeps > 0
        assert ep.criticals_per_iter == 0
        assert lu.sync_ops_total > ep.sync_ops_total

    def test_comparable_total_compute(self):
        """All profiles target a similar base runtime (~1.2 s)."""
        totals = [p.total_compute for p in NAS_PROFILES.values()]
        assert max(totals) / min(totals) < 1.6

    def test_scaled_reduces_iterations(self):
        p = NAS_PROFILES["LU"].scaled(0.1)
        assert p.iterations == 25
        assert p.compute_per_iter == NAS_PROFILES["LU"].compute_per_iter

    def test_by_name_rejects_unknown(self):
        with pytest.raises(WorkloadError):
            NasBenchmark.by_name("ZZ")

    def test_by_name_case_insensitive(self):
        assert NasBenchmark.by_name("lu").profile.name == "LU"


class TestNasExecution:
    def test_ep_program_structure(self, rng):
        wl = NasBenchmark.by_name("EP", scale=0.5)
        h = Harness(num_pcpus=4, num_vcpus=4)
        wl.install(h.kernel, rng)
        assert len([t for t in h.kernel.tasks if not t.daemon]) == 4
        assert f"{wl.name}.bar" in h.kernel.barriers

    def test_lu_declares_pipeline_flags(self, rng):
        wl = NasBenchmark.by_name("LU", scale=0.02)
        h = Harness(num_pcpus=4, num_vcpus=4)
        wl.install(h.kernel, rng)
        assert h.run_until_done(deadline_ms=5000)
        # Pipeline flags were created and exercised by the run.
        assert any(name.startswith("nas.lu.pipe")
                   for name in h.kernel.flags)

    def test_runs_to_completion_and_rounds(self, rng):
        wl = NasBenchmark.by_name("CG", scale=0.02, rounds=2)
        h = Harness(num_pcpus=4, num_vcpus=4)
        wl.install(h.kernel, rng)
        assert h.run_until_done(deadline_ms=5000)
        assert wl.rounds_completed() == 2
        assert wl.round_complete_time(1) > wl.round_complete_time(0)

    def test_too_many_threads_rejected(self, rng):
        wl = NasBenchmark.by_name("LU")
        h = Harness(num_pcpus=2, num_vcpus=2)
        with pytest.raises(WorkloadError):
            wl.install(h.kernel, rng)

    def test_double_install_rejected(self, rng):
        wl = NasBenchmark.by_name("EP", scale=0.1)
        h = Harness(num_pcpus=4, num_vcpus=4)
        wl.install(h.kernel, rng)
        with pytest.raises(WorkloadError):
            wl.install(h.kernel, rng)

    def test_describe(self, rng):
        wl = NasBenchmark.by_name("FT")
        d = wl.describe()
        assert d["benchmark"] == "FT"
        assert d["threads"] == 4


class TestSpecJbb:
    def test_counts_transactions(self, rng):
        wl = SpecJbbWorkload(warehouses=2)
        h = Harness(num_pcpus=4, num_vcpus=4)
        wl.install(h.kernel, rng)
        h.run_ms(20)
        assert wl.total_transactions() > 0

    def test_bops_normalises_by_window(self, rng):
        wl = SpecJbbWorkload(warehouses=2)
        h = Harness(num_pcpus=4, num_vcpus=4)
        wl.install(h.kernel, rng)
        h.run_ms(50)
        txns = wl.total_transactions()
        assert wl.bops(units.seconds(1)) == pytest.approx(txns)

    def test_jvm_lock_taken_periodically(self, rng):
        wl = SpecJbbWorkload(warehouses=4, jvm_lock_period=2)
        h = Harness(num_pcpus=4, num_vcpus=4)
        wl.install(h.kernel, rng)
        h.run_ms(50)
        lk = h.kernel.locks[f"{wl.name}.jvm"]
        assert lk.acquisitions > 0

    def test_more_warehouses_than_vcpus_allowed(self, rng):
        wl = SpecJbbWorkload(warehouses=8)
        h = Harness(num_pcpus=4, num_vcpus=4)
        wl.install(h.kernel, rng)
        h.run_ms(50)
        # Warehouses multiplex on VCPUs via the guest scheduler.
        assert all(n > 0 for n in wl.transactions)

    def test_rejects_zero_warehouses(self):
        with pytest.raises(WorkloadError):
            SpecJbbWorkload(warehouses=0)

    def test_bops_rejects_bad_window(self, rng):
        wl = SpecJbbWorkload(warehouses=1)
        with pytest.raises(WorkloadError):
            wl.bops(0)


class TestSpecCpuRate:
    def test_profiles_present(self):
        assert "176.gcc" in SPEC_CPU_PROFILES
        assert "256.bzip2" in SPEC_CPU_PROFILES

    def test_four_copies_default(self, rng):
        wl = SpecCpuRateWorkload.by_name("176.gcc", scale=0.02)
        h = Harness(num_pcpus=4, num_vcpus=4)
        wl.install(h.kernel, rng)
        assert len([t for t in h.kernel.tasks if not t.daemon]) == 4

    def test_total_work_completed(self, rng):
        wl = SpecCpuRateWorkload.by_name("176.gcc", scale=0.02)
        h = Harness(num_pcpus=4, num_vcpus=4)
        wl.install(h.kernel, rng)
        assert h.run_until_done(deadline_ms=5000)
        total = wl.profile.total_compute
        for t in h.kernel.tasks:
            if not t.daemon:
                assert t.compute_cycles_done >= total

    def test_no_synchronisation_objects(self, rng):
        wl = SpecCpuRateWorkload.by_name("256.bzip2", scale=0.02)
        h = Harness(num_pcpus=4, num_vcpus=4)
        wl.install(h.kernel, rng)
        h.run_until_done(deadline_ms=5000)
        assert h.kernel.barriers == {}
        assert all(lk.contended_acquisitions == 0
                   for lk in h.kernel.locks.values())

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(WorkloadError):
            SpecCpuRateWorkload.by_name("999.nope")

    def test_rounds(self, rng):
        wl = SpecCpuRateWorkload.by_name("176.gcc", scale=0.01, rounds=3)
        h = Harness(num_pcpus=4, num_vcpus=4)
        wl.install(h.kernel, rng)
        assert h.run_until_done(deadline_ms=5000)
        assert wl.rounds_completed() == 3


class TestSynthetic:
    def test_phase_validation(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(compute=-1)
        with pytest.raises(WorkloadError):
            PhaseSpec(compute=10, sync="nonsense")

    def test_barrier_phases_run(self, rng):
        wl = SyntheticWorkload("syn", threads=2, phases=[
            PhaseSpec(compute=units.us(50), repeats=3, sync="barrier")])
        h = Harness(num_pcpus=2, num_vcpus=2)
        wl.install(h.kernel, rng)
        assert h.run_until_done(deadline_ms=2000)
        assert h.kernel.barriers["syn.bar"].crossings == 3

    def test_critical_phases_use_lock_pool(self, rng):
        wl = SyntheticWorkload("syn", threads=2, locks=2, phases=[
            PhaseSpec(compute=units.us(10), repeats=4, sync="critical")])
        h = Harness(num_pcpus=2, num_vcpus=2)
        wl.install(h.kernel, rng)
        assert h.run_until_done(deadline_ms=2000)
        acq = sum(h.kernel.locks[f"syn.lk{i}"].acquisitions
                  for i in range(2))
        assert acq == 8

    def test_sem_pingpong(self, rng):
        wl = SyntheticWorkload("syn", threads=2, phases=[
            PhaseSpec(compute=units.us(10), repeats=5, sync="sem_pingpong")])
        h = Harness(num_pcpus=2, num_vcpus=2)
        wl.install(h.kernel, rng)
        assert h.run_until_done(deadline_ms=2000)
        sem = h.kernel.semaphores["syn.sem"]
        assert sem.downs == 5
        assert sem.ups == 5

    def test_requires_phases(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkload("syn", threads=2, phases=[])

    def test_runtime_cycles_requires_completion(self, rng):
        wl = SyntheticWorkload("syn", threads=1, phases=[
            PhaseSpec(compute=units.seconds(10))])
        h = Harness()
        wl.install(h.kernel, rng)
        with pytest.raises(WorkloadError):
            wl.runtime_cycles()
