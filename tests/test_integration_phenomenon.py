"""Integration tests: the paper's phenomena at reduced scale.

These are the repository's acceptance tests — each asserts one of the
shape claims from EXPERIMENTS.md at a scale small enough for CI.
"""

import pytest

from repro import units
from repro.experiments.runner import run_multi_vm, run_single_vm
from repro.metrics.runtime import ideal_slowdown
from repro.workloads.nas import NasBenchmark
from repro.workloads.speccpu import SpecCpuRateWorkload


def lu(scale=0.4, rounds=1):
    return lambda: NasBenchmark.by_name("LU", scale=scale, rounds=rounds)


def ep(scale=0.4, rounds=1):
    return lambda: NasBenchmark.by_name("EP", scale=scale, rounds=rounds)


class TestPhenomenonUnderCredit:
    """Section 2.2: virtualization inflates spinlock waits for concurrent
    workloads under the plain Credit scheduler."""

    def test_no_long_waits_at_full_rate(self):
        r = run_single_vm(lu(), "credit", online_rate=1.0, seed=1)
        assert r.spin_summary["over_2^20"] == 0

    def test_long_waits_appear_at_low_rate(self):
        # Several seeds: lock-holder preemption is probabilistic.
        total = 0
        for seed in (1, 3, 5):
            r = run_single_vm(lu(scale=0.6), "credit",
                              online_rate=2 / 9, seed=seed)
            total += r.spin_summary["over_2^20"]
        assert total > 0

    def test_waits_reach_scheduling_timescales(self):
        """Over-threshold waits at low rate stretch to >= 2^24 cycles
        (several ms) — the holder was descheduled, not merely slow."""
        worst = 0.0
        for seed in (1, 3, 5):
            r = run_single_vm(lu(scale=0.6), "credit",
                              online_rate=2 / 9, seed=seed)
            worst = max(worst, r.spin_summary["max_log2"])
        assert worst >= 24.0

    def test_runtime_grows_as_rate_falls(self):
        times = []
        for rate in (1.0, 2 / 3, 0.4, 2 / 9):
            r = run_single_vm(lu(scale=0.3), "credit",
                              online_rate=rate, seed=1)
            times.append(r.runtime_seconds)
        assert times == sorted(times)
        assert times[-1] > 3.0 * times[0]

    def test_concurrent_workload_exceeds_ideal_slowdown(self):
        base = run_single_vm(lu(scale=0.5), "credit",
                             online_rate=1.0, seed=1).runtime_seconds
        worst_excess = 0.0
        for seed in (1, 2, 3):
            r = run_single_vm(lu(scale=0.5), "credit",
                              online_rate=2 / 9, seed=seed)
            sd = r.runtime_seconds / base
            worst_excess = max(worst_excess, sd / ideal_slowdown(2 / 9))
        assert worst_excess > 1.05  # beyond the fair-share cost

    def test_ep_stays_near_ideal(self):
        """EP has (almost) no synchronisation: the Credit scheduler costs
        it only its fair share (the paper's non-concurrent control)."""
        base = run_single_vm(ep(), "credit",
                             online_rate=1.0, seed=1).runtime_seconds
        r = run_single_vm(ep(), "credit", online_rate=2 / 9, seed=1)
        sd = r.runtime_seconds / base
        assert sd == pytest.approx(ideal_slowdown(2 / 9), rel=0.12)

    def test_semaphores_unaffected(self):
        """Sem waits stay bounded by scheduling latencies, never showing
        the pathological 2^25+ tail (paper: all semaphore waits < 2^16
        even at 22.2%)."""
        from repro.experiments.setup import Testbed, weight_for_rate
        from repro.config import SchedulerConfig
        from repro.workloads.synthetic import PhaseSpec, SyntheticWorkload
        got = []
        tb = Testbed(scheduler="credit",
                     sched_config=SchedulerConfig(work_conserving=False))
        tb.trace.subscribe("sem.wait", got.append)
        tb.add_domain0()
        wl = SyntheticWorkload("sem", threads=4, phases=[
            PhaseSpec(compute=units.us(300), repeats=150,
                      sync="sem_pingpong")])
        tb.add_vm("V1", weight=weight_for_rate(2 / 9), workload=wl)
        tb.run_until_workloads_done(["V1"],
                                    deadline_cycles=units.seconds(60))
        # Blocking waits exist but each costs no CPU; we simply check the
        # primitive worked under heavy capping.
        assert got, "the ping-pong must actually block sometimes"


class TestASManRecovery:
    """Sections 5.2-5.4: ASMan mitigates the degradation while keeping
    fairness and leaving non-concurrent workloads alone."""

    def test_asman_never_slower_overall(self):
        credit_total = asman_total = 0.0
        for seed in (1, 3, 5):
            credit_total += run_single_vm(
                lu(scale=0.6), "credit", online_rate=2 / 9,
                seed=seed).runtime_seconds
            asman_total += run_single_vm(
                lu(scale=0.6), "asman", online_rate=2 / 9,
                seed=seed).runtime_seconds
        assert asman_total < credit_total * 1.02

    def test_asman_detects_and_reports_vcrd(self):
        detected = 0
        for seed in (1, 3, 5):
            r = run_single_vm(lu(scale=0.6), "asman",
                              online_rate=2 / 9, seed=seed)
            detected += r.monitor_stats["adjusting_events"]
        assert detected > 0

    def test_asman_identical_at_full_rate(self):
        a = run_single_vm(lu(scale=0.3), "credit", online_rate=1.0, seed=1)
        b = run_single_vm(lu(scale=0.3), "asman", online_rate=1.0, seed=1)
        assert b.runtime_seconds == pytest.approx(a.runtime_seconds,
                                                  rel=0.02)

    def test_asman_does_not_hurt_ep(self):
        a = run_single_vm(ep(), "credit", online_rate=2 / 9, seed=1)
        b = run_single_vm(ep(), "asman", online_rate=2 / 9, seed=1)
        assert b.runtime_seconds == pytest.approx(a.runtime_seconds,
                                                  rel=0.05)

    def test_asman_cap_preserved(self):
        r = run_single_vm(lu(scale=0.6), "asman", online_rate=2 / 9, seed=1)
        assert r.measured_online_rate == pytest.approx(2 / 9, abs=0.04)


class TestMultiVmShapes:
    """Figures 11-12 structure (reduced: one mixed 4-VM combination)."""

    @pytest.fixture(scope="class")
    def results(self):
        assign = [
            ("V1", lambda: SpecCpuRateWorkload.by_name(
                "256.bzip2", scale=0.4, rounds=24), False),
            ("V2", lambda: NasBenchmark.by_name(
                "LU", scale=0.3, rounds=24), True),
        ]
        out = {}
        for sched in ("credit", "asman", "con"):
            acc = {"V1": 0.0, "V2": 0.0}
            for seed in (1, 2):
                r = run_multi_vm(assign, scheduler=sched,
                                 measure_rounds=2, seed=seed)
                for k in acc:
                    acc[k] += r.round_seconds[k]
                assert r.fairness_jains > 0.9
            out[sched] = acc
        return out

    def test_coscheduling_helps_concurrent_vm(self, results):
        assert results["asman"]["V2"] < results["credit"]["V2"] * 1.02

    def test_throughput_degradation_bounded(self, results):
        """ASMan's cost to the high-throughput neighbour stays below the
        paper's 8%-at-worst bound (with margin for simulator noise)."""
        degradation = (results["asman"]["V1"] - results["credit"]["V1"]) \
            / results["credit"]["V1"]
        assert degradation < 0.12

    def test_fairness_under_all_schedulers(self, results):
        # Checked inside the fixture; re-assert the structure exists.
        assert set(results) == {"credit", "asman", "con"}
