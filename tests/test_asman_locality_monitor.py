"""Locality model/analyzer, Monitoring Module, VCRD tracker."""

import numpy as np
import pytest

from repro import units
from repro.asman.locality import LocalityAnalyzer, LocalityModel
from repro.asman.monitor import MonitoringModule
from repro.asman.vcrd import VcrdTracker
from repro.config import MonitorConfig
from repro.errors import ConfigurationError
from repro.guest.spinlock import SpinLock
from repro.vmm.hypercall import HypercallTable
from repro.vmm.vm import VCRD
from tests.conftest import Harness


class TestLocalityModel:
    def test_pairs_are_positive_and_ordered(self, rng):
        m = LocalityModel(rng, mean_lasting=units.ms(10))
        for x, z in m.sequence(100):
            assert x >= 1
            assert z > x  # interval includes lasting time plus a gap

    def test_mean_lasting_approximates_target(self, rng):
        target = units.ms(20)
        m = LocalityModel(rng, mean_lasting=target, cv=0.2)
        xs = [x for x, _ in m.sequence(2000)]
        assert np.mean(xs) == pytest.approx(target, rel=0.1)

    def test_autocorrelation_decays(self, rng):
        """Property (iii): corr(X_i, X_{i+j}) falls as j grows."""
        m = LocalityModel(rng, mean_lasting=units.ms(10), rho=0.8, cv=0.5)
        xs = np.array([x for x, _ in m.sequence(4000)], dtype=float)
        def corr(lag):
            return np.corrcoef(xs[:-lag], xs[lag:])[0, 1]
        assert corr(1) > corr(8)
        assert corr(1) > 0.3

    def test_zero_cv_is_deterministic_mean(self, rng):
        m = LocalityModel(rng, mean_lasting=1000, cv=0.0)
        xs = {x for x, _ in m.sequence(50)}
        assert xs == {1000}

    def test_rejects_bad_rho(self, rng):
        with pytest.raises(ConfigurationError):
            LocalityModel(rng, mean_lasting=100, rho=1.0)

    def test_iterable_protocol(self, rng):
        m = LocalityModel(rng, mean_lasting=100)
        x, z = next(iter(m))
        assert x >= 1 and z > x


class TestLocalityAnalyzer:
    def test_splits_on_gaps(self):
        a = LocalityAnalyzer(split_gap=100)
        ts = [0, 10, 20, 500, 510, 2000]
        locs = a.localities(ts)
        assert [l.events for l in locs] == [3, 2, 1]

    def test_empty_input(self):
        assert LocalityAnalyzer(10).localities([]) == []

    def test_single_event(self):
        locs = LocalityAnalyzer(10).localities([42])
        assert len(locs) == 1
        assert locs[0].start == 42

    def test_unsorted_input_handled(self):
        a = LocalityAnalyzer(100)
        assert len(a.localities([500, 0, 10])) == 2

    def test_burstiness(self):
        a = LocalityAnalyzer(100)
        assert a.burstiness([0, 10, 20, 500, 510, 2000]) == pytest.approx(2.0)
        assert a.burstiness([]) == 0.0

    def test_intervals_are_z_sequence(self):
        a = LocalityAnalyzer(100)
        zs = a.intervals([0, 10, 500, 2000])
        assert zs == [500, 1500]

    def test_rejects_bad_gap(self):
        with pytest.raises(ConfigurationError):
            LocalityAnalyzer(0)


class TestMonitoringModule:
    def _make(self, harness):
        table = HypercallTable(harness.sim, harness.trace)
        mon = MonitoringModule(harness.kernel, table,
                               rng=np.random.default_rng(0))
        return mon

    def test_installed_into_kernel(self, harness):
        mon = self._make(harness)
        assert harness.kernel.monitor is mon

    def test_small_waits_ignored(self, harness):
        mon = self._make(harness)
        lk = SpinLock("l")
        mon.on_spinlock_wait(lk, 1 << 12)
        assert mon.adjusting_events == 0
        assert harness.vm.vcrd is VCRD.LOW
        assert mon.measured_waits == 1

    def test_below_floor_not_even_measured(self, harness):
        mon = self._make(harness)
        mon.on_spinlock_wait(SpinLock("l"), 100)
        assert mon.measured_waits == 0

    def test_over_threshold_raises_vcrd(self, harness):
        mon = self._make(harness)
        mon.on_spinlock_wait(SpinLock("l"), (1 << 20) + 1)
        assert mon.adjusting_events == 1
        assert harness.vm.vcrd is VCRD.HIGH
        assert mon.coscheduling

    def test_in_progress_detection(self, harness):
        mon = self._make(harness)
        mon.on_wait_in_progress(SpinLock("l"), (1 << 20) + 5)
        assert harness.vm.vcrd is VCRD.HIGH

    def test_expiry_returns_to_low(self, harness):
        mon = self._make(harness)
        mon.on_spinlock_wait(SpinLock("l"), (1 << 20) + 1)
        _, estimate = mon.estimates[0]
        harness.sim.run_until(harness.sim.now + estimate + 10)
        assert harness.vm.vcrd is VCRD.LOW
        assert not mon.coscheduling

    def test_event_during_high_extends_window(self, harness):
        mon = self._make(harness)
        mon.on_spinlock_wait(SpinLock("l"), (1 << 20) + 1)
        _, est1 = mon.estimates[0]
        # Halfway through, another over-threshold wait arrives.
        harness.sim.run_until(harness.sim.now + est1 // 2)
        mon.on_spinlock_wait(SpinLock("l"), (1 << 20) + 1)
        assert mon.adjusting_events == 2
        assert harness.vm.vcrd is VCRD.HIGH
        # The new window extends beyond the old expiry.
        harness.sim.run_until(harness.sim.now + est1 // 2 + 10)
        assert harness.vm.vcrd is VCRD.HIGH

    def test_refractory_coalesces_bursts(self, harness):
        mon = self._make(harness)
        for _ in range(5):
            mon.on_spinlock_wait(SpinLock("l"), (1 << 20) + 1)
        assert mon.over_threshold_count == 5
        assert mon.adjusting_events == 1  # one locality onset

    def test_stats_shape(self, harness):
        mon = self._make(harness)
        stats = mon.stats()
        for key in ("adjusting_events", "over_threshold", "measured_waits",
                    "hypercalls"):
            assert key in stats


class TestVcrdTracker:
    def test_integrates_high_time(self, harness):
        tracker = VcrdTracker(harness.trace, harness.sim)
        harness.sim.at(100, lambda: harness.vm.set_vcrd(VCRD.HIGH))
        harness.sim.at(400, lambda: harness.vm.set_vcrd(VCRD.LOW))
        harness.sim.run()
        harness.sim.at(1000, lambda: None)
        harness.sim.run()
        assert tracker.high_cycles("vm0") == 300
        assert tracker.high_fraction("vm0") == pytest.approx(0.3)

    def test_open_episode_counts_to_now(self, harness):
        tracker = VcrdTracker(harness.trace, harness.sim)
        harness.sim.at(100, lambda: harness.vm.set_vcrd(VCRD.HIGH))
        harness.sim.run()
        harness.sim.at(600, lambda: None)
        harness.sim.run()
        assert tracker.high_cycles("vm0") == 500

    def test_episodes_listing(self, harness):
        tracker = VcrdTracker(harness.trace, harness.sim)
        for t, v in ((10, VCRD.HIGH), (20, VCRD.LOW),
                     (30, VCRD.HIGH), (50, VCRD.LOW)):
            harness.sim.at(t, lambda v=v: harness.vm.set_vcrd(v))
        harness.sim.run()
        assert tracker.episodes("vm0") == [(10, 20), (30, 50)]

    def test_unknown_vm_is_zero(self, harness):
        tracker = VcrdTracker(harness.trace, harness.sim)
        assert tracker.high_cycles("ghost") == 0
