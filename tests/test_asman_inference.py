"""Out-of-VM VCRD inference (the paper's future-work extension)."""

import pytest

from repro import units
from repro.asman.inference import ExternalVcrdMonitor, InferenceConfig
from repro.config import SchedulerConfig
from repro.errors import ConfigurationError
from repro.experiments.setup import weight_for_rate
from repro.experiments.setup import Testbed as SimTestbed
from repro.vmm.vm import VCRD
from repro.workloads.nas import NasBenchmark
from repro.workloads.speccpu import SpecCpuRateWorkload


class TestInferenceConfig:
    def test_defaults_valid(self):
        cfg = InferenceConfig()
        assert cfg.window_cycles == units.ms(30)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            InferenceConfig(window_cycles=0)

    def test_rejects_bad_quorum(self):
        with pytest.raises(ConfigurationError):
            InferenceConfig(churn_quorum=0.0)
        with pytest.raises(ConfigurationError):
            InferenceConfig(churn_quorum=1.5)

    def test_rejects_bad_hold(self):
        with pytest.raises(ConfigurationError):
            InferenceConfig(hold_windows=0)


def _testbed(workload, monitored, rate=2 / 9, seed=1):
    tb = SimTestbed(scheduler="asman", seed=seed,
                    sched_config=SchedulerConfig(work_conserving=False))
    tb.add_domain0()
    tb.add_vm("V1", weight=weight_for_rate(rate), workload=workload,
              monitored=monitored)
    return tb


class TestExternalMonitor:
    def test_detects_synchronising_guest(self):
        tb = _testbed(NasBenchmark.by_name("LU", scale=0.5), "external")
        tb.run_until_workloads_done(["V1"],
                                    deadline_cycles=units.seconds(180))
        ext = tb.external_monitors["V1"]
        assert ext.windows_sampled > 10
        assert ext.raises > 0

    def test_no_false_positive_on_throughput_guest(self):
        tb = _testbed(SpecCpuRateWorkload.by_name("256.bzip2", scale=0.5),
                      "external")
        tb.run_until_workloads_done(["V1"],
                                    deadline_cycles=units.seconds(180))
        ext = tb.external_monitors["V1"]
        assert ext.raises == 0
        assert tb.vms["V1"].vcrd is VCRD.LOW

    def test_no_false_positive_at_full_rate(self):
        tb = _testbed(NasBenchmark.by_name("LU", scale=0.3), "external",
                      rate=1.0)
        tb.run_until_workloads_done(["V1"],
                                    deadline_cycles=units.seconds(60))
        ext = tb.external_monitors["V1"]
        # Aligned guest at 100%: barriers complete within the spin budget,
        # little VMM-visible churn+skew together.
        assert ext.raises <= 1

    def test_hysteresis_drops_after_quiet(self):
        tb = _testbed(NasBenchmark.by_name("LU", scale=0.5), "external")
        tb.run_until_workloads_done(["V1"],
                                    deadline_cycles=units.seconds(180))
        ext = tb.external_monitors["V1"]
        if ext.raises:
            # Every raise eventually dropped (the workload finished, so
            # the monitor saw quiet windows at the end).
            tb.run_for(units.ms(200))
            assert tb.vms["V1"].vcrd is VCRD.LOW

    def test_helps_runtime_at_low_rate(self):
        unmonitored = _testbed(NasBenchmark.by_name("LU", scale=0.5), False)
        unmonitored.run_until_workloads_done(
            ["V1"], deadline_cycles=units.seconds(180))
        rt_plain = unmonitored.guests["V1"].finished_at

        external = _testbed(NasBenchmark.by_name("LU", scale=0.5),
                            "external")
        external.run_until_workloads_done(
            ["V1"], deadline_cycles=units.seconds(180))
        rt_ext = external.guests["V1"].finished_at
        assert rt_ext <= rt_plain * 1.03

    def test_stop_cancels_sampling(self, sim, trace):
        from repro.config import VMConfig
        from repro.vmm.vm import VM
        from repro.vmm.credit import CreditScheduler
        from repro.hardware.machine import Machine
        from repro.config import MachineConfig
        machine = Machine(MachineConfig(num_pcpus=2, sockets=1), sim)
        sched = CreditScheduler(machine, sim, trace)
        vm = VM(0, VMConfig(name="v", num_vcpus=2), sim, trace)
        sched.add_vm(vm)
        ext = ExternalVcrdMonitor(vm, sim)
        ext.stop()
        sim.run_until(units.ms(200))
        assert ext.windows_sampled == 0

    def test_testbed_rejects_bad_monitored_value(self):
        tb = SimTestbed()
        with pytest.raises(ConfigurationError):
            tb.add_vm("V1", workload=NasBenchmark.by_name("EP", scale=0.05),
                      monitored="telepathy")
