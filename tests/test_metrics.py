"""Metrics collectors and report formatting."""

import pytest

from repro import units
from repro.config import VMConfig
from repro.errors import ConfigurationError, WorkloadError
from repro.metrics.fairness import FairnessReport, jains_index
from repro.metrics.report import Table, format_mapping, format_series
from repro.metrics.runtime import (RuntimeCollector, excess_slowdown,
                                   ideal_slowdown, slowdown)
from repro.metrics.spinlock_stats import SpinlockStats
from repro.metrics.throughput import (bops_score, spec_rate,
                                      throughput_degradation)
from repro.vmm.vm import VM


class TestSpinlockStats:
    def _emit(self, trace, times_waits, vm="v"):
        for t, w in times_waits:
            trace.emit(t, "spinlock.wait", vm=vm, lock="l", wait=w)

    def test_counts_above_thresholds(self, trace):
        stats = SpinlockStats(trace)
        self._emit(trace, [(1, 1 << 12), (2, 1 << 22), (3, 1 << 26)])
        assert stats.count_above(10) == 3
        assert stats.count_above(20) == 2
        assert stats.count_above(25) == 1

    def test_vm_filter(self, trace):
        stats = SpinlockStats(trace, vm_name="a")
        self._emit(trace, [(1, 2048)], vm="a")
        self._emit(trace, [(2, 2048)], vm="b")
        assert len(stats) == 1

    def test_window_filter(self, trace):
        stats = SpinlockStats(trace)
        self._emit(trace, [(10, 1 << 22), (100, 1 << 22)])
        assert stats.count_above(20, window=(0, 50)) == 1

    def test_scatter_log2(self, trace):
        stats = SpinlockStats(trace)
        self._emit(trace, [(1, 1 << 15)])
        (idx, log2w), = stats.scatter()
        assert idx == 0
        assert log2w == pytest.approx(15.0)

    def test_histogram_bins(self, trace):
        stats = SpinlockStats(trace)
        self._emit(trace, [(1, 1 << 12), (2, (1 << 12) + 5), (3, 1 << 20)])
        hist = stats.histogram()
        assert hist[12] == 2
        assert hist[20] == 1

    def test_over_threshold_times(self, trace):
        stats = SpinlockStats(trace)
        self._emit(trace, [(5, 1 << 22), (9, 1 << 12)])
        assert stats.over_threshold_times() == [5]

    def test_summary_and_percentile(self, trace):
        stats = SpinlockStats(trace)
        self._emit(trace, [(1, 1 << 11), (2, 1 << 21)])
        s = stats.summary()
        assert s["recorded"] == 2
        assert s["over_2^20"] == 1
        assert stats.percentile(100) == float(1 << 21)
        assert stats.mean_wait() > 0

    def test_empty_stats(self, trace):
        stats = SpinlockStats(trace)
        assert stats.max_wait() == 0
        assert stats.mean_wait() == 0.0
        assert stats.percentile(50) == 0.0


class TestRuntime:
    def test_collects_workload_done(self, trace):
        rc = RuntimeCollector(trace)
        trace.emit(units.seconds(2), "workload.done", vm="v1")
        assert rc.finished("v1")
        assert rc.runtime_seconds("v1") == pytest.approx(2.0)

    def test_unfinished_raises(self, trace):
        rc = RuntimeCollector(trace)
        with pytest.raises(WorkloadError):
            rc.runtime_cycles("ghost")

    def test_task_done_collection(self, trace):
        rc = RuntimeCollector(trace)
        trace.emit(10, "task.done", vm="v1", task="t0")
        trace.emit(20, "task.done", vm="v1", task="t1")
        assert rc.task_done["v1"] == [10, 20]

    def test_slowdown_definition(self):
        assert slowdown(700.0, 400.0) == pytest.approx(1.75)
        with pytest.raises(WorkloadError):
            slowdown(1.0, 0.0)

    def test_ideal_slowdown(self):
        assert ideal_slowdown(2 / 9) == pytest.approx(4.5)
        with pytest.raises(WorkloadError):
            ideal_slowdown(0.0)

    def test_excess_slowdown(self):
        assert excess_slowdown(9.0, 2 / 9) == pytest.approx(2.0)


class TestThroughput:
    def test_bops_score_averages_ge_vcpus(self):
        data = {1: 100.0, 2: 200.0, 4: 400.0, 6: 500.0, 8: 600.0}
        # Paper: average of measurements with warehouses >= #VCPUs (4).
        assert bops_score(data, 4) == pytest.approx(500.0)

    def test_bops_score_requires_eligible(self):
        with pytest.raises(WorkloadError):
            bops_score({1: 100.0}, 4)

    def test_spec_rate(self):
        assert spec_rate(4, 100.0, 200.0) == pytest.approx(2.0)
        with pytest.raises(WorkloadError):
            spec_rate(0, 1.0, 1.0)

    def test_degradation(self):
        assert throughput_degradation(100.0, 92.0) == pytest.approx(0.08)
        assert throughput_degradation(100.0, 110.0) == 0.0


class TestFairness:
    def test_jains_perfect(self):
        assert jains_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_jains_worst_case(self):
        assert jains_index([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_jains_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            jains_index([-1.0])

    def test_jains_all_zero_is_fair(self):
        assert jains_index([0.0, 0.0]) == 1.0

    def test_report_shares(self, sim, trace):
        vms = [VM(i, VMConfig(name=f"v{i}", num_vcpus=1, weight=w),
                  sim, trace) for i, w in enumerate((256, 256))]
        # v0 consumed 600 cycles, v1 consumed 200 of a 1000-cycle window
        # on a 1-PCPU "machine".
        vms[0].vcpus[0].online_cycles = 600
        vms[1].vcpus[0].online_cycles = 200
        sim.at(1000, lambda: None)
        sim.run()
        report = FairnessReport(vms, elapsed_cycles=1000, num_pcpus=1)
        by = report.by_vm()
        assert by["v0"].measured_fraction == pytest.approx(0.6)
        assert by["v0"].entitled_fraction == pytest.approx(0.5)
        assert report.jains() < 1.0
        assert report.max_relative_error() == pytest.approx(0.6, abs=0.01)

    def test_report_rejects_zero_elapsed(self, sim, trace):
        vm = VM(0, VMConfig(name="v", num_vcpus=1), sim, trace)
        with pytest.raises(ConfigurationError):
            FairnessReport([vm], 0, 1)


class TestReportFormatting:
    def test_table_renders_aligned(self):
        t = Table(["name", "value"], title="demo")
        t.add_row("alpha", 1.23456)
        t.add_row("b", 2)
        out = t.render()
        assert "demo" in out
        assert "alpha" in out
        assert "1.235" in out  # default 3-digit precision

    def test_table_rejects_wrong_arity(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_format_series(self):
        out = format_series("runtime", [1.0, 2.0], [10.0, 20.0])
        assert "runtime" in out
        assert out.count("\n") == 2

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])

    def test_format_mapping(self):
        out = format_mapping("stats", {"a": 1, "bb": 2.5})
        assert "stats" in out and "bb" in out
