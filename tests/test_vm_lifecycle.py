"""VM hot-plug and destroy (consolidation churn)."""

import pytest

from repro import units
from repro.config import SchedulerConfig
from repro.errors import ConfigurationError
from repro.experiments.setup import Testbed as SimTestbed
from repro.vmm.vm import VCPUState
from repro.workloads.nas import NasBenchmark
from repro.workloads.speccpu import SpecCpuRateWorkload


class TestHotplug:
    def test_add_vm_after_start(self):
        tb = SimTestbed(num_pcpus=4)
        tb.add_vm("V1", num_vcpus=2,
                  workload=SpecCpuRateWorkload.by_name("176.gcc",
                                                       scale=0.2))
        tb.run_for(units.ms(20))
        tb.add_vm("V2", num_vcpus=2,
                  workload=SpecCpuRateWorkload.by_name("176.gcc",
                                                       scale=0.05))
        ok = tb.run_until_workloads_done(["V2"],
                                         deadline_cycles=units.seconds(30))
        assert ok
        tb.scheduler.check_invariants()

    def test_late_vm_gets_fair_share(self):
        tb = SimTestbed(num_pcpus=2,
                        sched_config=SchedulerConfig(work_conserving=True))
        tb.add_vm("V1", num_vcpus=2,
                  workload=SpecCpuRateWorkload.by_name("256.bzip2",
                                                       scale=3.0))
        tb.run_for(units.ms(50))
        tb.add_vm("V2", num_vcpus=2,
                  workload=SpecCpuRateWorkload.by_name("256.bzip2",
                                                       scale=3.0))
        mark = tb.sim.now
        v2_before = tb.vms["V2"].cpu_time()
        tb.run_for(units.seconds(1))
        share = (tb.vms["V2"].cpu_time() - v2_before) \
            / ((tb.sim.now - mark) * 2)
        assert share == pytest.approx(0.5, abs=0.1)


class TestDestroy:
    def test_remove_frees_capacity(self):
        tb = SimTestbed(num_pcpus=2,
                        sched_config=SchedulerConfig(work_conserving=True))
        tb.add_vm("V1", num_vcpus=2,
                  workload=SpecCpuRateWorkload.by_name("256.bzip2",
                                                       scale=3.0))
        tb.add_vm("V2", num_vcpus=2,
                  workload=SpecCpuRateWorkload.by_name("256.bzip2",
                                                       scale=3.0))
        tb.run_for(units.ms(200))
        removed = tb.remove_vm("V2")
        assert removed.destroyed
        assert all(v.state is VCPUState.BLOCKED for v in removed.vcpus)
        tb.scheduler.check_invariants()
        mark = tb.sim.now
        v1_before = tb.vms["V1"].cpu_time()
        tb.run_for(units.seconds(1))
        share = (tb.vms["V1"].cpu_time() - v1_before) \
            / ((tb.sim.now - mark) * 2)
        assert share > 0.9  # the survivor takes the whole machine

    def test_destroyed_vm_timers_are_inert(self):
        tb = SimTestbed(num_pcpus=4)
        tb.add_vm("V1", num_vcpus=4,
                  workload=NasBenchmark.by_name("EP", scale=0.05,
                                                rounds=5))
        tb.run_for(units.ms(30))
        removed = tb.remove_vm("V1")
        # The guest's IRQ daemon keeps firing sim timers; they must not
        # resurrect the destroyed VM.
        tb.run_for(units.ms(100))
        assert all(v.state is VCPUState.BLOCKED for v in removed.vcpus)
        tb.scheduler.check_invariants()

    def test_remove_unknown_vm_rejected(self):
        tb = SimTestbed()
        with pytest.raises(ConfigurationError):
            tb.remove_vm("ghost")

    def test_remove_unregistered_vm_rejected(self):
        tb = SimTestbed()
        vm = tb.add_vm("V1", num_vcpus=1)
        tb.remove_vm("V1")
        with pytest.raises(ConfigurationError):
            tb.scheduler.remove_vm(vm)  # already gone

    def test_churn_loop(self):
        """Repeated add/remove cycles stay invariant-clean."""
        tb = SimTestbed(num_pcpus=4)
        tb.add_vm("base", num_vcpus=2,
                  workload=SpecCpuRateWorkload.by_name("256.bzip2",
                                                       scale=3.0))
        tb.start()
        for i in range(5):
            tb.add_vm(f"tmp{i}", num_vcpus=2,
                      workload=SpecCpuRateWorkload.by_name(
                          "176.gcc", scale=0.5))
            tb.run_for(units.ms(70))
            tb.remove_vm(f"tmp{i}")
            tb.run_for(units.ms(30))
            tb.scheduler.check_invariants()
