"""The three interprocedural rule families against the seeded fixture
packages: every planted violation is found, the clean package produces
zero findings, the SARIF output matches a golden snapshot, and the CLI
wires baseline/diff/exit codes correctly.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.engine import Project, analyze, stable_rel_path
from repro.analysis.rules_interproc import (INTERPROC_RULES, STREAM_ROUTES,
                                            run_interproc_rules)
from repro.analysis.sarif import (SARIF_SCHEMA_URI, SARIF_VERSION,
                                  render_sarif)
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
CLEAN = FIXTURES / "clean_pkg" / "repro"
RNG = FIXTURES / "rng_pkg" / "repro"
CYCLES = FIXTURES / "cycles_pkg" / "repro"
WALLCLOCK = FIXTURES / "wallclock_pkg" / "repro"
GOLDEN_SARIF = FIXTURES / "cycles_pkg.sarif.json"


def findings_in(root):
    """(relpath, line, rule) triples from the interprocedural rules."""
    project = Project.load(root)
    found = run_interproc_rules(project)
    return sorted((stable_rel_path(v.path), v.line, v.rule) for v in found)


# --------------------------------------------------------------------- #
# Rule families against the seeded packages
# --------------------------------------------------------------------- #
class TestSeededFindings:
    def test_clean_package_has_zero_findings(self):
        assert findings_in(CLEAN) == []

    def test_rng_provenance_catches_all_three(self):
        assert findings_in(RNG) == [
            ("repro/asman/mon.py", 13, "rng-provenance"),
            ("repro/experiments/wire.py", 11, "rng-provenance"),
            ("repro/faults/inj.py", 13, "rng-provenance"),
        ]

    def test_cycle_unit_flow_catches_all_three(self):
        assert findings_in(CYCLES) == [
            ("repro/vmm/timing.py", 20, "cycle-unit-flow"),
            ("repro/vmm/timing.py", 26, "cycle-unit-flow"),
            ("repro/vmm/timing.py", 32, "cycle-unit-flow"),
        ]

    def test_transitive_wall_clock_catches_all_three(self):
        assert findings_in(WALLCLOCK) == [
            ("repro/vmm/clock.py", 10, "transitive-wall-clock"),
            ("repro/vmm/clock.py", 16, "transitive-wall-clock"),
            ("repro/vmm/clock.py", 22, "transitive-wall-clock"),
        ]

    def test_cross_call_contamination_names_the_sink(self):
        project = Project.load(RNG)
        by_file = {stable_rel_path(v.path): v
                   for v in run_interproc_rules(project)}
        wire = by_file["repro/experiments/wire.py"]
        assert "monitor" in wire.message
        assert "repro.faults.inj.Injector.__init__" in wire.message

    def test_indirect_ms_flow_names_the_wrapper(self):
        project = Project.load(CYCLES)
        msgs = [v.message for v in run_interproc_rules(project)
                if v.line == 26]
        assert len(msgs) == 1 and "arm" in msgs[0]

    def test_wall_clock_chain_names_the_helper(self):
        project = Project.load(WALLCLOCK)
        msgs = [v.message for v in run_interproc_rules(project)
                if v.line == 10]
        assert len(msgs) == 1
        assert "time.time" in msgs[0]
        assert "repro.metrics.host.hostclock" in msgs[0]

    def test_rule_subset_restricts_families(self):
        project = Project.load(RNG)
        found = run_interproc_rules(project, rules=["cycle-unit-flow"])
        assert found == []

    def test_stream_routes_cover_the_documented_prefixes(self):
        assert {"workload", "monitor", "learner", "faults",
                "conformance", "supervisor", "chaos"} == set(STREAM_ROUTES)

    def test_rule_registry_is_three_families(self):
        assert set(INTERPROC_RULES) == {
            "rng-provenance", "cycle-unit-flow", "transitive-wall-clock"}


# --------------------------------------------------------------------- #
# The real source tree
# --------------------------------------------------------------------- #
class TestSrcRepro:
    def test_src_repro_is_interprocedurally_clean(self):
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        report, _, _ = analyze(src)
        assert [v.render() for v in report.violations] == []

    def test_monitoring_module_requires_explicit_stream_rng(self):
        # Regression for the true positive the analysis found: the
        # monitor defaulted to an ad-hoc default_rng(0) generator
        # outside the seed-tree when constructed without an rng.
        from repro.asman.monitor import MonitoringModule
        with pytest.raises(ValueError, match="named RngStreams stream"):
            # The guard fires before the kernel is touched, so stand-ins
            # are enough to pin the contract.
            MonitoringModule(kernel=object(), hypercalls=object())


# --------------------------------------------------------------------- #
# SARIF output
# --------------------------------------------------------------------- #
class TestSarif:
    def test_golden_snapshot(self):
        report, project, sources = analyze(CYCLES)
        rendered = render_sarif(report, sources, project) + "\n"
        assert rendered == GOLDEN_SARIF.read_text(encoding="utf-8")

    def test_document_structure(self):
        report, project, sources = analyze(RNG)
        doc = json.loads(render_sarif(report, sources, project))
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        (run,) = doc["runs"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(INTERPROC_RULES) <= rule_ids
        assert len(run["results"]) == 3
        for res in run["results"]:
            assert res["level"] == "error"
            assert res["baselineState"] == "new"
            assert res["partialFingerprints"]["simlintContent/v1"]
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"].startswith("repro/")
            assert loc["region"]["startLine"] > 0

    def test_grandfathered_results_marked_unchanged(self, tmp_path):
        from repro.analysis.engine import load_baseline, write_baseline
        report, project, sources = analyze(RNG)
        base = tmp_path / "b.json"
        write_baseline(report.violations, sources, base)
        report2, project2, sources2 = analyze(
            RNG, baseline=load_baseline(base))
        doc = json.loads(render_sarif(report2, sources2, project2))
        states = {r["baselineState"] for r in doc["runs"][0]["results"]}
        assert states == {"unchanged"}


# --------------------------------------------------------------------- #
# CLI workflow
# --------------------------------------------------------------------- #
class TestCliInterproc:
    def test_sarif_requires_interprocedural(self, capsys):
        assert cli_main(["lint", "--format", "sarif", str(CLEAN)]) == 2
        assert "--interprocedural" in capsys.readouterr().err

    def test_clean_package_exits_zero(self, capsys):
        assert cli_main(["lint", "--interprocedural", "--no-baseline",
                         str(CLEAN)]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_seeded_package_fails_without_baseline(self, capsys):
        assert cli_main(["lint", "--interprocedural", "--no-baseline",
                         str(RNG)]) == 1
        out = capsys.readouterr().out
        assert "rng-provenance" in out and "3 new" in out

    def test_update_then_gate_round_trip(self, tmp_path, capsys):
        base = tmp_path / "baseline.json"
        assert cli_main(["lint", "--interprocedural", "--update-baseline",
                         "--baseline", str(base), str(RNG)]) == 0
        assert base.exists()
        # Same findings again: grandfathered, gate passes.
        assert cli_main(["lint", "--interprocedural",
                         "--baseline", str(base), str(RNG)]) == 0
        out = capsys.readouterr().out
        assert "3 grandfathered" in out and "0 new" in out

    def test_diff_mode_reports_only_changed_files(self, capsys):
        target = RNG / "faults" / "inj.py"
        assert cli_main(["lint", "--interprocedural", "--no-baseline",
                         "--diff", str(target), str(RNG)]) == 1
        out = capsys.readouterr().out
        assert "inj.py" in out and "wire.py" not in out

    def test_sarif_output_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "lint.sarif"
        code = cli_main(["lint", "--interprocedural", "--no-baseline",
                         "--format", "sarif", "--output", str(out_path),
                         str(CYCLES)])
        assert code == 1
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        assert doc["version"] == "2.1.0"

    def test_multiple_roots_rejected(self, capsys):
        assert cli_main(["lint", "--interprocedural",
                         str(CLEAN), str(RNG)]) == 2

    def test_list_rules_includes_interprocedural(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in INTERPROC_RULES:
            assert rid in out
        assert "[interprocedural]" in out

    def test_checked_in_baseline_is_current(self, capsys):
        # The shipped gate: src/repro against analysis-baseline.json
        # must pass and must not carry stale suppressions.
        repo = Path(__file__).resolve().parent.parent
        src = repo / "src" / "repro"
        base = repo / "analysis-baseline.json"
        assert cli_main(["lint", "--interprocedural",
                         "--baseline", str(base), str(src)]) == 0
        assert "warning" not in capsys.readouterr().out
