"""Testbed builder and runners (fast, small-scale scenarios)."""

import pytest

from repro import units
from repro.config import SchedulerConfig
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.runner import (PAPER_RATES, run_multi_vm,
                                      run_single_vm, run_specjbb)
from repro.experiments.setup import make_scheduler, weight_for_rate
from repro.experiments.setup import Testbed as SimTestbed
from repro.workloads.nas import NasBenchmark
from repro.workloads.speccpu import SpecCpuRateWorkload
from repro.workloads.synthetic import PhaseSpec, SyntheticWorkload


class TestWeightForRate:
    @pytest.mark.parametrize("rate,weight", [
        (1.0, 256), (2 / 3, 128), (0.4, 64), (2 / 9, 32)])
    def test_paper_weights(self, rate, weight):
        assert weight_for_rate(rate) == weight

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            weight_for_rate(0.0)
        with pytest.raises(ConfigurationError):
            weight_for_rate(1.5)

    def test_paper_rates_constant(self):
        assert PAPER_RATES == (1.0, 2 / 3, 0.4, 2 / 9)


class TestMakeScheduler:
    def test_known_names(self):
        assert make_scheduler("credit").name == "credit"
        assert make_scheduler("ASMAN").name == "asman"
        assert make_scheduler("con").name == "con"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("cfs")


class TestTestbed:
    def test_domain0_defaults(self):
        tb = SimTestbed()
        d0 = tb.add_domain0()
        assert d0.config.num_vcpus == 8
        assert d0.weight == 256
        assert "Domain-0" in tb.vms

    def test_duplicate_vm_rejected(self):
        tb = SimTestbed()
        tb.add_vm("a", num_vcpus=1)
        with pytest.raises(ConfigurationError):
            tb.add_vm("a", num_vcpus=1)

    def test_add_after_start_hotplugs(self):
        tb = SimTestbed()
        tb.add_vm("a", num_vcpus=1)
        tb.start()
        vm = tb.add_vm("b", num_vcpus=1)  # hot-plug is supported
        assert vm.name == "b"
        tb.scheduler.check_invariants()

    def test_monitor_attached_only_under_asman(self):
        wl = SyntheticWorkload("s", 1, [PhaseSpec(compute=1000)])
        tb = SimTestbed(scheduler="asman")
        tb.add_vm("a", workload=wl)
        assert "a" in tb.monitors
        wl2 = SyntheticWorkload("s", 1, [PhaseSpec(compute=1000)])
        tb2 = SimTestbed(scheduler="credit")
        tb2.add_vm("a", workload=wl2)
        assert "a" not in tb2.monitors

    def test_monitored_override(self):
        wl = SyntheticWorkload("s", 1, [PhaseSpec(compute=1000)])
        tb = SimTestbed(scheduler="credit")
        tb.add_vm("a", workload=wl, monitored=True)
        assert "a" in tb.monitors

    def test_spin_stats_require_workload(self):
        tb = SimTestbed()
        tb.add_vm("a")
        with pytest.raises(ConfigurationError):
            tb.spin_stats("a")

    def test_run_for_advances_clock(self):
        tb = SimTestbed()
        tb.add_vm("a", num_vcpus=1)
        tb.run_for(units.ms(5))
        assert tb.sim.now == units.ms(5)


class TestRunners:
    def test_single_vm_completes(self):
        r = run_single_vm(
            lambda: NasBenchmark.by_name("EP", scale=0.05),
            scheduler="credit", online_rate=1.0)
        assert r.finished
        assert r.runtime_seconds > 0
        assert r.weight == 256
        assert r.measured_online_rate > 0.5

    def test_single_vm_rate_enforced(self):
        r = run_single_vm(
            lambda: SpecCpuRateWorkload.by_name("176.gcc", scale=0.3),
            scheduler="credit", online_rate=0.4)
        assert r.measured_online_rate == pytest.approx(0.4, abs=0.07)

    def test_single_vm_asman_has_monitor_stats(self):
        r = run_single_vm(
            lambda: NasBenchmark.by_name("EP", scale=0.05),
            scheduler="asman", online_rate=1.0)
        assert r.monitor_stats is not None

    def test_single_vm_deadline(self):
        with pytest.raises(SimulationError):
            run_single_vm(
                lambda: NasBenchmark.by_name("EP", scale=1.0),
                scheduler="credit", online_rate=0.4,
                deadline_cycles=units.ms(10))

    def test_multi_vm_requires_rounds_margin(self):
        with pytest.raises(ConfigurationError):
            run_multi_vm(
                [("V1", lambda: NasBenchmark.by_name("EP", scale=0.05,
                                                     rounds=1), False)],
                measure_rounds=2)

    def test_multi_vm_round_measurement(self):
        assign = [
            ("V1", lambda: SpecCpuRateWorkload.by_name(
                "176.gcc", scale=0.05, rounds=6), False),
            ("V2", lambda: NasBenchmark.by_name(
                "EP", scale=0.05, rounds=6), True),
        ]
        r = run_multi_vm(assign, scheduler="credit", measure_rounds=1)
        assert set(r.round_seconds) == {"V1", "V2"}
        assert all(v > 0 for v in r.round_seconds.values())
        assert r.fairness_jains > 0.8

    def test_specjbb_runner(self):
        r = run_specjbb(2, scheduler="credit", online_rate=1.0,
                        window_cycles=units.ms(200),
                        warmup_cycles=units.ms(20))
        assert r.bops > 0
        assert r.warehouses == 2
