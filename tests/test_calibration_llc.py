"""Calibration suite and LLC-aware relocation."""

import pytest

from repro import units
from repro.config import MachineConfig, SchedulerConfig, VMConfig
from repro.experiments.calibration import (CalibrationReport, Probe,
                                           calibrate, probe_determinism,
                                           probe_online_rates)
from repro.hardware.machine import Machine
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.vmm.adaptive import AdaptiveScheduler
from repro.vmm.vm import VM
from tests.conftest import quiet_guest_config


class TestProbe:
    def test_within_tolerance_ok(self):
        assert Probe("p", 1.0, 1.05, 0.1).ok

    def test_outside_tolerance_fails(self):
        assert not Probe("p", 1.0, 1.5, 0.1).ok

    def test_zero_expected_uses_absolute(self):
        assert Probe("p", 0.0, 0.0, 0.0).ok
        assert not Probe("p", 0.0, 1.0, 0.5).ok

    def test_report_aggregates(self):
        rep = CalibrationReport(probes=[
            Probe("a", 1.0, 1.0, 0.1), Probe("b", 1.0, 2.0, 0.1)])
        assert not rep.ok
        assert [p.name for p in rep.failures()] == ["b"]
        assert "calibration" in rep.render()


class TestCalibrationProbes:
    def test_online_rate_probes_pass(self):
        rep = CalibrationReport()
        probe_online_rates(rep, rates=(0.4,), scale=0.3)
        assert rep.ok, rep.render()

    def test_determinism_probe_passes(self):
        rep = CalibrationReport()
        probe_determinism(rep, scale=0.1)
        assert rep.ok, rep.render()

    def test_quick_calibrate_passes(self):
        rep = calibrate(full=False)
        assert rep.ok, rep.render()


class TestLlcAwareRelocation:
    def _build(self, llc_aware):
        sim = Simulator()
        trace = TraceBus()
        machine = Machine(MachineConfig(num_pcpus=8, sockets=2), sim)
        sched = AdaptiveScheduler(machine, sim, trace,
                                  SchedulerConfig(), llc_aware=llc_aware)
        vm = VM(0, VMConfig(name="a", num_vcpus=4,
                            guest=quiet_guest_config()), sim, trace)
        sched.add_vm(vm)
        return machine, sched, vm

    def test_llc_aware_prefers_gang_socket(self):
        machine, sched, vm = self._build(llc_aware=True)
        # Gang currently on socket 1 (pcpus 4,5,6) with one straggler
        # stacked on pcpu 4.
        sched._move_to_runq(vm.vcpus[0], 4)
        sched._move_to_runq(vm.vcpus[1], 5)
        sched._move_to_runq(vm.vcpus[2], 6)
        sched._move_to_runq(vm.vcpus[3], 4)  # conflict -> will move
        sched.relocate(vm)
        homes = sorted(v.home_pcpu_id for v in vm.vcpus)
        assert len(set(homes)) == 4
        sockets = {machine.topology.socket_of(h) for h in homes}
        assert sockets == {1}  # the straggler landed on pcpu 7

    def test_default_ignores_sockets(self):
        machine, sched, vm = self._build(llc_aware=False)
        sched._move_to_runq(vm.vcpus[0], 4)
        sched._move_to_runq(vm.vcpus[1], 5)
        sched._move_to_runq(vm.vcpus[2], 6)
        sched._move_to_runq(vm.vcpus[3], 4)
        sched.relocate(vm)
        homes = sorted(v.home_pcpu_id for v in vm.vcpus)
        assert len(set(homes)) == 4
        # Non-LLC-aware picks the first free PCPU (socket 0).
        sockets = {machine.topology.socket_of(h) for h in homes}
        assert sockets == {0, 1}

    def test_llc_aware_falls_back_when_socket_full(self):
        machine, sched, vm = self._build(llc_aware=True)
        # Occupy all of socket 1 with the first three VCPUs, plus one
        # more sibling on an already-claimed pcpu: pcpu 7 is taken too.
        sched._move_to_runq(vm.vcpus[0], 4)
        sched._move_to_runq(vm.vcpus[1], 5)
        sched._move_to_runq(vm.vcpus[2], 6)
        occupied = {4, 5, 6, 7}
        dest = sched._free_pcpu_for(vm, occupied)
        assert dest is not None
        assert dest.socket == 0  # graceful cross-socket fallback
