"""Hardware layer: topology, PCPUs, IPI fabric."""

import pytest

from repro.config import MachineConfig, VMConfig
from repro.errors import ConfigurationError, SchedulerInvariantError
from repro.hardware.ipi import IPIFabric
from repro.hardware.machine import Machine
from repro.hardware.topology import Topology
from repro.vmm.vm import VM


class TestTopology:
    def test_paper_testbed_layout(self):
        t = Topology(8, 2)
        assert t.cores_per_socket == 4
        assert t.socket_of(0) == 0
        assert t.socket_of(4) == 1
        assert t.socket_of(7) == 1

    def test_core_of(self):
        t = Topology(8, 2)
        assert t.core_of(5) == 1

    def test_same_socket(self):
        t = Topology(8, 2)
        assert t.same_socket(0, 3)
        assert not t.same_socket(3, 4)

    def test_siblings(self):
        t = Topology(8, 2)
        assert t.siblings(5) == [4, 5, 6, 7]

    def test_distance(self):
        t = Topology(8, 2)
        assert t.distance(2, 2) == 0
        assert t.distance(0, 1) == 1
        assert t.distance(0, 7) == 2

    def test_rejects_out_of_range(self):
        t = Topology(4, 1)
        with pytest.raises(ConfigurationError):
            t.socket_of(4)

    def test_rejects_indivisible(self):
        with pytest.raises(ConfigurationError):
            Topology(7, 2)


class TestPCPU:
    def _vcpu(self, sim, trace):
        vm = VM(0, VMConfig(name="v", num_vcpus=1), sim, trace)
        return vm.vcpus[0]

    def test_initially_idle(self, machine):
        assert all(p.is_idle for p in machine)
        assert machine.idle_pcpus() == list(machine.pcpus)

    def test_occupy_vacate(self, sim, trace, machine):
        v = self._vcpu(sim, trace)
        p = machine[0]
        p.occupy(v)
        assert p.current is v
        assert not p.is_idle
        assert p.vacate() is v
        assert p.is_idle

    def test_double_occupy_rejected(self, sim, trace, machine):
        v = self._vcpu(sim, trace)
        p = machine[0]
        p.occupy(v)
        with pytest.raises(SchedulerInvariantError):
            p.occupy(v)

    def test_vacate_idle_returns_none(self, machine):
        assert machine[0].vacate() is None

    def test_utilization_accounting(self, sim, trace, machine):
        v = self._vcpu(sim, trace)
        p = machine[0]
        sim.at(100, lambda: p.occupy(v))
        sim.at(300, lambda: p.vacate())
        sim.run()
        sim.at(400, lambda: None)
        sim.run()
        # busy 200 of 400 cycles
        assert p.utilization() == pytest.approx(0.5)

    def test_switch_counter(self, sim, trace, machine):
        v = self._vcpu(sim, trace)
        p = machine[0]
        p.occupy(v)
        p.vacate()
        p.occupy(v)
        assert p.switches == 2

    def test_total_utilization_zero_initially(self, machine):
        assert machine.total_utilization() == 0.0


class TestIPIFabric:
    def test_delivery_with_latency(self, sim, machine):
        fabric = IPIFabric(machine, sim)
        got = []
        fabric.register(1, lambda t, s, p: got.append((t, s, p, sim.now)))
        fabric.send(0, 1, payload="hello")
        assert got == []  # asynchronous
        sim.run()
        target, source, payload, when = got[0]
        assert (target, source, payload) == (1, 0, "hello")
        assert when == machine.config.ipi_latency

    def test_unregistered_target_rejected(self, sim, machine):
        fabric = IPIFabric(machine, sim)
        with pytest.raises(ConfigurationError):
            fabric.send(0, 3)

    def test_broadcast(self, sim, machine):
        fabric = IPIFabric(machine, sim)
        got = []
        for pid in range(len(machine)):
            fabric.register(pid, lambda t, s, p: got.append(t))
        fabric.broadcast(0, [1, 2, 5])
        sim.run()
        assert sorted(got) == [1, 2, 5]

    def test_self_ipi_allowed(self, sim, machine):
        fabric = IPIFabric(machine, sim)
        got = []
        fabric.register(0, lambda t, s, p: got.append((t, s)))
        fabric.send(0, 0)
        sim.run()
        assert got == [(0, 0)]

    def test_sent_counter(self, sim, machine):
        fabric = IPIFabric(machine, sim)
        fabric.register(1, lambda *a: None)
        fabric.send(0, 1)
        fabric.send(0, 1)
        assert fabric.sent == 2

    def test_register_out_of_range(self, sim, machine):
        fabric = IPIFabric(machine, sim)
        with pytest.raises(ConfigurationError):
            fabric.register(99, lambda *a: None)
