"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings, strategies as st

from repro import units
from repro.asman.learning import RothErevLearner
from repro.asman.locality import LocalityAnalyzer
from repro.config import LearningConfig
from repro.metrics.fairness import jains_index
from repro.sim.engine import Simulator

import numpy as np
import pytest


class TestEngineProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=50))
    def test_events_always_fire_in_nondecreasing_time(self, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.at(t, lambda t=t: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=50),
           st.integers(min_value=0, max_value=10_000))
    def test_run_until_partitions_timeline(self, times, split):
        sim = Simulator()
        fired = []
        for t in times:
            sim.at(t, lambda t=t: fired.append(t))
        sim.run_until(split)
        early = list(fired)
        sim.run_until(10_001)
        assert all(t <= split for t in early)
        assert sorted(fired) == sorted(times)

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                              st.booleans()),
                    min_size=1, max_size=40))
    def test_cancelled_events_never_fire(self, spec):
        sim = Simulator()
        fired = []
        events = []
        for t, cancel in spec:
            ev = sim.at(t, lambda t=t: fired.append(t))
            events.append((ev, t, cancel))
        for ev, _, cancel in events:
            if cancel:
                ev.cancel()
        sim.run()
        expected = sorted(t for _, t, cancel in events if not cancel)
        assert sorted(fired) == expected


class TestLearnerProperties:
    @given(st.lists(st.integers(min_value=1,
                                max_value=units.seconds(20)),
                    min_size=1, max_size=40),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_estimates_always_valid_candidates(self, zs, seed):
        learner = RothErevLearner(LearningConfig(),
                                  np.random.default_rng(seed))
        estimates = learner.train(zs)
        assert all(e in learner.x for e in estimates)

    @given(st.lists(st.integers(min_value=1,
                                max_value=units.seconds(20)),
                    min_size=1, max_size=40),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_propensities_remain_positive_and_finite(self, zs, seed):
        learner = RothErevLearner(LearningConfig(),
                                  np.random.default_rng(seed))
        learner.train(zs)
        q = learner.propensities()
        assert (q > 0).all()
        assert np.isfinite(q).all()

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_given_seed(self, seed):
        zs = [units.ms(100)] * 8
        a = RothErevLearner(LearningConfig(),
                            np.random.default_rng(seed)).train(zs)
        b = RothErevLearner(LearningConfig(),
                            np.random.default_rng(seed)).train(zs)
        assert a == b


class TestLocalityAnalyzerProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**9),
                    min_size=1, max_size=200),
           st.integers(min_value=1, max_value=10**6))
    def test_localities_cover_all_events(self, ts, gap):
        analyzer = LocalityAnalyzer(gap)
        locs = analyzer.localities(ts)
        assert sum(l.events for l in locs) == len(ts)

    @given(st.lists(st.integers(min_value=0, max_value=10**9),
                    min_size=2, max_size=200),
           st.integers(min_value=1, max_value=10**6))
    def test_localities_ordered_and_disjoint(self, ts, gap):
        analyzer = LocalityAnalyzer(gap)
        locs = analyzer.localities(ts)
        for a, b in zip(locs, locs[1:]):
            assert a.start <= b.start
            assert a.end <= b.start  # no overlap
            # Splitting happened because the gap exceeded the threshold.
            assert b.start - a.end >= 0


class TestFairnessProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False),
                    min_size=1, max_size=20))
    def test_jains_bounded(self, values):
        j = jains_index(values)
        assert 1.0 / len(values) - 1e-9 <= j <= 1.0 + 1e-9

    @given(st.floats(min_value=0.001, max_value=1e6), st.integers(2, 10))
    def test_jains_equal_values_is_one(self, v, n):
        assert jains_index([v] * n) == pytest.approx(1.0, rel=1e-12)


class TestSpinlockModelProperties:
    @given(st.lists(st.integers(min_value=1, max_value=1 << 30),
                    min_size=1, max_size=100))
    def test_stats_accounting_consistent(self, waits):
        from repro.guest.spinlock import SpinLock
        lk = SpinLock("l")
        for w in waits:
            lk.record_acquisition(w)
        assert lk.acquisitions == len(waits)
        assert lk.max_wait == max(waits)
        assert lk.total_wait == sum(waits)
        assert lk.mean_wait() * len(waits) == pytest.approx(sum(waits))


class TestGuestComputeProperty:
    @given(st.lists(st.integers(min_value=1, max_value=units.ms(5)),
                    min_size=1, max_size=8),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_compute_work_conserved_across_preemption(self, segs, seed):
        """However the scheduler slices them, tasks complete exactly the
        compute they asked for."""
        from repro.guest.ops import Compute
        from tests.conftest import Harness
        h = Harness(num_pcpus=1, num_vcpus=1)
        _, k2 = h.add_vm("vm1", num_vcpus=1)
        t1 = h.kernel.spawn("a", iter([Compute(s) for s in segs]), 0)
        t2 = k2.spawn("b", iter([Compute(s) for s in segs]), 0)
        h.start()
        done = h.sim.run_until_true(
            lambda: h.kernel.finished and k2.finished,
            deadline=units.seconds(5))
        assert done
        assert t1.compute_cycles_done == sum(segs)
        assert t2.compute_cycles_done == sum(segs)
