"""Liveness fuzz: random workloads on random testbeds never deadlock.

The guest/VMM interaction has many waiting states (spinning, futex
sleep, parked, skew-stopped); a bug in any wake path shows up as a hang.
These tests generate random-but-valid scenarios and assert completion
within a generous simulated deadline — a structured hang detector.
"""

from hypothesis import given, settings, strategies as st

from repro import units
from repro.config import SchedulerConfig
from repro.experiments.setup import weight_for_rate
from repro.experiments.setup import Testbed as SimTestbed
from repro.workloads.synthetic import PhaseSpec, SyntheticWorkload

SYNC_KINDS = [None, "barrier", "critical", "sem_pingpong"]


@st.composite
def phases(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    out = []
    for _ in range(n):
        sync = draw(st.sampled_from(SYNC_KINDS))
        out.append(PhaseSpec(
            compute=draw(st.integers(min_value=1000,
                                     max_value=units.ms(2))),
            repeats=draw(st.integers(min_value=1, max_value=6)),
            sync=sync,
            critical_hold=draw(st.integers(min_value=100,
                                           max_value=50_000)),
            jitter_cv=draw(st.sampled_from([0.0, 0.2])),
        ))
    return out


class TestNoDeadlock:
    @given(phase_list=phases(),
           threads=st.integers(min_value=2, max_value=4),
           scheduler=st.sampled_from(["credit", "asman", "con", "relaxed"]),
           seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=30, deadline=None)
    def test_random_workload_completes(self, phase_list, threads,
                                       scheduler, seed):
        # sem_pingpong needs an even producer/consumer split to terminate.
        if any(p.sync == "sem_pingpong" for p in phase_list) \
                and threads % 2:
            threads += 1
        tb = SimTestbed(scheduler=scheduler, num_pcpus=4, seed=seed,
                        sched_config=SchedulerConfig(work_conserving=True))
        wl = SyntheticWorkload("fuzz", threads=threads, phases=phase_list)
        tb.add_vm("V1", num_vcpus=4, weight=256, workload=wl,
                  concurrent_hint=True)
        ok = tb.run_until_workloads_done(
            ["V1"], deadline_cycles=units.seconds(60))
        assert ok, "workload did not complete: possible deadlock"
        tb.scheduler.check_invariants()

    @given(rate=st.sampled_from([1.0, 2 / 3, 0.4, 2 / 9]),
           scheduler=st.sampled_from(["credit", "asman"]),
           seed=st.integers(min_value=0, max_value=99))
    @settings(max_examples=12, deadline=None)
    def test_capped_barrier_workload_completes(self, rate, scheduler, seed):
        tb = SimTestbed(scheduler=scheduler, seed=seed,
                        sched_config=SchedulerConfig(work_conserving=False))
        tb.add_domain0()
        wl = SyntheticWorkload("fuzz", threads=4, phases=[
            PhaseSpec(compute=units.us(300), repeats=20, sync="barrier",
                      jitter_cv=0.2),
            PhaseSpec(compute=units.us(100), repeats=20, sync="critical",
                      critical_hold=20_000),
        ])
        tb.add_vm("V1", weight=weight_for_rate(rate), workload=wl)
        ok = tb.run_until_workloads_done(
            ["V1"], deadline_cycles=units.seconds(120))
        assert ok
        tb.scheduler.check_invariants()
