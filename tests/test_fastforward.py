"""Quiescence fast-forward (PR 9): bit-identity and the escape hatch.

The fast-forward layer replaces step-wise paths with analytically
equivalent shortcuts; its whole contract is that no observable integer
moves.  Every scenario here runs twice — once with the shortcuts, once
on the original paths (``set_fastforward(False)``, the in-process twin
of ``REPRO_NO_FASTFORWARD=1``) — and asserts a rich state fingerprint
is identical.  The scenarios are the edge cases where a shortcut could
plausibly diverge:

* a sleep wake landing exactly on a credit-tick boundary (one-shot vs
  periodic heap ordering at equal timestamps, lazy quiescent ticks);
* zero-length ``Compute`` segments (the inline dispatch elides the
  activity — so must the micro-step path);
* a spinlock released at the same cycle an IPI is delivered (same-cycle
  sequence ordering of the inline-at fast paths);
* a fault-injected hypercall delay landing inside a coalesced compute
  segment (deferred side effects interleaved with batched activities).

Plus the levers themselves: ``REPRO_NO_FASTFORWARD`` parsing and the
:func:`closed_form_burn` ≡ ``SchedulerBase._debit`` algebra that
justifies compute coalescing.
"""

import importlib.util
import os
import pathlib
import subprocess
import sys

import pytest

from repro import units
from repro.config import (GuestConfig, MachineConfig, SchedulerConfig,
                          VMConfig)
from repro.experiments.setup import Testbed as SimTestbed
from repro.experiments.setup import weight_for_rate
from repro.faults import FaultSpec
from repro.guest.kernel import GuestKernel
from repro.guest.ops import Compute, Critical, Sleep
from repro.hardware.machine import Machine
from repro.perf.harness import fingerprint_of
from repro.sim import fastforward
from repro.sim.engine import Simulator
from repro.sim.fastforward import fastforward_enabled, set_fastforward
from repro.sim.tracing import TraceBus
from repro.vmm.credit import CreditScheduler, closed_form_burn
from repro.workloads.nas import NasBenchmark

TICK = SchedulerConfig().tick_cycles


def run_both_ways(scenario):
    """Run ``scenario()`` with fast-forward on, then off, and return both
    results.  The flag is sampled at construction time, so it is set
    *before* the scenario builds anything and always restored."""
    results = []
    for enabled in (True, False):
        set_fastforward(enabled)
        try:
            results.append(scenario())
        finally:
            set_fastforward(None)
    return results


def guest_fingerprint(sim, kernel, *extra: int) -> int:
    """Everything a divergent shortcut could move: clock, event count,
    per-task progress and completion cycles, lock statistics including
    the wait histogram."""
    parts = [sim.now, sim.events_executed, kernel.finished_at or 0]
    for task in kernel.tasks:
        parts += [task.ops_completed, task.compute_cycles_done,
                  task.finished_at or 0]
    for name in sorted(kernel.locks):
        lock = kernel.lock(name)
        parts += [lock.acquisitions, lock.contended_acquisitions,
                  lock.total_wait, lock.max_wait]
        for exp, count in sorted(lock.wait_hist_nonzero().items()):
            parts += [exp, count]
    parts.extend(extra)
    return fingerprint_of(*parts)


def small_guest(num_pcpus=2, num_vcpus=2):
    """The micro-bench scaffold: one VM under the Credit scheduler, no
    IRQ daemon, fully deterministic."""
    sim = Simulator()
    trace = TraceBus()
    machine = Machine(MachineConfig(num_pcpus=num_pcpus, sockets=1), sim)
    sched = CreditScheduler(machine, sim, trace,
                            SchedulerConfig(work_conserving=True))
    gcfg = GuestConfig(irq_interval_cycles=0)
    from repro.vmm.vm import VM
    vm = VM(0, VMConfig(name="ff", num_vcpus=num_vcpus, guest=gcfg),
            sim, trace)
    sched.add_vm(vm)
    kernel = GuestKernel(vm, sim, trace, gcfg)
    return sim, trace, machine, sched, kernel


# --------------------------------------------------------------------- #
# Edge case 1: sleep wake exactly on a credit-tick boundary
# --------------------------------------------------------------------- #
class TestTickBoundaryWake:
    def test_wake_on_tick_boundary_bit_identical(self):
        """The task computes, then sleeps so that the wake event lands on
        the next credit-tick boundary by construction.  While it sleeps
        the machine is fully quiescent, so the ff path skips the tick's
        scheduling pass — the wake and the tick then race at the same
        cycle and must resolve by the same sequence numbers."""

        def scenario():
            sim, trace, machine, sched, kernel = small_guest(num_vcpus=1)
            planned = []

            def program():
                for _ in range(8):
                    yield Compute(7_777)
                    gap = TICK - (sim.now % TICK)
                    planned.append(sim.now + gap)
                    yield Sleep(gap)
                    yield Compute(3_333)

            kernel.spawn("sleeper", program(), vcpu_index=0)
            sched.start()
            assert sim.run_until_true(lambda: kernel.finished,
                                      deadline=units.seconds(10))
            # The construction really did aim at boundaries.
            assert planned and all(t % TICK == 0 for t in planned)
            return guest_fingerprint(sim, kernel, *planned)

        on, off = run_both_ways(scenario)
        assert on == off

    def test_compute_segment_ending_on_tick_boundary(self):
        """Same race from the other side: the compute activity's
        completion event is armed for exactly a tick boundary."""

        def scenario():
            sim, trace, machine, sched, kernel = small_guest(num_vcpus=1)

            def program():
                for _ in range(4):
                    gap = TICK - (sim.now % TICK)
                    yield Compute(gap)
                    yield Sleep(1_234)

            kernel.spawn("edge", program(), vcpu_index=0)
            sched.start()
            assert sim.run_until_true(lambda: kernel.finished,
                                      deadline=units.seconds(10))
            return guest_fingerprint(sim, kernel)

        on, off = run_both_ways(scenario)
        assert on == off


# --------------------------------------------------------------------- #
# Edge case 2: zero-length Compute
# --------------------------------------------------------------------- #
class TestZeroLengthCompute:
    def test_zero_compute_bit_identical(self):
        """Compute(0) arms no activity on either path (the inline branch
        elides it; ``_start_compute`` returns CONTINUE) but still counts
        as a completed op.  Zero-hold Criticals ride along."""
        rounds = 200

        def scenario():
            sim, trace, machine, sched, kernel = small_guest()

            def program(seed):
                for i in range(rounds):
                    yield Compute(0)
                    yield Compute(((seed + i) % 3) * 1_500)  # 0, 1500, 3000
                    yield Critical("Z", 0 if i % 5 == 0 else 4_000)
                for _ in range(10):
                    yield Compute(0)

            tasks = [kernel.spawn(f"z{t}", program(t), vcpu_index=t)
                     for t in range(2)]
            sched.start()
            assert sim.run_until_true(lambda: kernel.finished,
                                      deadline=units.seconds(10))
            # Zero-length ops are real ops: all counted, no event armed.
            assert all(t.ops_completed == rounds * 3 + 10 for t in tasks)
            return guest_fingerprint(sim, kernel)

        on, off = run_both_ways(scenario)
        assert on == off


# --------------------------------------------------------------------- #
# Edge case 3: spin released at the same timestamp as an IPI
# --------------------------------------------------------------------- #
class TestSpinReleaseIpiCollision:
    def _build(self):
        sim, trace, machine, sched, kernel = small_guest()

        def holder():
            yield Compute(1_000)
            yield Critical("L", 50_000)
            yield Compute(10_000)

        def waiter():
            yield Compute(5_000)
            yield Critical("L", 20_000)
            yield Compute(10_000)

        kernel.spawn("hold", holder(), vcpu_index=0)
        kernel.spawn("wait", waiter(), vcpu_index=1)
        return sim, trace, machine, sched, kernel

    def test_ipi_delivered_at_release_cycle_bit_identical(self):
        """The waiter's grant (== the holder's release cycle) and a
        rescheduling IPI land on the same cycle; ordering then hangs
        entirely on event sequence numbers, which the inline-at fast
        paths must assign exactly as ``Simulator.at`` would."""
        # Discovery pass: find the release cycle.  Both modes are
        # bit-identical (the very claim under test), so either would
        # find the same cycle; pin one for determinism.
        set_fastforward(True)
        try:
            sim, trace, machine, sched, kernel = self._build()
            grants = []
            trace.subscribe("spinlock.wait",
                            lambda rec: grants.append(rec.time))
            sched.start()
            assert sim.run_until_true(lambda: kernel.finished,
                                      deadline=units.seconds(10))
        finally:
            set_fastforward(None)
        assert grants, "scenario must contend the lock"
        release = grants[0]
        latency = machine.config.ipi_latency
        assert release > latency

        def scenario():
            sim, trace, machine, sched, kernel = self._build()
            # Fire the send so delivery lands exactly on the release
            # cycle; the default handler is a rescheduling interrupt.
            sim.at(release - latency, lambda: sched.ipi.send(0, 1))
            sched.start()
            assert sim.run_until_true(lambda: kernel.finished,
                                      deadline=units.seconds(10))
            return guest_fingerprint(sim, kernel, sched.ipi.sent)

        on, off = run_both_ways(scenario)
        assert on == off


# --------------------------------------------------------------------- #
# Edge case 4: hypercall delay interrupting a coalesced segment
# --------------------------------------------------------------------- #
class TestFaultedHypercallDelay:
    def test_delayed_hypercalls_bit_identical(self):
        """Every monitor hypercall's effect is deferred by a drawn delay,
        so VCRD flips land mid-way through coalesced compute segments.
        The full ASMan stack (monitor, inference, adaptive scheduler)
        must stay bit-identical under fast-forward."""
        # Spurious VCRD flips guarantee a steady stream of do_vcrd_op
        # hypercalls; every one of them is then delayed.
        spec = FaultSpec(seed=3, hypercall_delay=1.0,
                         hypercall_delay_cycles=units.ms(1),
                         monitor_flip_period=units.ms(5))

        def scenario():
            tb = SimTestbed(scheduler="asman", seed=1, sanitize=False,
                            faults=spec)
            tb.add_domain0()
            tb.add_vm("V1", weight=weight_for_rate(2.0 / 9.0),
                      workload=NasBenchmark.by_name("LU", scale=0.1))
            done = tb.run_until_workloads_done(
                ["V1"], deadline_cycles=units.seconds(120))
            assert done
            assert tb.faults is not None
            stats = tb.faults.stats()
            assert stats["hypercalls_delayed"] > 0
            kernel = tb.guests["V1"]
            return guest_fingerprint(
                tb.sim, kernel,
                *(v for _, v in sorted(stats.items())))

        on, off = run_both_ways(scenario)
        assert on == off


# --------------------------------------------------------------------- #
# The levers: environment parsing and the runtime override
# --------------------------------------------------------------------- #
class TestEscapeHatch:
    @pytest.mark.parametrize("value,enabled", [
        ("1", False), ("true", False), ("yes", False), ("on", False),
        ("TRUE", False), (" 1 ", False),
        ("", True), ("0", True), ("false", True), ("off", True),
        ("2", True),
    ])
    def test_env_parsing(self, monkeypatch, value, enabled):
        """The escape hatch is sampled at import time; re-execute the
        module under a controlled environment to pin the parse."""
        monkeypatch.setenv("REPRO_NO_FASTFORWARD", value)
        spec = importlib.util.spec_from_file_location(
            "_ff_probe", fastforward.__file__)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert mod.fastforward_enabled() is enabled

    def test_env_disables_in_subprocess(self):
        """End to end: a fresh interpreter with REPRO_NO_FASTFORWARD=1
        reports fast-forward off."""
        src = pathlib.Path(fastforward.__file__).resolve().parents[2]
        env = dict(os.environ)
        env["REPRO_NO_FASTFORWARD"] = "1"
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.sim.fastforward import fastforward_enabled;"
             "print(fastforward_enabled())"],
            env=env, capture_output=True, text=True, check=True)
        assert out.stdout.strip() == "False"

    def test_set_fastforward_overrides_and_resets(self):
        default = fastforward_enabled()
        try:
            set_fastforward(False)
            assert fastforward_enabled() is False
            set_fastforward(True)
            assert fastforward_enabled() is True
        finally:
            set_fastforward(None)
        assert fastforward_enabled() is default


# --------------------------------------------------------------------- #
# The algebra: closed_form_burn == SchedulerBase._debit
# --------------------------------------------------------------------- #
class TestClosedFormBurn:
    @pytest.mark.parametrize("elapsed", [1, 12_345, TICK, 7 * TICK + 13])
    @pytest.mark.parametrize("speed", [1.0, 0.5, 0.3])
    def test_debit_matches_closed_form(self, elapsed, speed):
        """Compute coalescing charges whole intervals with
        :func:`closed_form_burn`; the scheduler's exact-mode ``_debit``
        must apply bit-for-bit the same float arithmetic, degraded-PCPU
        divide included."""
        sim = Simulator()
        trace = TraceBus()
        machine = Machine(MachineConfig(num_pcpus=1, sockets=1), sim)
        cfg = SchedulerConfig(exact_accounting=True)
        sched = CreditScheduler(machine, sim, trace, cfg)
        from repro.vmm.vm import VM
        vm = VM(0, VMConfig(name="burn", num_vcpus=1), sim, trace)
        sched.add_vm(vm)
        vcpu = vm.vcpus[0]
        pcpu = machine[0]
        pcpu.speed_factor = speed
        vcpu.pcpu = pcpu

        sim.at(elapsed, lambda: None)
        sim.run()
        assert sim.now == elapsed

        before = vcpu.credit
        sched._debit_start[id(vcpu)] = 0
        sched._debit(vcpu)
        # Compare the resulting credit, not the recovered delta:
        # ``before - (before - debit)`` re-rounds and would hide (or
        # fake) a one-ulp divergence in the debit itself.
        burn = closed_form_burn(elapsed, cfg.credit_per_tick,
                                cfg.tick_cycles, speed)
        assert burn > 0
        assert vcpu.credit == before - burn
