"""Scheduler sanitizer: each invariant catches a deliberately-corrupted
scheduler state, clean runs stay silent, and the default path is unwired."""

import pytest

from repro.analysis import SanitizerViolation, SchedulerSanitizer
from repro.analysis import sanitize_enabled, set_sanitize
from repro.config import SchedulerConfig
from repro.experiments.setup import Testbed as SimTestbed
from repro.units import OVER_THRESHOLD_CYCLES
from repro.vmm.vm import VCRD
from repro.workloads.nas import NasBenchmark


def make_testbed(scheduler="credit", work_conserving=True, start=True,
                 **kwargs):
    """4-PCPU testbed with two workload-less VMs, sanitizer attached.

    ``start=False`` leaves the VCPUs RUNNABLE in their runqs (the null
    guests block them the moment they first run), which is the state the
    corruption tests need to poke at.
    """
    tb = SimTestbed(scheduler=scheduler, num_pcpus=4, seed=1,
                 sched_config=SchedulerConfig(
                     work_conserving=work_conserving),
                 sanitize=True, **kwargs)
    tb.add_vm("A", num_vcpus=2, weight=256)
    tb.add_vm("B", num_vcpus=2, weight=256)
    if start:
        tb.start()
    return tb


def first_pcpu(tb):
    return tb.machine[0]


class TestWiring:
    def test_testbed_attaches_everywhere(self):
        tb = SimTestbed(scheduler="credit", num_pcpus=4, sanitize=True)
        assert tb.scheduler.sanitizer is tb.sanitizer
        vm = tb.add_vm("W", num_vcpus=4,
                       workload=NasBenchmark.by_name("LU", scale=0.01))
        assert tb.guests["W"].sanitizer is tb.sanitizer
        assert vm is tb.vms["W"]

    def test_default_path_is_unwired(self):
        tb = SimTestbed(scheduler="credit", num_pcpus=2)
        assert tb.sanitizer is None
        assert tb.scheduler.sanitizer is None

    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        tb = SimTestbed(scheduler="credit", num_pcpus=2)
        assert tb.sanitizer is not None

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        set_sanitize(False)
        try:
            assert not sanitize_enabled()
        finally:
            set_sanitize(None)
        assert sanitize_enabled()

    def test_explicit_param_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        tb = SimTestbed(scheduler="credit", num_pcpus=2, sanitize=False)
        assert tb.sanitizer is None


class TestPlacementInvariant:
    def _run_manually(self, tb, vcpu, pcpu):
        """Install ``vcpu`` on ``pcpu`` bypassing the scheduler."""
        from repro.vmm.vm import VCPUState
        tb.scheduler._remove_from_runq(vcpu)
        vcpu.state = VCPUState.RUNNING
        vcpu.pcpu = pcpu
        pcpu.current = vcpu

    def test_vcpu_on_two_pcpus(self):
        tb = make_testbed(start=False)
        vcpu = tb.vms["A"].vcpus[0]
        self._run_manually(tb, vcpu, tb.machine[0])
        tb.machine[1].current = vcpu  # corrupt: second PCPU, same VCPU
        with pytest.raises(SanitizerViolation, match="placement"):
            tb.sanitizer.after_schedule(first_pcpu(tb))

    def test_broken_pcpu_linkage(self):
        tb = make_testbed(start=False)
        vcpu = tb.vms["A"].vcpus[0]
        self._run_manually(tb, vcpu, tb.machine[0])
        vcpu.pcpu = None  # corrupt: VCPU no longer points back
        with pytest.raises(SanitizerViolation, match="placement"):
            tb.sanitizer.after_schedule(first_pcpu(tb))


class TestRunqInvariant:
    def test_double_queued_vcpu(self):
        tb = make_testbed(start=False)
        sched = tb.scheduler
        queued = next(v for rq in sched.runqs.values() for v in rq)
        foreign = next(pid for pid in sched.runqs
                       if pid != queued.home_pcpu_id)
        sched.runqs[foreign].append(queued)  # bypass _enqueue
        sched._queued += 1
        with pytest.raises(SanitizerViolation):
            tb.sanitizer.after_schedule(first_pcpu(tb))

    def test_counter_desync(self):
        tb = make_testbed()
        tb.scheduler._queued += 1
        with pytest.raises(SanitizerViolation, match="_queued"):
            tb.sanitizer.after_schedule(first_pcpu(tb))


class TestCreditConservation:
    def test_credit_injection_between_assigns(self):
        tb = make_testbed()
        tb.vms["A"].vcpus[0].credit += 1_000.0
        with pytest.raises(SanitizerViolation,
                           match="credit conservation"):
            tb.sanitizer.after_schedule(first_pcpu(tb))

    def test_debits_are_fine(self):
        tb = make_testbed()
        tb.vms["A"].vcpus[0].credit -= 50.0
        tb.sanitizer.after_schedule(first_pcpu(tb))
        assert tb.sanitizer.violations == []

    def test_watermark_ratchets_down(self):
        tb = make_testbed()
        vcpu = tb.vms["A"].vcpus[0]
        vcpu.credit -= 50.0
        tb.sanitizer.after_schedule(first_pcpu(tb))
        vcpu.credit += 40.0  # refill below the period-start total
        with pytest.raises(SanitizerViolation,
                           match="credit conservation"):
            tb.sanitizer.after_schedule(first_pcpu(tb))

    def test_legitimate_assignment_rebaselines(self):
        tb = make_testbed()
        tb.scheduler.assign_credits()  # raises totals; hook rebaselines
        tb.sanitizer.after_schedule(first_pcpu(tb))
        assert tb.sanitizer.violations == []

    def test_hotplug_rebaselines(self):
        tb = make_testbed()
        tb.add_vm("C", num_vcpus=2, weight=128)  # injects initial credit
        tb.sanitizer.after_schedule(first_pcpu(tb))
        tb.remove_vm("C")
        tb.sanitizer.after_schedule(first_pcpu(tb))
        assert tb.sanitizer.violations == []

    def test_overdrawn_assignment_caught(self):
        tb = make_testbed()
        sched = tb.scheduler
        for vm in sched.vms:
            for v in vm.vcpus:
                v.credit = 1e9  # far beyond the Algorithm 3 clip ceiling
        with pytest.raises(SanitizerViolation, match="ceiling"):
            tb.sanitizer.note_assign()


class TestGangAtomicity:
    def test_mixed_park_state_in_gang(self):
        tb = make_testbed(scheduler="asman", work_conserving=False)
        vm = tb.vms["A"]
        vm.vcrd = VCRD.HIGH  # bypass set_vcrd: no repark happens
        vm.vcpus[0].parked = True
        vm.vcpus[1].parked = False
        with pytest.raises(SanitizerViolation, match="gang atomicity"):
            tb.sanitizer.after_schedule(first_pcpu(tb))

    def test_uniform_park_state_ok(self):
        tb = make_testbed(scheduler="asman", work_conserving=False)
        vm = tb.vms["A"]
        vm.vcrd = VCRD.HIGH
        for v in vm.vcpus:
            v.parked = True
        tb.sanitizer.after_schedule(first_pcpu(tb))
        assert tb.sanitizer.violations == []

    def test_stale_gang_window_after_vcrd_drop(self):
        tb = make_testbed(scheduler="asman")
        vm = tb.vms["A"]
        # Corrupt: open a gang window for a VM that is not coscheduled.
        tb.scheduler._gang_until[vm.id] = tb.sim.now + 10_000
        with pytest.raises(SanitizerViolation, match="gang window"):
            tb.sanitizer.after_schedule(first_pcpu(tb))

    def test_stale_boost_after_vcrd_drop(self):
        tb = make_testbed(scheduler="asman")
        tb.vms["A"].vcpus[0].boosted = True
        with pytest.raises(SanitizerViolation, match="boost"):
            tb.sanitizer.after_schedule(first_pcpu(tb))

    def test_proper_vcrd_transition_is_clean(self):
        tb = make_testbed(scheduler="asman", work_conserving=False)
        vm = tb.vms["A"]
        vm.set_vcrd(VCRD.HIGH)   # relocation + gang repark + schedules
        vm.set_vcrd(VCRD.LOW)    # tears down window and boosts
        tb.sanitizer.after_schedule(first_pcpu(tb))
        assert tb.sanitizer.violations == []

    def test_credit_scheduler_never_gangs(self):
        tb = make_testbed(scheduler="credit")
        assert not tb.scheduler._wants_cosched(tb.vms["A"])


class TestLhpProvenance:
    def _all_online(self, tb, vm, since=0):
        """Force every VCPU of ``vm`` to look continuously online since
        ``since`` (test-only corruption of the accounting fields)."""
        from repro.vmm.vm import VCPUState
        for i, v in enumerate(vm.vcpus):
            v.state = VCPUState.RUNNING
            v._online_since = since

    def test_over_threshold_spin_with_no_preemption_is_flagged(self):
        tb = make_testbed()
        vm = tb.vms["A"]
        tb.sim.run_until(tb.sim.now + 4 * OVER_THRESHOLD_CYCLES)
        self._all_online(tb, vm, since=0)
        lock = type("L", (), {"name": "runqueue"})()
        wait = OVER_THRESHOLD_CYCLES + 1
        with pytest.raises(SanitizerViolation, match="LHP provenance"):
            tb.sanitizer.note_spin_wait(vm, lock, wait)

    def test_offline_vcpu_explains_the_wait(self):
        tb = make_testbed()
        vm = tb.vms["A"]
        tb.sim.run_until(tb.sim.now + 4 * OVER_THRESHOLD_CYCLES)
        self._all_online(tb, vm, since=0)
        vm.vcpus[1]._online_since = None  # one sibling offline: LHP
        lock = type("L", (), {"name": "runqueue"})()
        tb.sanitizer.note_spin_wait(vm, lock, OVER_THRESHOLD_CYCLES + 1)
        assert tb.sanitizer.violations == []

    def test_late_online_vcpu_explains_the_wait(self):
        tb = make_testbed()
        vm = tb.vms["A"]
        tb.sim.run_until(tb.sim.now + 4 * OVER_THRESHOLD_CYCLES)
        self._all_online(tb, vm, since=0)
        # Came online only halfway through the wait window.
        vm.vcpus[1]._online_since = tb.sim.now - OVER_THRESHOLD_CYCLES // 2
        lock = type("L", (), {"name": "runqueue"})()
        tb.sanitizer.note_spin_wait(vm, lock, OVER_THRESHOLD_CYCLES + 1)
        assert tb.sanitizer.violations == []

    def test_under_threshold_wait_never_checked(self):
        tb = make_testbed()
        vm = tb.vms["A"]
        self._all_online(tb, vm, since=0)
        lock = type("L", (), {"name": "runqueue"})()
        tb.sanitizer.note_spin_wait(vm, lock, OVER_THRESHOLD_CYCLES)
        assert tb.sanitizer.violations == []
        assert tb.sanitizer.spin_waits_checked == 1


class TestModes:
    def test_non_strict_records_instead_of_raising(self):
        tb = make_testbed()
        san = SchedulerSanitizer(tb.scheduler, strict=False)
        tb.scheduler.sanitizer = san
        tb.vms["A"].vcpus[0].credit += 1_000.0
        san.after_schedule(first_pcpu(tb))
        assert len(san.violations) == 1
        assert "credit conservation" in san.violations[0]

    def test_stats_counters(self):
        tb = make_testbed()
        tb.sanitizer.after_schedule(first_pcpu(tb))
        s = tb.sanitizer.stats()
        assert s["schedules_checked"] >= 1
        assert s["violations"] == 0

    def test_violation_is_scheduler_invariant_error(self):
        from repro.errors import SchedulerInvariantError
        assert issubclass(SanitizerViolation, SchedulerInvariantError)


class TestCleanRuns:
    @pytest.mark.parametrize("sched", ["credit", "asman", "con", "relaxed"])
    def test_lu_run_is_violation_free(self, sched):
        from repro import units
        tb = SimTestbed(scheduler=sched, seed=1, sanitize=True,
                     sched_config=SchedulerConfig(work_conserving=False))
        tb.add_domain0()
        tb.add_vm("V1", weight=64,
                  workload=NasBenchmark.by_name("LU", scale=0.02),
                  concurrent_hint=True)
        done = tb.run_until_workloads_done(
            ["V1"], deadline_cycles=units.seconds(600))
        assert done
        assert tb.sanitizer.violations == []
        assert tb.sanitizer.schedules_checked > 0
        assert tb.sanitizer.spin_waits_checked > 0

    def test_sanitizer_does_not_change_the_outcome(self):
        from repro import units
        results = []
        for sanitize in (False, True):
            tb = SimTestbed(scheduler="asman", seed=7, sanitize=sanitize)
            tb.add_domain0()
            tb.add_vm("V1", weight=64,
                      workload=NasBenchmark.by_name("LU", scale=0.02))
            tb.run_until_workloads_done(
                ["V1"], deadline_cycles=units.seconds(600))
            results.append((tb.guests["V1"].finished_at,
                            tb.sim.events_executed))
        assert results[0] == results[1]
