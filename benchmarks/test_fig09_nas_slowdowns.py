"""Figure 9: slowdowns of all seven NAS benchmarks.

(a)-(c): per-benchmark slowdown at 66.7/40/22.2% for Credit and ASMan;
(d): the average slowdown.  Paper shape: ASMan outperforms Credit "in
all aspects while varying benchmarks and the VCPU online rate"; EP (no
synchronisation) sits near the ideal 1/rate for both; LU suffers most
under Credit.
"""

from repro.experiments import figures as F
from repro.metrics.runtime import ideal_slowdown
from repro.workloads.nas import NAS_PROFILES

BENCHMARKS = list(NAS_PROFILES)  # BT CG EP FT MG SP LU


def test_fig09_all_nas_slowdowns(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: F.fig09_nas_slowdowns(scale=0.4, seeds=(1, 2)),
        rounds=1, iterations=1)
    print(save_result(result))

    names = BENCHMARKS
    idx = {n: i for i, n in enumerate(names)}

    # (d) the average slowdown: ASMan <= Credit at every reduced rate.
    avg_credit = dict(result.series["avg_credit"])
    avg_asman = dict(result.series["avg_asman"])
    for rate_label in (66.7, 40.0, 22.2):
        assert avg_asman[rate_label] <= avg_credit[rate_label] * 1.03

    # At the lowest rate: EP near ideal under Credit; LU above EP.
    low_credit = dict(result.series["credit_rate_22.2%"])
    assert low_credit[idx["EP"]] < ideal_slowdown(2 / 9) * 1.10
    assert low_credit[idx["LU"]] > low_credit[idx["EP"]]

    # Slowdowns grow with decreasing rate for every benchmark (Credit).
    for name in names:
        series = [dict(result.series[f"credit_rate_{lbl}%"])[idx[name]]
                  for lbl in ("66.7", "40", "22.2")]
        assert series == sorted(series)
