"""Figure 11: four VMs running simultaneously (work-conserving mode).

(a) two high-throughput VMs (256.bzip2, 176.gcc) + two concurrent VMs
(SP, LU); (b) four concurrent VMs (LU, LU, SP, SP).  Paper shape: both
static (CON) and dynamic (ASMan) coscheduling improve the concurrent
workloads over Credit; ASMan's dynamic policy costs the high-throughput
neighbours less than CON's always-on coscheduling.
"""

from repro.experiments import figures as F


def _by_vm(result, sched):
    return {int(x): y for x, y in result.series[sched]}


def test_fig11a_mixed_vms(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: F.fig11a(scale=0.3, seeds=(1, 2, 3)),
        rounds=1, iterations=1)
    print(save_result(result))
    credit = _by_vm(result, "credit")
    asman = _by_vm(result, "asman")
    # VMs: 0=bzip2, 1=gcc, 2=SP, 3=LU.
    # Concurrent workloads: ASMan at least as good as Credit.
    assert asman[3] <= credit[3] * 1.05
    # High-throughput degradation under ASMan bounded (paper: <8%).
    for i in (0, 1):
        assert asman[i] <= credit[i] * 1.12


def test_fig11b_all_concurrent(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: F.fig11b(scale=0.3, seeds=(1, 2, 3)),
        rounds=1, iterations=1)
    print(save_result(result))
    credit = _by_vm(result, "credit")
    asman = _by_vm(result, "asman")
    con = _by_vm(result, "con")
    # With all-concurrent VMs, total progress under coscheduling is at
    # least as good as under plain Credit.
    assert sum(asman.values()) <= sum(credit.values()) * 1.05
    assert sum(con.values()) <= sum(credit.values()) * 1.15
