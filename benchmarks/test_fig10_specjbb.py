"""Figure 10: SPECjbb2005 throughput in VM V1.

(a)-(c): bops vs warehouse count (1..8) at 66.7/40/22.2%; (d): the
SPECjbb score (mean bops over warehouses >= 4 VCPUs).  Paper shape:
throughput rises until the warehouse count reaches the VCPU count and
then flattens; ASMan's score is never below Credit's and improves at
low rates (up to ~26% in the paper).
"""

from repro.experiments import figures as F


def test_fig10_specjbb_throughput(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: F.fig10_specjbb(window_ms=1200.0, seed=1),
        rounds=1, iterations=1)
    print(save_result(result))

    for rate_label in ("66.7", "40", "22.2"):
        for sched in ("credit", "asman"):
            series = dict(result.series[f"{sched}_rate_{rate_label}%"])
            # Throughput saturates by 4 warehouses: w=8 is within noise
            # of w=4, and w=4 is no worse than w=1.
            assert series[4.0] >= series[1.0] * 0.98
            assert series[8.0] >= series[4.0] * 0.85

    score_credit = dict(result.series["score_credit"])
    score_asman = dict(result.series["score_asman"])
    for rate_label in (66.7, 40.0, 22.2):
        assert score_asman[rate_label] >= score_credit[rate_label] * 0.97
