"""Benchmark harness support.

Each benchmark runs one figure's experiment under pytest-benchmark timing
and writes the reproduced series to ``benchmarks/results/<figure>.txt`` so
the output survives pytest's capture.  EXPERIMENTS.md embeds these files'
contents as the measured side of the paper-vs-measured comparison.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Write a FigureResult's rendering to the results directory."""

    def _save(result) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = result.figure.lower().replace(" ", "").replace("figure", "fig")
        path = RESULTS_DIR / f"{name}.txt"
        text = result.render()
        path.write_text(text + "\n")
        return text

    return _save
