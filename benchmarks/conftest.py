"""Benchmark harness support.

Each benchmark runs one figure's experiment under pytest-benchmark timing
and writes the reproduced series to ``benchmarks/results/<figure>.txt`` so
the output survives pytest's capture.  EXPERIMENTS.md embeds these files'
contents as the measured side of the paper-vs-measured comparison.

The whole session shares one parallel-fabric result cache: figures that
revisit a cell another benchmark already simulated (same canonical spec)
get it for free.  Running with ``-p repro.parallel`` instead installs a
persistent cache (``.repro-cache/``) plus ``--jobs`` fan-out; this
fixture then leaves that configuration alone.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE = pathlib.Path(__file__).parent / "perf_baseline.json"


@pytest.fixture(scope="session", autouse=True)
def baseline_config_guard():
    """Refuse to benchmark under a config the baseline was not recorded in.

    Timings taken with the sanitizer attached or with fast-forward
    disabled are not comparable to the committed ``perf_baseline.json``
    (both configurations are deliberately slower while staying
    bit-identical in fingerprints).  Historically such runs compared
    silently and read as phantom regressions; now the mismatch is a
    loud session error.  Delete/regenerate the baseline, or rerun
    without ``--sanitize`` / ``REPRO_NO_FASTFORWARD``, to proceed.
    """
    import json

    from repro.perf.harness import run_config

    if not BASELINE.exists():  # nothing to be inconsistent with
        return
    meta = json.loads(BASELINE.read_text()).get("meta", {})
    stamp = meta.get("config")
    config = run_config()
    if stamp is None:
        pytest.exit(
            f"{BASELINE} has no config stamp (pre-quiescence-fast-forward "
            f"schema); regenerate it with `repro perf --quick "
            f"--update-baseline {BASELINE}`", returncode=3)
    if stamp != config:
        pytest.exit(
            f"benchmark config mismatch: {BASELINE} was recorded with "
            f"{stamp} but this session runs {config}; timings would not "
            f"be comparable (sanitize/fast-forward change wall-clock, "
            f"never fingerprints)", returncode=3)


@pytest.fixture(scope="session", autouse=True)
def fabric_cache(tmp_path_factory):
    """Share one result cache across every benchmark in the session."""
    from repro import parallel

    existing = parallel.get_default_cache()
    if existing is not None:  # -p repro.parallel already configured one
        yield existing
        return
    cache = parallel.ResultCache(tmp_path_factory.mktemp("repro-cache"))
    parallel.set_default_cache(cache)
    yield cache
    parallel.set_default_cache(None)


@pytest.fixture
def save_result():
    """Write a FigureResult's rendering to the results directory."""

    def _save(result) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = result.figure.lower().replace(" ", "").replace("figure", "fig")
        path = RESULTS_DIR / f"{name}.txt"
        text = result.render()
        path.write_text(text + "\n")
        return text

    return _save
