"""Figure 7: LU run time in VM V1 — Credit vs ASMan.

Paper shape: identical at 100%; as the online rate falls, Credit
deteriorates super-linearly while ASMan stays close to the expected
1/rate growth, saving a substantial fraction of the run time at 22.2%.
"""

from repro.experiments import figures as F


def test_fig07_lu_credit_vs_asman(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: F.fig07_lu_comparison(scale=0.6, seeds=(1, 2, 3)),
        rounds=1, iterations=1)
    print(save_result(result))
    credit = dict(result.series["credit"])
    asman = dict(result.series["asman"])
    # Same performance at 100% online rate.
    assert abs(asman[100.0] - credit[100.0]) / credit[100.0] < 0.03
    # ASMan no slower anywhere, and strictly better at the lowest rate.
    for rate in (66.7, 40.0, 22.2):
        assert asman[rate] <= credit[rate] * 1.03
    assert asman[22.2] < credit[22.2]
    assert result.notes["asman_saving_at_22.2%"] > 0.0
