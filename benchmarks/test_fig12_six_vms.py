"""Figure 12: six VMs running simultaneously (work-conserving mode).

(a) four high-throughput VMs + SP + LU; (b) two high-throughput VMs +
SP, SP, LU, LU.  Paper shape: coscheduling saves a large fraction of
the concurrent benchmarks' run time relative to Credit (up to 45% for
SP / 70% for LU in (a)), while high-throughput degradation stays below
8% for ASMan vs 18% for CON.
"""

from repro.experiments import figures as F


def _by_vm(result, sched):
    return {int(x): y for x, y in result.series[sched]}


def test_fig12a_throughput_heavy_mix(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: F.fig12a(scale=0.25, seeds=(1, 2)),
        rounds=1, iterations=1)
    print(save_result(result))
    credit = _by_vm(result, "credit")
    asman = _by_vm(result, "asman")
    # VMs: 0-3 high-throughput, 4=SP, 5=LU.
    assert asman[5] <= credit[5] * 1.05  # LU helped (or unharmed)
    for i in range(4):
        assert asman[i] <= credit[i] * 1.12  # bounded collateral cost


def test_fig12b_concurrent_heavy_mix(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: F.fig12b(scale=0.25, seeds=(1, 2)),
        rounds=1, iterations=1)
    print(save_result(result))
    credit = _by_vm(result, "credit")
    asman = _by_vm(result, "asman")
    con = _by_vm(result, "con")
    concurrent = (2, 3, 4, 5)
    # Aggregate concurrent progress: dynamic coscheduling helps.
    assert sum(asman[i] for i in concurrent) <= \
        sum(credit[i] for i in concurrent) * 1.05
    # ASMan's high-throughput penalty does not exceed CON's by much
    # (the paper's over-coscheduling argument).
    asman_tp = sum(asman[i] for i in (0, 1))
    con_tp = sum(con[i] for i in (0, 1))
    assert asman_tp <= con_tp * 1.15
