"""Ablations: which mechanisms produce the Credit pathology?

DESIGN.md section 5 names the design decisions; these benches quantify
each one's contribution by toggling it and re-running the LU @ 22.2%
single-VM scenario.  (They document *our simulator's* causal structure —
the paper performs no such decomposition.)
"""

import pytest

from repro import units
from repro.config import GuestConfig, SchedulerConfig
from repro.experiments.setup import weight_for_rate
from repro.experiments.setup import Testbed as SimTestbed
from repro.workloads.nas import NasBenchmark

RATE = 2 / 9
SCALE = 0.5
SEEDS = (1, 2, 3)


def run_lu(scheduler="credit", guest_config=None, sched_config=None,
           seed=1, scale=SCALE, rate=RATE):
    tb = SimTestbed(scheduler=scheduler, seed=seed,
                 sched_config=sched_config
                 or SchedulerConfig(work_conserving=False))
    tb.add_domain0()
    wl = NasBenchmark.by_name("LU", scale=scale)
    tb.add_vm("V1", weight=weight_for_rate(rate), workload=wl,
              guest_config=guest_config, concurrent_hint=True)
    ok = tb.run_until_workloads_done(["V1"],
                                     deadline_cycles=units.seconds(240))
    assert ok
    return (units.to_seconds(tb.guests["V1"].finished_at),
            tb.spin_stats("V1").count_above(20))


def mean_runtime(**kw):
    rts = [run_lu(seed=s, **kw)[0] for s in SEEDS]
    return sum(rts) / len(rts)


def test_ablation_accounting_mode(benchmark):
    """Sampled (Xen-faithful) vs exact credit accounting: sampling noise
    desynchronises bursty VCPUs, so exact accounting should remove part
    of the excess slowdown."""

    def run():
        sampled = mean_runtime(
            sched_config=SchedulerConfig(work_conserving=False,
                                         exact_accounting=False))
        exact = mean_runtime(
            sched_config=SchedulerConfig(work_conserving=False,
                                         exact_accounting=True))
        return sampled, exact

    sampled, exact = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation accounting: sampled={sampled:.3f}s exact={exact:.3f}s")
    # Sampling must not make things dramatically better than exact.
    assert sampled >= exact * 0.9


def test_ablation_irq_asymmetry(benchmark):
    """VCPU0's interrupt load drives the persistent park-phase drift; with
    it disabled the Credit baseline's excess slowdown should shrink."""

    def run():
        with_irq = mean_runtime(guest_config=GuestConfig())
        without = mean_runtime(
            guest_config=GuestConfig(irq_interval_cycles=0))
        return with_irq, without

    with_irq, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation irq: with={with_irq:.3f}s without={without:.3f}s")
    assert without <= with_irq * 1.02


@pytest.mark.parametrize("spin_us", [50, 400, 1600])
def test_ablation_futex_spin_budget(benchmark, spin_us):
    """The guest's spin-then-block budget: longer budgets burn more CPU
    when windows misalign but avoid sleep/wake costs when aligned."""

    def run():
        return mean_runtime(guest_config=GuestConfig(
            futex_spin_cycles=units.us(spin_us)))

    rt = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation futex_spin={spin_us}us: runtime={rt:.3f}s")
    assert rt > 0


def test_ablation_dynamic_vs_static_cosched_fraction(benchmark):
    """ASMan's central claim: its coscheduled fraction tracks the
    workload, unlike CON's permanent coscheduling."""
    from repro.asman.vcrd import VcrdTracker

    def run():
        tb = SimTestbed(scheduler="asman", seed=1,
                     sched_config=SchedulerConfig(work_conserving=False))
        tracker = VcrdTracker(tb.trace, tb.sim)
        tb.add_domain0()
        lu = NasBenchmark.by_name("LU", scale=SCALE)
        tb.add_vm("V1", weight=weight_for_rate(RATE), workload=lu,
                  concurrent_hint=True)
        tb.run_until_workloads_done(
            ["V1"], deadline_cycles=units.seconds(240))
        lu_fraction = tracker.high_fraction("V1")

        tb2 = SimTestbed(scheduler="asman", seed=1,
                      sched_config=SchedulerConfig(work_conserving=False))
        tracker2 = VcrdTracker(tb2.trace, tb2.sim)
        tb2.add_domain0()
        ep = NasBenchmark.by_name("EP", scale=SCALE)
        tb2.add_vm("V1", weight=weight_for_rate(RATE), workload=ep,
                   concurrent_hint=True)
        tb2.run_until_workloads_done(
            ["V1"], deadline_cycles=units.seconds(240))
        ep_fraction = tracker2.high_fraction("V1")
        return lu_fraction, ep_fraction

    lu_frac, ep_frac = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation cosched fraction: LU={lu_frac:.3f} EP={ep_frac:.3f} "
          f"(CON would be 1.0 for both)")
    # EP never triggers coscheduling; LU's fraction is workload-driven.
    assert ep_frac == pytest.approx(0.0, abs=1e-6)
    assert lu_frac >= ep_frac


@pytest.mark.parametrize("cooldown_ms", [2, 10, 30])
def test_ablation_gang_slot_length(benchmark, cooldown_ms):
    """Coscheduling slot (fan-out cooldown) sweep under the mixed 4-VM
    scenario: too-short slots thrash, too-long slots starve neighbours."""
    from repro.experiments.runner import run_multi_vm
    from repro.workloads.speccpu import SpecCpuRateWorkload

    def run():
        # run_multi_vm builds its own config; reproduce it here with the
        # swept cooldown.
        cfg = SchedulerConfig(work_conserving=True,
                              cosched_cooldown_cycles=units.ms(cooldown_ms))
        tb = SimTestbed(scheduler="asman", seed=1, sched_config=cfg)
        tb.add_domain0()
        lu = NasBenchmark.by_name("LU", scale=0.3, rounds=30)
        bz = SpecCpuRateWorkload.by_name("256.bzip2", scale=0.4, rounds=30)
        tb.add_vm("V1", weight=256, workload=bz)
        tb.add_vm("V2", weight=256, workload=lu, concurrent_hint=True)
        tb.start()
        ok = tb.sim.run_until_true(
            lambda: lu.rounds_completed() >= 2 and bz.rounds_completed() >= 2,
            deadline=units.seconds(240))
        assert ok
        return (bz.mean_round_cycles(2) / units.CYCLES_PER_S,
                lu.mean_round_cycles(2) / units.CYCLES_PER_S)

    bz_rt, lu_rt = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nablation gang slot {cooldown_ms}ms: "
          f"bzip2={bz_rt:.3f}s LU={lu_rt:.3f}s")
    assert bz_rt > 0 and lu_rt > 0
