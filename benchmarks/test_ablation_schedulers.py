"""Scheduler design-space bench: the four policies plus the two monitors.

Situates ASMan where the paper's related-work section does: against no
coscheduling (Credit), static strict gang scheduling (CON), VMware-style
relaxed/skew-bounded coscheduling, and — from the paper's future work —
ASMan driven by out-of-VM inference instead of the in-guest Monitoring
Module.
"""

import pytest

from repro import units
from repro.config import SchedulerConfig
from repro.experiments.setup import weight_for_rate
from repro.experiments.setup import Testbed as SimTestbed
from repro.workloads.nas import NasBenchmark

RATE = 2 / 9
SCALE = 0.6
SEEDS = (1, 2, 3)


def run_lu(scheduler, monitored=None, seed=1):
    tb = SimTestbed(scheduler=scheduler, seed=seed,
                    sched_config=SchedulerConfig(work_conserving=False))
    tb.add_domain0()
    wl = NasBenchmark.by_name("LU", scale=SCALE)
    tb.add_vm("V1", weight=weight_for_rate(RATE), workload=wl,
              monitored=monitored, concurrent_hint=True)
    ok = tb.run_until_workloads_done(["V1"],
                                     deadline_cycles=units.seconds(240))
    assert ok
    return units.to_seconds(tb.guests["V1"].finished_at)


def mean(scheduler, monitored=None):
    return sum(run_lu(scheduler, monitored, s) for s in SEEDS) / len(SEEDS)


def test_scheduler_design_space(benchmark):
    def run():
        return {
            "credit": mean("credit"),
            "con": mean("con"),
            "relaxed": mean("relaxed"),
            "asman(guest)": mean("asman", "guest"),
            "asman(external)": mean("asman", "external"),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nLU @ 22.2% online rate, mean of 3 seeds:")
    for name, rt in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"  {name:16s} {rt:.3f}s")
    # The paper's ordering claims, with tolerance for simulator noise:
    # both ASMan variants beat plain Credit...
    assert results["asman(guest)"] <= results["credit"] * 1.02
    assert results["asman(external)"] <= results["credit"] * 1.02
    # ...and no policy catastrophically regresses.
    worst = max(results.values())
    best = min(results.values())
    assert worst / best < 1.5
