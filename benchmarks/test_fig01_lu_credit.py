"""Figure 1: LU under the Credit scheduler.

(a) run time vs VCPU online rate; (b) counts of spinlock waits above
2^10 and 2^20 cycles per rate.

Paper shape: run time grows *faster than 1/rate* as the rate drops
(2800 s at 22.2% vs 400 s at 100% — slowdown 7 vs ideal 4.5), and the
fraction of long waits (> 2^20) rises steeply at reduced rates while
being absent at 100%.
"""

from repro.experiments import figures as F
from repro.metrics.runtime import ideal_slowdown


def test_fig01a_lu_runtime(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: F.fig01_lu_runtime(scale=0.6, seeds=(1, 2)),
        rounds=1, iterations=1)
    print(save_result(result))
    slowdown = dict(result.series["slowdown"])
    # Shape assertions: monotone growth, super-ideal at the lowest rate.
    values = [slowdown[x] for x in (100.0, 66.7, 40.0, 22.2)]
    assert values == sorted(values)
    assert values[-1] > ideal_slowdown(2 / 9) * 0.98


def test_fig01b_spinlock_counts(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: F.fig01_spinlock_counts(scale=0.6, seeds=(1, 2, 3)),
        rounds=1, iterations=1)
    print(save_result(result))
    over20 = dict(result.series["waits_over_2^20"])
    over10 = dict(result.series["waits_over_2^10"])
    # No long waits at 100%; some at the lowest rate.
    assert over20[100.0] == 0
    assert over20[22.2] > 0
    # Measurable (>2^10) waits exist at every rate, and — with a fixed
    # observation window — their count *decreases* with the online rate
    # (paper observation (1)), while the long-wait count increases.
    assert all(v > 0 for v in over10.values())
    assert over10[22.2] < over10[100.0]
    assert over20[22.2] > over20[66.7] or over20[66.7] == 0
