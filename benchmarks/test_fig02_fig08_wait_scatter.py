"""Figures 2 and 8: per-spinlock waiting-time detail.

Figure 2 (Credit): at 100% all waits sit in the 2^10..2^15 band; as the
online rate drops, a tail above 2^25 appears and the long waits cluster
("occur in some neighboring spinlocks").  Figure 8 (ASMan) shows the
same workload with the tail largely removed.
"""

from repro import units
from repro.asman.locality import LocalityAnalyzer
from repro.experiments import figures as F


def test_fig02_wait_details_credit(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: F.fig02_wait_details("credit", scale=0.6, seed=1),
        rounds=1, iterations=1)
    # The raw scatter is large; persist the summary notes + sizes instead.
    for key in list(result.series):
        result.notes[f"n_{key}"] = float(len(result.series[key]))
        tail = sum(1 for _, w in result.series[key] if w > 20.0)
        result.notes[f"tail_over_2^20_{key}"] = float(tail)
        del result.series[key]
    print(save_result(result))
    # At 100% the maximum wait stays in the short-contention band.
    assert result.notes["max_log2_100"] < 20.0
    # At 22.2% the tail reaches scheduling timescales (>= 2^24).
    assert result.notes["max_log2_22.2"] >= 24.0


def test_fig02_long_waits_cluster(benchmark, save_result):
    """Paper observation (4): long waits arrive in bursts (localities)."""

    def run():
        from repro.experiments.runner import run_single_vm
        from repro.workloads.nas import NasBenchmark
        times = []
        for seed in (1, 3, 5):
            r = run_single_vm(
                lambda: NasBenchmark.by_name("LU", scale=0.6),
                "credit", online_rate=2 / 9, seed=seed)
            times.append(r.over_threshold_times)
        return times

    all_times = benchmark.pedantic(run, rounds=1, iterations=1)
    analyzer = LocalityAnalyzer(split_gap=units.ms(50))
    bursts = [analyzer.burstiness(ts) for ts in all_times if ts]
    assert bursts, "need at least one run with over-threshold waits"
    # Mean events per locality above 1 => clustering exists.
    assert max(bursts) > 1.0


def test_fig08_wait_details_asman(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: F.fig08_wait_details_asman(scale=0.6, seed=1),
        rounds=1, iterations=1)
    for key in list(result.series):
        result.notes[f"n_{key}"] = float(len(result.series[key]))
        del result.series[key]
    print(save_result(result))
    assert result.notes["max_log2_100"] < 20.0


def test_fig08_asman_reduces_tail(benchmark, save_result):
    """Comparing Figs 2 and 8: ASMan avoids many over-threshold waits."""

    def run():
        from repro.experiments.runner import run_single_vm
        from repro.workloads.nas import NasBenchmark
        totals = {"credit": 0.0, "asman": 0.0}
        for sched in totals:
            for seed in (1, 3, 5):
                r = run_single_vm(
                    lambda: NasBenchmark.by_name("LU", scale=0.6),
                    sched, online_rate=2 / 9, seed=seed)
                totals[sched] += r.spin_summary["over_2^20"]
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    assert totals["credit"] > 0
    assert totals["asman"] <= totals["credit"]
