"""Co-online fraction bench: what coscheduling actually changes.

The paper argues coscheduling makes "VCPUs of the VM act like CPUs of a
physical machine".  The direct observable is the co-online fraction —
the share of a VM's any-VCPU-online time during which *all* its VCPUs
were online together.  This bench measures it for every scheduler under
the LU @ 22.2% scenario, alongside the runtime it buys.
"""

from repro import units
from repro.config import SchedulerConfig
from repro.experiments.setup import weight_for_rate
from repro.experiments.setup import Testbed as SimTestbed
from repro.metrics.timeline import TimelineCollector
from repro.workloads.nas import NasBenchmark

RATE = 2 / 9
SCALE = 0.5


def run(scheduler, seed=1, monitored=None):
    tb = SimTestbed(scheduler=scheduler, seed=seed,
                    sched_config=SchedulerConfig(work_conserving=False))
    timeline = TimelineCollector(tb.trace, tb.sim)
    tb.add_domain0()
    wl = NasBenchmark.by_name("LU", scale=SCALE)
    tb.add_vm("V1", weight=weight_for_rate(RATE), workload=wl,
              monitored=monitored, concurrent_hint=True)
    ok = tb.run_until_workloads_done(["V1"],
                                     deadline_cycles=units.seconds(240))
    assert ok
    timeline.close()
    return (units.to_seconds(tb.guests["V1"].finished_at),
            timeline.co_online_fraction("V1", parties=4))


def test_co_online_fraction_by_scheduler(benchmark):
    def measure():
        out = {}
        for sched in ("credit", "con", "asman"):
            rts, fracs = [], []
            for seed in (1, 2):
                rt, frac = run(sched, seed)
                rts.append(rt)
                fracs.append(frac)
            out[sched] = (sum(rts) / len(rts), sum(fracs) / len(fracs))
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nLU @ 22.2%: scheduler -> (runtime_s, co-online fraction)")
    for sched, (rt, frac) in results.items():
        print(f"  {sched:7s} rt={rt:.3f}s  co-online={frac:.3f}")
    # The gang scheduler keeps the gang together far more than Credit.
    assert results["con"][1] > results["credit"][1] + 0.1
    # ASMan sits between Credit and CON: it coschedules on demand.
    assert results["credit"][1] <= results["asman"][1] + 0.05
    assert results["asman"][1] <= results["con"][1] + 0.05
