"""Testbed calibration bench: the preconditions for every other bench.

Validates (and times) the probes that EXPERIMENTS.md's numbers rest on:
Equation (1) weight shares, Equation (2) online rates, comparable base
runtimes, and cycle-exact determinism.
"""

from repro.experiments.calibration import calibrate


def test_calibration_suite(benchmark):
    report = benchmark.pedantic(lambda: calibrate(full=True),
                                rounds=1, iterations=1)
    print("\n" + report.render())
    assert report.ok, "calibration failures:\n" + "\n".join(
        f"{p.name}: expected {p.expected}, measured {p.measured}"
        for p in report.failures())
