#!/usr/bin/env python
"""Modelling your own application and watching ASMan learn.

Builds a custom bursty workload with :class:`SyntheticWorkload` — compute
phases alternating with intense spinlock/barrier phases — runs it at a
low online rate under ASMan, and prints the Monitoring Module's view:
the over-threshold detections, the Roth–Erev learner's evolving duration
estimates, and the fraction of time the VM spent coscheduled.

Usage::

    python examples/custom_workload.py
"""

from repro import units
from repro.asman.vcrd import VcrdTracker
from repro.config import SchedulerConfig
from repro.experiments import Testbed, weight_for_rate
from repro.metrics.report import Table
from repro.workloads import PhaseSpec, SyntheticWorkload

RATE = 2 / 9


def build_workload() -> SyntheticWorkload:
    """Alternating quiet and synchronisation-heavy phases."""
    phases = []
    for _ in range(6):
        # A quiet, embarrassingly parallel stretch...
        phases.append(PhaseSpec(compute=units.ms(40), repeats=4,
                                jitter_cv=0.1))
        # ...then a burst of fine-grained locking and barriers.
        phases.append(PhaseSpec(compute=units.us(150), repeats=200,
                                sync="critical", critical_hold=30_000,
                                jitter_cv=0.2))
        phases.append(PhaseSpec(compute=units.us(300), repeats=20,
                                sync="barrier", jitter_cv=0.2))
    return SyntheticWorkload("bursty", threads=4, phases=phases, locks=4)


def main() -> None:
    print(f"Custom bursty workload at {RATE:.1%} online rate under ASMan\n")
    tb = Testbed(scheduler="asman", seed=1,
                 sched_config=SchedulerConfig(work_conserving=False))
    tracker = VcrdTracker(tb.trace, tb.sim)
    tb.add_domain0()
    tb.add_vm("V1", weight=weight_for_rate(RATE), workload=build_workload())
    ok = tb.run_until_workloads_done(["V1"],
                                     deadline_cycles=units.seconds(240))
    assert ok, "workload did not finish"

    monitor = tb.monitors["V1"]
    stats = monitor.stats()
    print(f"runtime: {units.to_seconds(tb.guests['V1'].finished_at):.2f} s "
          f"(measured online rate "
          f"{tb.measured_online_rate('V1'):.3f})\n")

    print("Monitoring Module:")
    for key, value in stats.items():
        print(f"  {key:24s} {value}")
    print(f"  coscheduled fraction     {tracker.high_fraction('V1'):.3f}")

    if monitor.estimates:
        table = Table(["time_s", "estimated_lasting_ms"],
                      title="\nVCRD adjusting events (the learner's "
                            "estimates)")
        for t, est in monitor.estimates:
            table.add_row(units.to_seconds(t), units.to_ms(est))
        print(table)
    else:
        print("\nNo over-threshold spinlocks occurred — at this scale the "
              "run was too aligned;\ntry a lower rate or more repeats.")

    spin = tb.spin_stats("V1")
    print(f"\nspinlock waits recorded: {len(spin)}, "
          f">2^20: {spin.count_above(20)}, "
          f"max log2(wait): {spin.summary()['max_log2']:.1f}")


if __name__ == "__main__":
    main()
