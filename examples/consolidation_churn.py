#!/usr/bin/env python
"""Consolidation churn: VMs come and go while a parallel guest runs.

A long-running LU guest shares the host with transient throughput VMs
that are hot-plugged and destroyed every few hundred milliseconds — the
cloud reality behind the paper's motivation.  The example reports the
LU guest's progress per phase and shows that ASMan keeps reacting as the
contention level changes.

Usage::

    python examples/consolidation_churn.py
"""

from repro import units
from repro.asman.vcrd import VcrdTracker
from repro.config import SchedulerConfig
from repro.experiments import Testbed
from repro.metrics.report import Table
from repro.workloads import NasBenchmark, SpecCpuRateWorkload

PHASE_MS = 400.0


def run(scheduler: str):
    tb = Testbed(scheduler=scheduler, num_pcpus=4, seed=1,
                 sched_config=SchedulerConfig(work_conserving=True))
    tracker = VcrdTracker(tb.trace, tb.sim)
    lu = NasBenchmark.by_name("LU", scale=2.0)
    tb.add_vm("parallel", num_vcpus=4, workload=lu, concurrent_hint=True)
    tb.start()

    progress = []
    tenants = 0
    for phase in range(6):
        crowded = phase % 2 == 1
        if crowded:
            tenants += 1
            tb.add_vm(f"tenant{tenants}", num_vcpus=4,
                      workload=SpecCpuRateWorkload.by_name(
                          "256.bzip2", scale=5.0))
        before = sum(t.compute_cycles_done
                     for t in tb.guests["parallel"].tasks)
        tb.run_for(units.ms(PHASE_MS))
        after = sum(t.compute_cycles_done
                    for t in tb.guests["parallel"].tasks)
        progress.append(("crowded" if crowded else "alone",
                         units.to_ms(after - before)))
        if crowded:
            tb.remove_vm(f"tenant{tenants}")
    return progress, tracker.high_fraction("parallel")


def main() -> None:
    print("LU guest under tenant churn (4 PCPUs, work-conserving)\n")
    for scheduler in ("credit", "asman"):
        progress, high = run(scheduler)
        table = Table(["phase", "contention", "lu_compute_ms"],
                      title=f"{scheduler} (VCRD-high fraction "
                            f"{high:.2f})")
        for i, (label, ms_done) in enumerate(progress):
            table.add_row(i, label, ms_done)
        print(table)
        print()
    print("Alone, the guest gets the whole machine; crowded phases halve "
          "its progress (fair\nsharing) — the schedulers differ in how "
          "much of the crowded phases' progress\nsurvives the "
          "synchronisation tax.")


if __name__ == "__main__":
    main()
