#!/usr/bin/env python
"""Cloud consolidation: the paper's Amazon EC2 motivation (Section 5.2).

"When a VM with 1 EC2 Compute Unit ... has to be created for users on a
physical server with current mainstream CPUs, the VCPU online rate may be
about 30%."  This example sweeps the online rate a cloud operator might
sell (100% .. 22.2%) and reports what happens to a parallel workload
(LU) versus a throughput workload (bzip2 copies) under both schedulers.

Usage::

    python examples/cloud_consolidation.py
"""

from repro import units
from repro.experiments import PAPER_RATES, run_single_vm
from repro.metrics.report import Table
from repro.metrics.runtime import ideal_slowdown
from repro.workloads import NasBenchmark, SpecCpuRateWorkload

SCALE = 0.4


def sweep(name, factory):
    print(f"--- {name}")
    base = run_single_vm(factory, scheduler="credit",
                         online_rate=1.0, seed=1)
    table = Table(["online_rate_%", "ideal", "credit_sd", "asman_sd",
                   "credit_waits>2^20"])
    for rate in PAPER_RATES:
        row = [round(rate * 100, 1), ideal_slowdown(rate)]
        waits = 0.0
        for sched in ("credit", "asman"):
            r = run_single_vm(factory, scheduler=sched,
                              online_rate=rate, seed=1)
            row.append(r.runtime_seconds / base.runtime_seconds)
            if sched == "credit":
                waits = r.spin_summary["over_2^20"]
        row.append(int(waits))
        table.add_row(*row)
    print(table)
    print()


def main() -> None:
    print("Consolidation sweep: what a tenant's workload experiences at "
          "each sold CPU fraction\n")
    sweep("LU (tightly synchronised parallel app)",
          lambda: NasBenchmark.by_name("LU", scale=SCALE))
    sweep("256.bzip2 x4 (independent throughput copies)",
          lambda: SpecCpuRateWorkload.by_name("256.bzip2", scale=SCALE))
    print("Reading: the throughput workload pays only the fair-share cost "
          "(sd == ideal) at every\nrate and under both schedulers.  The "
          "parallel workload pays extra under Credit — the\nspinlock "
          "synchronisation tax — which ASMan largely removes.")


if __name__ == "__main__":
    main()
