#!/usr/bin/env python
"""Quickstart: reproduce the paper's headline effect in one minute.

Runs the LU benchmark (the paper's running example) in a 4-VCPU VM whose
VCPU online rate is capped at 40%, under both the Xen Credit scheduler
and ASMan, and prints run times plus the spinlock wait statistics the
Monitoring Module sees.

Usage::

    python examples/quickstart.py
"""

from repro.experiments import run_single_vm
from repro.metrics.report import Table
from repro.metrics.runtime import ideal_slowdown
from repro.workloads import NasBenchmark

ONLINE_RATE = 0.4
SCALE = 0.5  # fraction of the class-A-like iteration count


def main() -> None:
    print(f"LU on a 4-VCPU VM at {ONLINE_RATE:.0%} VCPU online rate")
    print(f"(simulated Xen on 8 PCPUs; ideal slowdown at this rate is "
          f"{ideal_slowdown(ONLINE_RATE):.2f}x)\n")

    base = run_single_vm(lambda: NasBenchmark.by_name("LU", scale=SCALE),
                         scheduler="credit", online_rate=1.0, seed=1)

    table = Table(["scheduler", "runtime_s", "slowdown",
                   "waits>2^10", "waits>2^20"],
                  title="Credit vs ASMan")
    for sched in ("credit", "asman"):
        r = run_single_vm(lambda: NasBenchmark.by_name("LU", scale=SCALE),
                          scheduler=sched, online_rate=ONLINE_RATE, seed=1)
        table.add_row(sched, r.runtime_seconds,
                      r.runtime_seconds / base.runtime_seconds,
                      int(r.spin_summary["over_2^10"]),
                      int(r.spin_summary["over_2^20"]))
        if r.monitor_stats:
            print(f"[{sched}] Monitoring Module: "
                  f"{r.monitor_stats['adjusting_events']} VCRD adjusting "
                  f"events, {r.monitor_stats['hypercalls']} hypercalls")
    print()
    print(table)
    print("\nThe Credit row shows the virtualization-induced slowdown "
          "beyond the fair-share ideal;\nASMan recovers it by "
          "coscheduling the VCPUs exactly while the guest synchronises.")


if __name__ == "__main__":
    main()
