#!/usr/bin/env python
"""Adaptive (ASMan) vs static (CON) coscheduling on a consolidated host.

Reproduces the structure of the paper's Figure 11(a): four VMs — two
high-throughput (bzip2, gcc) and two concurrent (SP, LU) — run together
in work-conserving mode under all three schedulers.  The point the paper
makes: both coschedulers help the concurrent VMs, but the *static* one
keeps coscheduling during asynchronous phases and taxes the
high-throughput neighbours, while ASMan's VCRD-driven windows don't.

Usage::

    python examples/adaptive_vs_static.py
"""

from repro.experiments import run_multi_vm
from repro.metrics.report import Table
from repro.workloads import NasBenchmark, SpecCpuRateWorkload

SCALE = 0.3
SEEDS = (1, 2)


def assignments():
    return [
        ("V1", lambda: SpecCpuRateWorkload.by_name(
            "256.bzip2", scale=SCALE, rounds=40), False),
        ("V2", lambda: SpecCpuRateWorkload.by_name(
            "176.gcc", scale=SCALE, rounds=40), False),
        ("V3", lambda: NasBenchmark.by_name(
            "SP", scale=SCALE, rounds=40), True),
        ("V4", lambda: NasBenchmark.by_name(
            "LU", scale=SCALE, rounds=40), True),
    ]


def main() -> None:
    print("Four VMs, 8 PCPUs, work-conserving mode (Figure 11a scenario)\n")
    results = {}
    fairness = {}
    for sched in ("credit", "asman", "con"):
        acc = {}
        jain = 0.0
        for seed in SEEDS:
            r = run_multi_vm(assignments(), scheduler=sched,
                             measure_rounds=2, seed=seed)
            for vm, t in r.round_seconds.items():
                acc[vm] = acc.get(vm, 0.0) + t / len(SEEDS)
            jain += r.fairness_jains / len(SEEDS)
        results[sched] = acc
        fairness[sched] = jain

    table = Table(["vm", "workload", "credit_s", "asman_s", "con_s"],
                  title="mean round time per VM (lower is better)")
    labels = {"V1": "256.bzip2", "V2": "176.gcc", "V3": "SP", "V4": "LU"}
    for vm in ("V1", "V2", "V3", "V4"):
        table.add_row(vm, labels[vm], results["credit"][vm],
                      results["asman"][vm], results["con"][vm])
    print(table)
    print("\nJain's fairness index (CPU share vs weight entitlement):")
    for sched, j in fairness.items():
        print(f"  {sched:7s} {j:.4f}")
    print("\nAll three schedulers preserve proportional-share fairness; "
          "they differ in how much\nuseful work each VM extracts from "
          "its share.")


if __name__ == "__main__":
    main()
