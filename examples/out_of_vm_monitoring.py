#!/usr/bin/env python
"""Out-of-VM VCRD monitoring — running the paper's future work.

Section 5.4 of the paper: "It is still an open issue to monitor the VCRD
of a VM from outside the VM.  However, the VMM may find hints from
running statuses of CPUs."  This example runs LU at a 22.2% online rate
three ways — unmonitored ASMan, the paper's in-guest Monitoring Module,
and the out-of-VM inference monitor — and compares run time, detection
activity, and the number of long spinlock waits each leaves behind.

Usage::

    python examples/out_of_vm_monitoring.py
"""

from repro import units
from repro.config import SchedulerConfig
from repro.experiments import Testbed, weight_for_rate
from repro.metrics.report import Table
from repro.workloads import NasBenchmark

RATE = 2 / 9
SCALE = 0.6


def run(monitored):
    tb = Testbed(scheduler="asman", seed=1,
                 sched_config=SchedulerConfig(work_conserving=False))
    tb.add_domain0()
    wl = NasBenchmark.by_name("LU", scale=SCALE)
    tb.add_vm("V1", weight=weight_for_rate(RATE), workload=wl,
              monitored=monitored)
    ok = tb.run_until_workloads_done(["V1"],
                                     deadline_cycles=units.seconds(240))
    assert ok
    runtime = units.to_seconds(tb.guests["V1"].finished_at)
    waits = tb.spin_stats("V1").count_above(20)
    if monitored in (True, "guest"):
        detections = tb.monitors["V1"].adjusting_events
    elif monitored == "external":
        detections = tb.external_monitors["V1"].raises
    else:
        detections = 0
    return runtime, waits, detections


def main() -> None:
    print(f"LU at {RATE:.1%} VCPU online rate under the Adaptive "
          f"Scheduler, three detector options\n")
    table = Table(["detector", "guest modified?", "runtime_s",
                   "waits>2^20", "detections"])
    rows = [
        ("none", "no", False),
        ("in-guest Monitoring Module", "yes", "guest"),
        ("out-of-VM inference", "no", "external"),
    ]
    for label, modified, monitored in rows:
        rt, waits, det = run(monitored)
        table.add_row(label, modified, rt, int(waits), det)
    print(table)
    print(
        "\nThe in-guest module reacts to individual over-threshold "
        "spinlocks (precise, but\nneeds a kernel patch); the out-of-VM "
        "monitor infers synchronisation from VCPU\nsleep/wake churn and "
        "progress skew — no guest modification, window-granular\n"
        "reaction.  Both recover most of the unmonitored baseline's "
        "loss.")


if __name__ == "__main__":
    main()
