"""Declarative fault specifications.

A :class:`FaultSpec` describes *what* can go wrong in one simulated run —
hypercall loss/delay/duplication, IPI drops and latency jitter, Monitoring
Module misreporting, degraded PCPUs — as a plain frozen dataclass, for the
same reasons :class:`~repro.parallel.cells.CellSpec` is one:

* it **pickles**, so faulted cells cross the process-pool boundary;
* it **canonicalises** (plain fields only), so the parallel fabric's merge
  keys and the content-addressed cache key faulted and fault-free runs
  differently;
* it is **inert**: the spec carries no state.  All randomness lives in the
  :class:`~repro.faults.injector.FaultInjector` built from it, which draws
  from dedicated named :class:`~repro.sim.rng.RngStreams` — the fault
  schedule is a pure function of (spec, testbed seed) and perturbs no
  other stream.

The default-constructed spec is a no-op: :meth:`is_noop` is True and the
testbed then builds *no* injector at all, so every hook stays a single
``is None`` attribute test and fault-free runs are bit-identical to a
build without this module.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Tuple, Union

from repro.errors import ConfigurationError

__all__ = ["FaultSpec", "MONITOR_MODES"]

#: Monitoring Module misreporting modes.
#:
#: ``ok``         — faithful reports (the default);
#: ``stuck_high`` — every report is HIGH, and HIGH is forced shortly after
#:                  attach: the VMM coschedules forever;
#: ``stuck_low``  — every report is LOW: the VMM never learns about
#:                  over-threshold spinlocks and ASMan degrades to plain
#:                  credit scheduling.
MONITOR_MODES: Tuple[str, ...] = ("ok", "stuck_high", "stuck_low")

#: Fields holding probabilities in [0, 1].
_PROBABILITY_FIELDS = ("hypercall_loss", "hypercall_delay",
                      "hypercall_duplication", "ipi_drop")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault scenario.  All defaults are no-ops."""

    #: Salt folded into the fault stream names, so two injectors in the
    #: same testbed seed draw independent schedules.
    seed: int = 0
    #: Probability a hypercall is dropped (handler never runs; the guest
    #: sees a failure status it does not check — exactly Xen's silent
    #: -EFAULT path).
    hypercall_loss: float = 0.0
    #: Probability a hypercall's effect is deferred by a uniform draw in
    #: [1, hypercall_delay_cycles]; the guest sees immediate success.
    hypercall_delay: float = 0.0
    hypercall_delay_cycles: int = 0
    #: Probability a hypercall's handler is applied twice (retry storms).
    hypercall_duplication: float = 0.0
    #: Probability an IPI is silently dropped.
    ipi_drop: float = 0.0
    #: Extra per-IPI delivery latency, uniform in [0, ipi_jitter_cycles].
    ipi_jitter_cycles: int = 0
    #: Monitoring Module misreporting mode (see :data:`MONITOR_MODES`).
    monitor_mode: str = "ok"
    #: Mean cycles between spurious VCRD flips injected behind the
    #: monitor's back (0 = off); gaps are exponential, floored at 1.
    monitor_flip_period: int = 0
    #: Delay applied to every VCRD adjusting-event report (0 = off).
    monitor_delay_cycles: int = 0
    #: PCPUs running slow, and their speed in (0, 1] (1.0 = healthy).
    #: A degraded PCPU accomplishes ``degraded_speed`` work per cycle, so
    #: running there burns credit 1/speed times faster.
    degraded_pcpus: Tuple[int, ...] = ()
    degraded_speed: float = 1.0

    def __post_init__(self) -> None:
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1], got {value!r}")
        if self.hypercall_delay > 0 and self.hypercall_delay_cycles < 1:
            raise ConfigurationError(
                "hypercall_delay needs hypercall_delay_cycles >= 1")
        for name in ("hypercall_delay_cycles", "ipi_jitter_cycles",
                     "monitor_flip_period", "monitor_delay_cycles"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.monitor_mode not in MONITOR_MODES:
            raise ConfigurationError(
                f"monitor_mode must be one of {MONITOR_MODES}, "
                f"got {self.monitor_mode!r}")
        if not 0.0 < self.degraded_speed <= 1.0:
            raise ConfigurationError(
                f"degraded_speed must be in (0, 1], got {self.degraded_speed!r}")
        if self.degraded_pcpus and self.degraded_speed == 1.0:
            raise ConfigurationError(
                "degraded_pcpus without degraded_speed < 1.0 is a no-op; "
                "set degraded_speed")
        for pid in self.degraded_pcpus:
            if pid < 0:
                raise ConfigurationError(f"bad PCPU id {pid!r}")

    # ------------------------------------------------------------------ #
    def is_noop(self) -> bool:
        """True iff this spec injects nothing (the testbed then builds no
        injector and the run is bit-identical to a fault-free one)."""
        return (self.hypercall_loss == 0.0
                and self.hypercall_delay == 0.0
                and self.hypercall_duplication == 0.0
                and self.ipi_drop == 0.0
                and self.ipi_jitter_cycles == 0
                and self.monitor_mode == "ok"
                and self.monitor_flip_period == 0
                and self.monitor_delay_cycles == 0
                and not self.degraded_pcpus)

    def describe(self) -> str:
        """Compact ``key=value`` rendering of the non-default fields."""
        parts = []
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value != f.default and f.name != "seed":
                if f.name == "degraded_pcpus":
                    value = "+".join(str(p) for p in value)
                parts.append(f"{f.name}={value}")
        return ",".join(parts) if parts else "none"

    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Build a spec from the CLI's ``key=value,key=value`` syntax.

        Values are coerced by field type; ``degraded_pcpus`` takes a
        ``+``-separated id list (``degraded_pcpus=0+3``).  An empty string
        or ``none`` yields the no-op spec.
        """
        text = text.strip()
        if not text or text == "none":
            return cls()
        by_name = {f.name: f for f in dataclasses.fields(cls)}
        kwargs: Dict[str, Union[int, float, str, Tuple[int, ...]]] = {}
        for item in text.split(","):
            if "=" not in item:
                raise ConfigurationError(
                    f"bad fault item {item!r}; expected key=value")
            key, _, raw = item.partition("=")
            key = key.strip()
            raw = raw.strip()
            field = by_name.get(key)
            if field is None:
                raise ConfigurationError(
                    f"unknown fault field {key!r}; choose from "
                    f"{sorted(by_name)}")
            if key in kwargs:
                raise ConfigurationError(
                    f"duplicate fault field {key!r}; each key may appear "
                    f"at most once")
            try:
                if key == "degraded_pcpus":
                    kwargs[key] = tuple(
                        int(p) for p in raw.split("+") if p != "")
                elif key == "monitor_mode":
                    kwargs[key] = raw
                elif field.type in ("int", int):
                    kwargs[key] = int(raw)
                else:
                    kwargs[key] = float(raw)
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad value for fault field {key!r}: {raw!r}") from exc
        return cls(**kwargs)  # type: ignore[arg-type]
