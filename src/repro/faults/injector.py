"""The fault-injection engine.

A :class:`FaultInjector` is built once per testbed from a non-no-op
:class:`~repro.faults.spec.FaultSpec` and threaded through the layers it
perturbs:

* :meth:`hypercall` wraps every :meth:`repro.vmm.hypercall.HypercallTable.
  call` dispatch (loss / duplication / delay);
* :meth:`ipi_delivery` filters every :meth:`repro.hardware.ipi.IPIFabric.
  send` (drop / latency jitter);
* :meth:`monitor_report` / :meth:`monitor_report_delay` rewrite the
  Monitoring Module's VCRD reports (stuck-HIGH, stuck-LOW, delayed
  adjusting events), and :meth:`attach_monitor` arms the spurious-flip
  schedule and the stuck-HIGH forcing event;
* :meth:`apply_machine` marks degraded PCPUs (the scheduler charges
  credit at ``1/speed`` on them — a capacity-loss model, not an
  instruction-level slowdown).

Determinism: every stochastic decision draws from a named
:class:`~repro.sim.rng.RngStreams` stream (``faults/<seed>/<site>``), so
the fault schedule is a pure function of (spec, testbed seed) and adding
or removing fault classes never perturbs workload or learner draws.
The injector is sim-side code and obeys the same simlint rules as the
scheduler: no wall clock, integer cycles only, no unordered iteration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.faults.spec import FaultSpec
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.tracing import TraceBus
from repro.vmm.vm import VCRD

if TYPE_CHECKING:  # pragma: no cover
    from repro.asman.monitor import MonitoringModule
    from repro.hardware.machine import Machine
    from repro.vmm.hypercall import HypercallTable

__all__ = ["FaultInjector"]


class FaultInjector:
    """Deterministic, seeded fault schedule for one simulated system."""

    def __init__(self, spec: FaultSpec, sim: Simulator, trace: TraceBus,
                 streams: RngStreams) -> None:
        self.spec = spec
        self.sim = sim
        self.trace = trace
        self._streams = streams
        self._rng_cache: Dict[str, np.random.Generator] = {}
        #: Observability counters, reported by the robustness experiment.
        self.hypercalls_lost = 0
        self.hypercalls_delayed = 0
        self.hypercalls_duplicated = 0
        self.ipis_dropped = 0
        self.ipis_jittered = 0
        self.vcrd_flips_injected = 0
        self.reports_rewritten = 0
        self.reports_delayed = 0

    def _rng(self, site: str) -> np.random.Generator:
        gen = self._rng_cache.get(site)
        if gen is None:
            gen = self._streams.get(f"faults/{self.spec.seed}/{site}")
            self._rng_cache[site] = gen
        return gen

    # ------------------------------------------------------------------ #
    # Hypercall faults (hooked from HypercallTable.call)
    # ------------------------------------------------------------------ #
    def hypercall(self, table: "HypercallTable", number: int,
                  handler: Callable[..., int],
                  args: Tuple[Any, ...]) -> int:
        """Dispatch one hypercall through the fault model."""
        s = self.spec
        rng = self._rng("hypercall")
        if s.hypercall_loss and rng.random() < s.hypercall_loss:
            self.hypercalls_lost += 1
            self.trace.emit(self.sim.now, "fault.hypercall",
                            number=number, effect="lost")
            return -1  # the guest's call site does not check the status
        if s.hypercall_duplication and rng.random() < s.hypercall_duplication:
            self.hypercalls_duplicated += 1
            self.trace.emit(self.sim.now, "fault.hypercall",
                            number=number, effect="duplicated")
            handler(*args)
            return handler(*args)
        if s.hypercall_delay and rng.random() < s.hypercall_delay:
            self.hypercalls_delayed += 1
            delay = 1 + int(rng.integers(0, s.hypercall_delay_cycles))
            self.trace.emit(self.sim.now, "fault.hypercall",
                            number=number, effect="delayed", delay=delay)
            self.sim.after(delay, lambda: handler(*args),
                           label=f"fault-hypercall-delay:{number}")
            return 0  # the guest sees immediate success
        return handler(*args)

    # ------------------------------------------------------------------ #
    # IPI faults (hooked from IPIFabric.send)
    # ------------------------------------------------------------------ #
    def ipi_delivery(self, source: int, target: int,
                     latency: int) -> Optional[int]:
        """Delivery latency for one IPI, or None if it is dropped."""
        s = self.spec
        rng = self._rng("ipi")
        if s.ipi_drop and rng.random() < s.ipi_drop:
            self.ipis_dropped += 1
            self.trace.emit(self.sim.now, "fault.ipi",
                            source=source, target=target, effect="dropped")
            return None
        if s.ipi_jitter_cycles:
            extra = int(rng.integers(0, s.ipi_jitter_cycles + 1))
            if extra:
                self.ipis_jittered += 1
                latency += extra
        return latency

    # ------------------------------------------------------------------ #
    # Monitoring Module faults
    # ------------------------------------------------------------------ #
    def monitor_report(self, value: VCRD) -> VCRD:
        """Possibly rewrite one VCRD report (stuck-HIGH / stuck-LOW)."""
        mode = self.spec.monitor_mode
        if mode == "stuck_high" and value is not VCRD.HIGH:
            self.reports_rewritten += 1
            return VCRD.HIGH
        if mode == "stuck_low" and value is not VCRD.LOW:
            self.reports_rewritten += 1
            return VCRD.LOW
        return value

    def monitor_report_delay(self) -> int:
        """Extra cycles every adjusting-event report is deferred by."""
        delay = self.spec.monitor_delay_cycles
        if delay:
            self.reports_delayed += 1
        return delay

    def attach_monitor(self, monitor: "MonitoringModule") -> None:
        """Arm the per-VM fault machinery (stuck-HIGH forcing, spurious
        flips).  Called by the testbed when a Monitoring Module attaches."""
        if self.spec.monitor_mode == "stuck_high":
            # Force HIGH shortly after boot even if the guest never spins:
            # a stuck sensor does not wait for real evidence.
            self.sim.after(1, lambda: monitor._emit_vcrd(VCRD.HIGH),
                           label=f"fault-vcrd-stuck-high:{monitor.vm.name}")
        if self.spec.monitor_flip_period > 0:
            self._arm_flip(monitor)

    def _arm_flip(self, monitor: "MonitoringModule") -> None:
        rng = self._rng(f"monitor-flip/{monitor.vm.name}")
        gap = 1 + int(rng.exponential(self.spec.monitor_flip_period))
        self.sim.after(gap, lambda: self._flip(monitor),
                       label=f"fault-vcrd-flip:{monitor.vm.name}")

    def _flip(self, monitor: "MonitoringModule") -> None:
        vm = monitor.vm
        value = VCRD.LOW if vm.vcrd is VCRD.HIGH else VCRD.HIGH
        self.vcrd_flips_injected += 1
        self.trace.emit(self.sim.now, "fault.vcrd_flip",
                        vm=vm.name, vcrd=value.value)
        # The flip goes through the real hypercall path (and therefore
        # through the hypercall fault model too — faults compose).
        monitor.hypercalls.do_vcrd_op(vm, value)
        self._arm_flip(monitor)

    # ------------------------------------------------------------------ #
    # Degraded PCPUs
    # ------------------------------------------------------------------ #
    def apply_machine(self, machine: "Machine") -> None:
        """Mark the spec's degraded PCPUs on the machine."""
        for pid in self.spec.degraded_pcpus:
            machine.degrade(pid, self.spec.degraded_speed)

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Injection counters for the robustness reports."""
        return {
            "hypercalls_lost": self.hypercalls_lost,
            "hypercalls_delayed": self.hypercalls_delayed,
            "hypercalls_duplicated": self.hypercalls_duplicated,
            "ipis_dropped": self.ipis_dropped,
            "ipis_jittered": self.ipis_jittered,
            "vcrd_flips_injected": self.vcrd_flips_injected,
            "reports_rewritten": self.reports_rewritten,
            "reports_delayed": self.reports_delayed,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FaultInjector {self.spec.describe()}>"
