"""repro.faults — deterministic, seeded fault injection.

The paper's whole premise is behaviour under adversity (lock-holder
preemption *is* the VMM failing the guest's timing assumptions), yet the
happy path exercises none of the ways the adaptive loop's inputs can rot:
hypercalls always arrive, IPIs never drop, the Monitoring Module never
lies, every PCPU runs at full speed.  This package injects exactly those
faults, deterministically:

* :class:`FaultSpec` — a declarative, picklable, canonicalisable fault
  scenario, composable with :class:`~repro.parallel.cells.CellSpec` (the
  parallel fabric and the result cache key faulted runs correctly);
* :class:`FaultInjector` — the seeded engine a testbed builds from a
  spec and threads through the hypercall table, the IPI fabric, the
  Monitoring Module and the machine.

Faults off (``FaultSpec()`` or no spec at all) is guaranteed bit-identical
to a build without this package: no injector is constructed and every
hook is a single ``is None`` attribute test.  See ``docs/robustness.md``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.spec import MONITOR_MODES, FaultSpec

__all__ = ["FaultInjector", "FaultSpec", "MONITOR_MODES"]
