"""Simulated physical hardware: PCPUs, topology, IPI fabric, timers."""

from repro.hardware.machine import Machine, PCPU
from repro.hardware.topology import Topology
from repro.hardware.ipi import IPIFabric

__all__ = ["Machine", "PCPU", "Topology", "IPIFabric"]
