"""The physical machine: PCPUs and their occupancy accounting.

A :class:`PCPU` is deliberately dumb: it knows which VCPU currently occupies
it and keeps busy/idle cycle accounting.  *What* runs on it is decided by
the VMM scheduler (:mod:`repro.vmm`); the PCPU only exposes the mechanics
(`occupy` / `vacate`) plus utilisation counters that the fairness metrics
read.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.config import MachineConfig
from repro.errors import ConfigurationError, SchedulerInvariantError
from repro.hardware.topology import Topology
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.vmm.vm import VCPU


class PCPU:
    """One physical CPU.

    Attributes
    ----------
    current:
        The VCPU occupying this PCPU, or None when idle.
    busy_cycles / idle_cycles:
        Total occupancy accounting, updated lazily on every transition.
    """

    __slots__ = ("id", "socket", "_sim", "current", "busy_cycles",
                 "idle_cycles", "_last_transition", "switches",
                 "speed_factor")

    def __init__(self, pcpu_id: int, socket: int, sim: Simulator) -> None:
        self.id = pcpu_id
        self.socket = socket
        self._sim = sim
        self.current: Optional["VCPU"] = None
        self.busy_cycles = 0
        self.idle_cycles = 0
        self._last_transition = sim.now
        self.switches = 0
        #: Relative speed in (0, 1]; < 1.0 marks a degraded PCPU (set by
        #: the fault fabric, repro.faults).  A slow PCPU accomplishes
        #: ``speed_factor`` of the work per cycle, so the scheduler
        #: charges credit at 1/speed_factor on it — a capacity-loss
        #: model that keeps cycle accounting exact.
        self.speed_factor: float = 1.0

    # ------------------------------------------------------------------ #
    def _account(self) -> None:
        elapsed = self._sim.now - self._last_transition
        if elapsed:
            if self.current is None:
                self.idle_cycles += elapsed
            else:
                self.busy_cycles += elapsed
            self._last_transition = self._sim.now

    def occupy(self, vcpu: "VCPU") -> None:
        """Install ``vcpu`` as the running VCPU.  The PCPU must be vacant."""
        if self.current is not None:
            raise SchedulerInvariantError(
                f"PCPU {self.id} already runs {self.current!r}")
        self._account()
        self.current = vcpu
        self.switches += 1

    def vacate(self) -> Optional["VCPU"]:
        """Remove and return the running VCPU (None if already idle)."""
        self._account()
        vcpu, self.current = self.current, None
        return vcpu

    @property
    def is_idle(self) -> bool:
        return self.current is None

    def utilization(self) -> float:
        """Fraction of elapsed time this PCPU was busy (0 if no time passed)."""
        self._account()
        total = self.busy_cycles + self.idle_cycles
        return self.busy_cycles / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        running = getattr(self.current, "name", None)
        return f"<PCPU {self.id} running={running}>"


class Machine:
    """The simulated physical computer: a set of homogeneous PCPUs.

    In the paper's notation this is P = {P0, ..., P_{|P|-1}}.
    """

    __slots__ = ("config", "sim", "topology", "pcpus")

    def __init__(self, config: MachineConfig, sim: Simulator) -> None:
        self.config = config
        self.sim = sim
        self.topology = Topology(config.num_pcpus, config.sockets)
        self.pcpus: List[PCPU] = [
            PCPU(i, self.topology.socket_of(i), sim)
            for i in range(config.num_pcpus)
        ]

    def __len__(self) -> int:
        return len(self.pcpus)

    def __getitem__(self, pcpu_id: int) -> PCPU:
        return self.pcpus[pcpu_id]

    def __iter__(self):
        return iter(self.pcpus)

    def degrade(self, pcpu_id: int, speed_factor: float) -> None:
        """Mark one PCPU as running at ``speed_factor`` of full speed."""
        if not 0.0 < speed_factor <= 1.0:
            raise ConfigurationError(
                f"speed_factor must be in (0, 1], got {speed_factor!r}")
        self.pcpus[pcpu_id].speed_factor = speed_factor

    def idle_pcpus(self) -> List[PCPU]:
        return [p for p in self.pcpus if p.is_idle]

    def total_utilization(self) -> float:
        """Mean PCPU utilisation across the machine."""
        if not self.pcpus:
            return 0.0
        return sum(p.utilization() for p in self.pcpus) / len(self.pcpus)
