"""CPU topology: sockets and cores.

The paper's testbed is a dual-socket quad-core machine.  Topology matters
for two things here: IPI latency could differ across sockets (we model a
single latency, but the fabric asks the topology for distance so this can
be extended), and the paper's future-work section points at LLC-aware
scheduling — the ablation benches use :meth:`Topology.same_socket` for that.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError


class Topology:
    """Maps PCPU ids to (socket, core) coordinates."""

    def __init__(self, num_pcpus: int, sockets: int) -> None:
        if sockets <= 0 or num_pcpus % sockets != 0:
            raise ConfigurationError(
                f"{num_pcpus} PCPUs do not divide into {sockets} sockets")
        self.num_pcpus = num_pcpus
        self.sockets = sockets
        self.cores_per_socket = num_pcpus // sockets

    def socket_of(self, pcpu_id: int) -> int:
        """Socket index of a PCPU (PCPUs are numbered socket-major)."""
        self._check(pcpu_id)
        return pcpu_id // self.cores_per_socket

    def core_of(self, pcpu_id: int) -> int:
        """Core index within its socket."""
        self._check(pcpu_id)
        return pcpu_id % self.cores_per_socket

    def same_socket(self, a: int, b: int) -> bool:
        return self.socket_of(a) == self.socket_of(b)

    def siblings(self, pcpu_id: int) -> List[int]:
        """All PCPUs sharing the socket (including ``pcpu_id`` itself)."""
        s = self.socket_of(pcpu_id)
        base = s * self.cores_per_socket
        return list(range(base, base + self.cores_per_socket))

    def distance(self, a: int, b: int) -> int:
        """0 = same core, 1 = same socket, 2 = cross-socket."""
        self._check(a)
        self._check(b)
        if a == b:
            return 0
        return 1 if self.same_socket(a, b) else 2

    def _check(self, pcpu_id: int) -> None:
        if not 0 <= pcpu_id < self.num_pcpus:
            raise ConfigurationError(f"PCPU id {pcpu_id} out of range")

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Topology({self.sockets} sockets x "
                f"{self.cores_per_socket} cores)")
