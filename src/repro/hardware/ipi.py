"""Inter-processor interrupt fabric.

The Adaptive Scheduler coschedules VCPUs by sending IPIs to the PCPUs whose
run queues hold sibling VCPUs (paper Section 3.3 / Algorithm 4).  The fabric
models delivery latency (about a microsecond) and dispatches to a per-PCPU
handler registered by the scheduler.  Delivery is asynchronous: the sender
returns immediately and the handler fires as a simulation event.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.hardware.machine import Machine
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector

IPIHandler = Callable[[int, int, Any], None]
"""Handler signature: (target_pcpu_id, source_pcpu_id, payload)."""


class IPIFabric:
    """Delivers IPIs between PCPUs with a fixed latency."""

    def __init__(self, machine: Machine, sim: Simulator) -> None:
        self.machine = machine
        self.sim = sim
        self.latency = machine.config.ipi_latency
        self._handlers: Dict[int, IPIHandler] = {}
        #: Total IPIs sent (observability; the ablation benches report it).
        self.sent = 0
        #: Optional fault injector (repro.faults): drop / latency jitter.
        #: None in the default path — a single attribute test per send.
        self.faults: Optional["FaultInjector"] = None
        #: (source, target) -> event label; IPI endpoints repeat heavily
        #: (coscheduling fan-outs), so build each label string once.
        self._labels: Dict[Tuple[int, int], str] = {}

    def register(self, pcpu_id: int, handler: IPIHandler) -> None:
        """Install the interrupt handler for a PCPU (one per PCPU)."""
        if not 0 <= pcpu_id < len(self.machine):
            raise ConfigurationError(f"PCPU id {pcpu_id} out of range")
        self._handlers[pcpu_id] = handler

    def send(self, source: int, target: int, payload: Any = None) -> None:
        """Send an IPI from ``source`` to ``target``.

        Sending to oneself is allowed (Linux does it for rescheduling) and
        still goes through the event queue, preserving event ordering.
        """
        if target not in self._handlers:
            raise ConfigurationError(
                f"no IPI handler registered for PCPU {target}")
        self.sent += 1
        latency = self.latency
        if self.faults is not None:
            delivery = self.faults.ipi_delivery(source, target, latency)
            if delivery is None:
                return  # dropped on the wire; the sender never knows
            latency = delivery
        handler = self._handlers[target]
        key = (source, target)
        label = self._labels.get(key)
        if label is None:
            label = self._labels[key] = f"ipi:{source}->{target}"
        self.sim.after(latency, partial(handler, target, source, payload),
                       label=label)

    def broadcast(self, source: int, targets: List[int], payload: Any = None) -> None:
        """Send the same IPI to every PCPU in ``targets``."""
        for t in targets:
            self.send(source, t, payload)
