"""Whole-program analysis engine for the reproduction (simlint v2).

simlint's per-file AST rules (:mod:`repro.analysis.simlint`) cannot see a
``time.time()`` reached through two helper calls, an unseeded generator
laundered through a wrapper, or a millisecond value flowing into a
cycle-denominated argument across a function boundary.  This module adds
the missing substrate:

* :class:`Project` — a module indexer over one package tree: every file
  parsed once, imports resolved to fully-qualified names, classes,
  methods, base classes and instance-attribute types collected into a
  queryable symbol table.
* a light type-inference layer (annotations, ``self.x = param``
  propagation, constructor assignments, ``Type[X]`` factory returns)
  that :mod:`repro.analysis.callgraph` uses for method resolution —
  including virtual dispatch through the scheduler registry's
  ``SchedulerBase`` surface and the ``CellSpec``/``FaultSpec``
  dataclass fields.
* :class:`AnalysisReport` plus the suppression **baseline**: findings
  are content-fingerprinted (rule + file + anchor-line text, line-number
  independent) and partitioned against a checked-in
  ``analysis-baseline.json`` — new findings fail, grandfathered ones are
  budgeted and counted, stale entries are reported so the baseline can
  only shrink.

The interprocedural rule families themselves live in
:mod:`repro.analysis.rules_interproc`; :func:`analyze` is the one-call
driver the CLI uses (``python -m repro lint --interprocedural``).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis import simlint
from repro.analysis.simlint import Violation

__all__ = [
    "AnalysisReport",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "analyze",
    "fingerprint_violation",
    "load_baseline",
    "partition_against_baseline",
    "stable_rel_path",
    "write_baseline",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Marker prefix for ``Type[X]`` annotations: a value holding the class
#: object itself (calling it constructs an X).
_TYPE_OF = "type:"


# --------------------------------------------------------------------- #
# Symbol table dataclasses
# --------------------------------------------------------------------- #
@dataclass
class FunctionInfo:
    """One function or method, with resolved parameter/return types."""

    qname: str                      #: e.g. ``repro.vmm.credit.CreditScheduler.schedule``
    module: str                     #: defining module's dotted name
    cls: Optional[str]              #: owning class qname, or None
    node: FunctionNode
    params: List[str] = field(default_factory=list)
    param_types: Dict[str, str] = field(default_factory=dict)
    return_type: Optional[str] = None

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class: resolved bases, methods, instance-attribute types."""

    qname: str
    module: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: instance attribute -> resolved type qname (dataclass fields,
    #: ``self.x: T`` annotations, ``self.x = <typed param>`` assignments).
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module with its import table and top-level symbols."""

    name: str
    path: Path
    source: str
    tree: ast.Module
    #: local alias -> fully-qualified target (``np`` -> ``numpy``,
    #: ``ms`` -> ``repro.units.ms``, ``FaultSpec`` ->
    #: ``repro.faults.spec.FaultSpec``).
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level straight aliases (``X = SomeClass``).
    assigns: Dict[str, str] = field(default_factory=dict)


# --------------------------------------------------------------------- #
# Project indexing
# --------------------------------------------------------------------- #
class Project:
    """An indexed package tree, queryable by fully-qualified name."""

    def __init__(self, root: Path, package: str) -> None:
        self.root = root
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: class qname -> transitive subclass qnames (project classes).
        self.subclasses: Dict[str, Set[str]] = {}

    # -- construction --------------------------------------------------- #
    @classmethod
    def load(cls, root: Union[str, Path]) -> "Project":
        """Index every ``*.py`` under ``root`` (a package directory).

        The package's dotted name is the directory name; submodules are
        named relative to it (``<root>/vmm/credit.py`` ->
        ``<root.name>.vmm.credit``).
        """
        root = Path(root).resolve()
        if not root.is_dir():
            raise ValueError(f"project root {root} is not a directory")
        project = cls(root, root.name)
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            parts = [root.name] + list(rel.parts[:-1])
            stem = rel.parts[-1][:-3]
            if stem != "__init__":
                parts.append(stem)
            modname = ".".join(parts)
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
            project.modules[modname] = ModuleInfo(
                name=modname, path=path, source=source, tree=tree)
        for mod in project.modules.values():
            project._index_module(mod)
        for mod in project.modules.values():
            project._resolve_types(mod)
        project._build_subclass_map()
        return project

    # -- pass 1: imports + defs ----------------------------------------- #
    def _index_module(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    mod.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(mod, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{base}.{alias.name}"
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qname=f"{mod.name}.{stmt.name}", module=mod.name,
                    cls=None, node=stmt)
                mod.functions[stmt.name] = info
                self.functions[info.qname] = info
            elif isinstance(stmt, ast.ClassDef):
                cinfo = ClassInfo(qname=f"{mod.name}.{stmt.name}",
                                  module=mod.name, node=stmt)
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        finfo = FunctionInfo(
                            qname=f"{cinfo.qname}.{item.name}",
                            module=mod.name, cls=cinfo.qname, node=item)
                        cinfo.methods[item.name] = finfo
                        self.functions[finfo.qname] = finfo
                mod.classes[stmt.name] = cinfo
                self.classes[cinfo.qname] = cinfo
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Name):
                mod.assigns[stmt.targets[0].id] = stmt.value.id

    def _import_base(self, mod: ModuleInfo,
                     node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted prefix for a ``from X import ...`` statement."""
        if node.level == 0:
            return node.module
        # Relative import: climb from the importing module's package.
        parts = mod.name.split(".")
        # A module's own package is its name minus the leaf (packages
        # themselves — __init__ — already are the package name).
        is_pkg = mod.path.name == "__init__.py"
        pkg_parts = parts if is_pkg else parts[:-1]
        up = node.level - 1
        if up > len(pkg_parts):
            return None
        base_parts = pkg_parts[:len(pkg_parts) - up]
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts) if base_parts else None

    # -- name / annotation resolution ----------------------------------- #
    def resolve_name(self, mod: ModuleInfo, dotted: str) -> str:
        """Resolve a possibly-aliased dotted name to a fully-qualified
        one; unknown names pass through unchanged (external symbols)."""
        head, _, rest = dotted.partition(".")
        target: Optional[str] = None
        if head in mod.imports:
            target = mod.imports[head]
        elif head in mod.assigns:
            target = self.resolve_name(mod, mod.assigns[head])
        elif head in mod.functions or head in mod.classes:
            target = f"{mod.name}.{head}"
        if target is None:
            target = head
        return f"{target}.{rest}" if rest else target

    def resolve_annotation(self, mod: ModuleInfo,
                           node: Optional[ast.expr]) -> Optional[str]:
        """Best-effort type qname for an annotation expression.

        Handles names, dotted names, string annotations, ``Optional[X]``
        / ``Union[X, None]`` unwrapping and ``Type[X]`` (returned with a
        ``type:`` prefix).  Container annotations resolve to ``None`` —
        this layer tracks nominal object types only.
        """
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
            return self.resolve_annotation(mod, parsed)
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = _dotted_name(node)
            return self.resolve_name(mod, dotted) if dotted else None
        if isinstance(node, ast.Subscript):
            base = _dotted_name(node.value)
            if base is None:
                return None
            resolved = self.resolve_name(mod, base)
            tail = resolved.rsplit(".", 1)[-1]
            if tail in ("Optional", "Union"):
                elts = node.slice.elts \
                    if isinstance(node.slice, ast.Tuple) else [node.slice]
                for elt in elts:
                    if isinstance(elt, ast.Constant) and elt.value is None:
                        continue
                    inner = self.resolve_annotation(mod, elt)
                    if inner is not None:
                        return inner
                return None
            if tail in ("Type", "type"):
                inner = self.resolve_annotation(mod, node.slice)
                return f"{_TYPE_OF}{inner}" if inner else None
            return None
        return None

    # -- pass 2: types --------------------------------------------------- #
    def _resolve_types(self, mod: ModuleInfo) -> None:
        for finfo in mod.functions.values():
            self._resolve_signature(mod, finfo)
        for cinfo in mod.classes.values():
            for base in cinfo.node.bases:
                dotted = _dotted_name(base)
                if dotted:
                    cinfo.bases.append(self.resolve_name(mod, dotted))
            for item in cinfo.node.body:
                # Dataclass fields / class-level annotations type the
                # matching instance attribute.
                if isinstance(item, ast.AnnAssign) \
                        and isinstance(item.target, ast.Name):
                    anno = self.resolve_annotation(mod, item.annotation)
                    if anno is not None:
                        cinfo.attr_types[item.target.id] = anno
            for minfo in cinfo.methods.values():
                self._resolve_signature(mod, minfo)
            for minfo in cinfo.methods.values():
                self._collect_attr_types(mod, cinfo, minfo)

    def _resolve_signature(self, mod: ModuleInfo, finfo: FunctionInfo) -> None:
        args = finfo.node.args
        everything = args.posonlyargs + args.args + args.kwonlyargs
        finfo.params = [a.arg for a in everything]
        for a in everything:
            anno = self.resolve_annotation(mod, a.annotation)
            if anno is not None:
                finfo.param_types[a.arg] = anno
        finfo.return_type = self.resolve_annotation(mod, finfo.node.returns)

    def _collect_attr_types(self, mod: ModuleInfo, cinfo: ClassInfo,
                            minfo: FunctionInfo) -> None:
        """``self.x: T``, ``self.x = <typed param>``, ``self.x = C(...)``."""
        for stmt in ast.walk(minfo.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            anno: Optional[str] = None
            if isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
                anno = self.resolve_annotation(mod, stmt.annotation)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            attr = target.attr
            if anno is None and value is not None:
                anno = self._infer_expr_type(mod, minfo, value)
            if anno is not None and attr not in cinfo.attr_types:
                cinfo.attr_types[attr] = anno

    def _infer_expr_type(self, mod: ModuleInfo, finfo: FunctionInfo,
                         expr: ast.expr) -> Optional[str]:
        """Shallow rvalue typing: params, constructors, typed factories."""
        if isinstance(expr, ast.Name):
            return finfo.param_types.get(expr.id)
        if isinstance(expr, ast.Call):
            dotted = _dotted_name(expr.func)
            if dotted is None:
                return None
            qname = self.resolve_name(mod, dotted)
            if qname in self.classes:
                return qname
            callee = self.functions.get(qname)
            if callee is not None and callee.return_type is not None:
                rt = callee.return_type
                # Calling a Type[X] factory's *result* yields an X; the
                # factory call itself yields the class object.
                return rt
        return None

    # -- pass 3: hierarchy ----------------------------------------------- #
    def _build_subclass_map(self) -> None:
        direct: Dict[str, Set[str]] = {}
        for cinfo in self.classes.values():
            for base in cinfo.bases:
                direct.setdefault(base, set()).add(cinfo.qname)
        for qname in self.classes:
            seen: Set[str] = set()
            frontier = list(direct.get(qname, ()))
            while frontier:
                sub = frontier.pop()
                if sub in seen:
                    continue
                seen.add(sub)
                frontier.extend(direct.get(sub, ()))
            self.subclasses[qname] = seen

    # -- queries ---------------------------------------------------------- #
    def lookup_method(self, class_qname: str,
                      method: str) -> Optional[FunctionInfo]:
        """Resolve a method through the class's (project-local) MRO."""
        seen: Set[str] = set()
        frontier = [class_qname]
        while frontier:
            qname = frontier.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            cinfo = self.classes.get(qname)
            if cinfo is None:
                continue
            if method in cinfo.methods:
                return cinfo.methods[method]
            frontier.extend(cinfo.bases)
        return None

    def attr_type(self, class_qname: str, attr: str) -> Optional[str]:
        """Instance-attribute type through the class hierarchy."""
        seen: Set[str] = set()
        frontier = [class_qname]
        while frontier:
            qname = frontier.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            cinfo = self.classes.get(qname)
            if cinfo is None:
                continue
            if attr in cinfo.attr_types:
                return cinfo.attr_types[attr]
            frontier.extend(cinfo.bases)
        return None

    def is_subclass_of(self, qname: str, base: str) -> bool:
        return qname == base or qname in self.subclasses.get(base, ())

    def rel_path(self, path: Path) -> str:
        """Path rendered relative to the package parent (stable across
        checkouts: ``repro/vmm/credit.py``)."""
        try:
            return str(Path(path).resolve().relative_to(self.root.parent))
        except ValueError:
            return str(path)


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# --------------------------------------------------------------------- #
# Report + baseline
# --------------------------------------------------------------------- #
@dataclass
class AnalysisReport:
    """Outcome of one whole-program lint run (per-file + interprocedural),
    partitioned against the suppression baseline."""

    violations: List[Violation]          #: everything found, pre-baseline
    files_checked: int
    pragmas_used: int
    waivers_by_rule: Dict[str, int]
    new: List[Violation]                 #: not in the baseline -> fail
    grandfathered: List[Violation]       #: baselined, counted not fatal
    stale_baseline: List[Dict[str, object]]  #: entries that no longer match
    interprocedural: bool = False

    @property
    def ok(self) -> bool:
        return not self.new


def stable_rel_path(path: Union[str, Path]) -> str:
    """Checkout-independent rendering of a source path: the tail from
    the last ``repro`` component on (``repro/vmm/credit.py``)."""
    parts = Path(path).parts
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    return Path(path).name


def fingerprint_violation(v: Violation, source_lines: Sequence[str],
                          occurrence: int = 0) -> str:
    """Content fingerprint: rule + repo-relative file + stripped
    anchor-line text + occurrence index — stable under unrelated line
    insertions and across checkout locations."""
    anchor = ""
    if 1 <= v.line <= len(source_lines):
        anchor = source_lines[v.line - 1].strip()
    payload = f"{v.rule}|{stable_rel_path(v.path)}|{anchor}|{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _fingerprints(violations: Sequence[Violation],
                  sources: Dict[str, List[str]]) -> List[str]:
    """Fingerprint each violation, disambiguating identical anchors."""
    seen: Dict[str, int] = {}
    out: List[str] = []
    for v in violations:
        lines = sources.get(v.path, [])
        base = fingerprint_violation(v, lines, 0)
        occurrence = seen.get(base, 0)
        seen[base] = occurrence + 1
        out.append(base if occurrence == 0
                   else fingerprint_violation(v, lines, occurrence))
    return out


def load_baseline(path: Union[str, Path]) -> Dict[str, object]:
    """Read a baseline document; raises ValueError on schema mismatch."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or doc.get("version") != 1:
        raise ValueError(f"unsupported baseline schema in {path}")
    if not isinstance(doc.get("findings"), list):
        raise ValueError(f"baseline {path} has no findings list")
    return doc


def write_baseline(violations: Sequence[Violation],
                   sources: Dict[str, List[str]],
                   path: Union[str, Path]) -> Path:
    """Write the current findings as the new suppression baseline."""
    fps = _fingerprints(violations, sources)
    findings = [
        {"fingerprint": fp, "rule": v.rule,
         "path": stable_rel_path(v.path),
         "line": v.line, "message": v.message}
        for fp, v in sorted(zip(fps, violations), key=lambda t: t[0])
    ]
    doc = {"version": 1, "tool": "simlint-interprocedural",
           "findings": findings}
    out = Path(path)
    out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


def partition_against_baseline(
        violations: Sequence[Violation],
        sources: Dict[str, List[str]],
        baseline: Optional[Dict[str, object]],
) -> Tuple[List[Violation], List[Violation], List[Dict[str, object]]]:
    """Split findings into (new, grandfathered) and list stale baseline
    entries (budgeted findings that no longer occur — prune them)."""
    if baseline is None:
        return list(violations), [], []
    known = {str(f.get("fingerprint")): dict(f)
             for f in baseline.get("findings", [])  # type: ignore[union-attr]
             if isinstance(f, dict)}
    new: List[Violation] = []
    grandfathered: List[Violation] = []
    matched: Set[str] = set()
    for v, fp in zip(violations, _fingerprints(violations, sources)):
        if fp in known:
            matched.add(fp)
            grandfathered.append(v)
        else:
            new.append(v)
    stale = [known[fp] for fp in sorted(set(known) - matched)]
    return new, grandfathered, stale


# --------------------------------------------------------------------- #
# The driver
# --------------------------------------------------------------------- #
def analyze(root: Union[str, Path],
            rules: Optional[Iterable[str]] = None,
            baseline: Optional[Dict[str, object]] = None,
            changed_files: Optional[Iterable[Union[str, Path]]] = None,
            assume_sim: bool = False,
            ) -> Tuple[AnalysisReport, Project, Dict[str, List[str]]]:
    """Run the whole-program analysis over one package tree.

    Per-file simlint rules run on every indexed module (reusing the
    engine's parse), then the interprocedural rule families from
    :mod:`repro.analysis.rules_interproc` run over the project call
    graph.  ``changed_files`` restricts *reporting* to those files
    (``--diff`` mode) while the index and call graph still span the
    whole project — an interprocedural leak introduced by editing a
    helper is attributed to the changed file that contains it.

    Returns ``(report, project, sources)`` where ``sources`` maps each
    violation path to its source lines (for fingerprinting/SARIF).
    """
    from repro.analysis.rules_interproc import (INTERPROC_RULES,
                                                run_interproc_rules)

    project = Project.load(root)
    active = set(rules) if rules is not None else \
        set(simlint.RULES) | set(INTERPROC_RULES)
    unknown = active - set(simlint.RULES) - set(INTERPROC_RULES)
    if unknown:
        raise ValueError(f"unknown simlint rule(s): {sorted(unknown)}")
    perfile_rules = active & set(simlint.RULES)
    interproc_rules = active & set(INTERPROC_RULES)

    changed: Optional[Set[str]] = None
    if changed_files is not None:
        changed = {str(Path(p).resolve()) for p in changed_files}

    violations: List[Violation] = []
    pragmas = 0
    waivers: Dict[str, int] = {}
    sources: Dict[str, List[str]] = {}
    pragma_tables: Dict[str, Dict[int, Optional[Set[str]]]] = {}

    for mod in sorted(project.modules.values(), key=lambda m: str(m.path)):
        path_key = str(mod.path)
        sources[path_key] = mod.source.splitlines()
        pragma_tables[path_key] = simlint.parse_pragmas(mod.source)
        in_diff = changed is None or str(mod.path.resolve()) in changed
        if perfile_rules and in_diff:
            sim_scope, hot = simlint._scope_of(mod.path, assume_sim)
            found, used, per_rule = simlint.lint_tree(
                mod.tree, mod.source, path=path_key, sim_scope=sim_scope,
                hot_module=hot, rules=perfile_rules)
            violations.extend(found)
            pragmas += used
            for rule, n in per_rule.items():
                waivers[rule] = waivers.get(rule, 0) + n

    if interproc_rules:
        interproc_found = run_interproc_rules(
            project, rules=interproc_rules, assume_sim=assume_sim)
        for v in interproc_found:
            if changed is not None \
                    and str(Path(v.path).resolve()) not in changed:
                continue
            table = pragma_tables.get(v.path, {})
            waived = table.get(v.line, "absent")
            if waived != "absent" and (waived is None
                                       or v.rule in waived):  # type: ignore[operator]
                pragmas += 1
                waivers[v.rule] = waivers.get(v.rule, 0) + 1
                continue
            violations.append(v)

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    new, grandfathered, stale = partition_against_baseline(
        violations, sources, baseline)
    report = AnalysisReport(
        violations=violations, files_checked=len(project.modules),
        pragmas_used=pragmas,
        waivers_by_rule=dict(sorted(waivers.items())),
        new=new, grandfathered=grandfathered, stale_baseline=stale,
        interprocedural=bool(interproc_rules))
    return report, project, sources
