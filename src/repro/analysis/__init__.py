"""Static and dynamic analysis tooling for the reproduction.

Two layers, both guarding the same contract (bit-identical determinism
and faithful scheduler mechanics):

* :mod:`repro.analysis.simlint` — per-file AST checker with
  sim-specific rules (``python -m repro lint``).
* :mod:`repro.analysis.engine` / :mod:`repro.analysis.callgraph` /
  :mod:`repro.analysis.taint` / :mod:`repro.analysis.rules_interproc` —
  the whole-program layer behind ``python -m repro lint
  --interprocedural``: module indexing, project call graph, forward
  dataflow/taint, RNG-provenance + cycle-unit + transitive wall-clock
  rules, SARIF output (:mod:`repro.analysis.sarif`) and the
  ``analysis-baseline.json`` suppression workflow.
* :mod:`repro.analysis.sanitizer` — opt-in runtime invariant checker
  for the VMM scheduler (``--sanitize`` / ``REPRO_SANITIZE=1``), in the
  spirit of ThreadSanitizer: heavy checks after every scheduling
  decision, zero overhead when off.
* :mod:`repro.analysis.parity` — the table tying static rules to
  runtime checks so neither plane grows without the other noticing.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.analysis.sanitizer import (RUNTIME_CHECKS, SanitizerViolation,
                                      SchedulerSanitizer)
from repro.analysis.simlint import (
    LintReport,
    RULES,
    SIM_PACKAGES,
    TOOLING_PACKAGES,
    Violation,
    lint_file,
    lint_paths,
    lint_source,
    lint_tree,
    parse_pragmas,
    render_json,
    render_text,
)

__all__ = [
    "LintReport",
    "RULES",
    "RUNTIME_CHECKS",
    "SIM_PACKAGES",
    "SanitizerViolation",
    "SchedulerSanitizer",
    "TOOLING_PACKAGES",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "parse_pragmas",
    "render_json",
    "render_text",
    "sanitize_enabled",
    "set_sanitize",
]

#: Process-wide override set by the CLI's --sanitize flag (None = defer
#: to the REPRO_SANITIZE environment variable).
_SANITIZE_OVERRIDE: Optional[bool] = None


def set_sanitize(enabled: Optional[bool]) -> None:
    """Force sanitizer wiring on/off for this process (None resets to
    the environment default)."""
    global _SANITIZE_OVERRIDE
    _SANITIZE_OVERRIDE = enabled


def sanitize_enabled() -> bool:
    """Should new testbeds attach a scheduler sanitizer?

    Priority: :func:`set_sanitize` override, then the ``REPRO_SANITIZE``
    environment variable (``1``/``true``/``yes``/``on`` enable).
    """
    if _SANITIZE_OVERRIDE is not None:
        return _SANITIZE_OVERRIDE
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
        "1", "true", "yes", "on")
