"""Static ↔ runtime enforcement parity for the determinism contract.

The project enforces its invariants on two independent planes:

* **statically** — simlint's per-file rules and the interprocedural rule
  families reject code that *could* break determinism before it runs;
* **at runtime** — :class:`repro.analysis.sanitizer.SchedulerSanitizer`
  validates the scheduler's structural guarantees while it runs.

The two planes drift apart silently unless something ties them
together: a new sanitizer check whose failure mode could have been
rejected statically, or a new lint rule whose property the sanitizer
should also watch, each deserve a deliberate decision.  This module is
that decision record: every enforced invariant appears in
:data:`INVARIANT_PARITY` with its static rule ids and/or runtime check
ids, and :func:`verify_parity` fails if any rule or check exists outside
the table (or the table names something that does not exist).  The table
test in ``tests/test_sanitizer_parity.py`` runs it on every commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis import simlint
from repro.analysis.rules_interproc import INTERPROC_RULES
from repro.analysis.sanitizer import RUNTIME_CHECKS

__all__ = ["INVARIANT_PARITY", "Invariant", "verify_parity"]


@dataclass(frozen=True)
class Invariant:
    """One enforced property and where each plane enforces it."""

    name: str
    description: str
    #: simlint / interprocedural rule ids enforcing this statically.
    static_rules: Tuple[str, ...] = ()
    #: :data:`RUNTIME_CHECKS` ids enforcing this at runtime.
    runtime_checks: Tuple[str, ...] = ()
    #: why the other plane deliberately does not cover it ("" when both
    #: planes are populated).
    asymmetry: str = ""


INVARIANT_PARITY: Tuple[Invariant, ...] = (
    Invariant(
        name="simulated-clock-only",
        description="simulation code reads time only from sim.now",
        static_rules=("wall-clock", "transitive-wall-clock"),
        asymmetry="a wall-clock read changes no scheduler structure, so "
                  "only the fingerprint gate could see it at runtime; "
                  "rejected statically instead",
    ),
    Invariant(
        name="seeded-named-rng",
        description="all randomness flows through named, seeded "
                    "RngStreams streams, one subsystem per stream",
        static_rules=("random-module", "rng-provenance"),
        asymmetry="draw-sequence coupling is invisible to structural "
                  "runtime checks; enforced statically plus by the "
                  "bit-identical fingerprint gates",
    ),
    Invariant(
        name="cycle-exact-time",
        description="event timestamps and op durations are integer "
                    "cycles, converted explicitly from wall units",
        static_rules=("float-into-cycles", "silent-truncation",
                      "cycle-unit-flow"),
        asymmetry="the event engine itself rejects fractional "
                  "timestamps at insert, which is the runtime half; "
                  "that guard lives in sim.engine, not the sanitizer",
    ),
    Invariant(
        name="deterministic-iteration",
        description="no scheduling-visible iteration over unordered "
                    "collections",
        static_rules=("nondet-iter",),
        asymmetry="ordering leaks perturb fingerprints, not structure; "
                  "static-only by design",
    ),
    Invariant(
        name="code-hygiene",
        description="no shared mutable defaults, no silent exception "
                    "swallowing, hot-tier classes declare __slots__",
        static_rules=("mutable-default", "bare-except", "slots-required"),
        asymmetry="pure source-level properties with no runtime "
                  "observable",
    ),
    Invariant(
        name="vcpu-placement",
        description="a VCPU occupies at most one PCPU and linkage is "
                    "mutually consistent",
        runtime_checks=("placement",),
        asymmetry="placement is emergent scheduler state; no static "
                  "rule can see it",
    ),
    Invariant(
        name="runq-consistency",
        description="RUNNABLE iff enqueued exactly once, counters "
                    "agree with queues",
        runtime_checks=("runq-membership",),
        asymmetry="emergent state; runtime-only",
    ),
    Invariant(
        name="credit-conservation",
        description="credit totals fall between assignments and "
                    "respect the Algorithm 3 ceiling",
        runtime_checks=("credit-conservation",),
        asymmetry="numeric flow over time; runtime-only",
    ),
    Invariant(
        name="gang-scheduling-atomicity",
        description="coscheduling enters and exits all-or-nothing "
                    "(paper Algorithm 4)",
        runtime_checks=("gang-atomicity",),
        asymmetry="emergent state; runtime-only",
    ),
    Invariant(
        name="launch-mutex-bounded",
        description="the gang launch mutex is held at most one IPI "
                    "fan-out window",
        runtime_checks=("launch-mutex",),
        asymmetry="liveness over simulated time; runtime-only",
    ),
    Invariant(
        name="lhp-causality",
        description="over-threshold spin waits are caused by a "
                    "descheduled lock holder",
        runtime_checks=("lhp-provenance",),
        asymmetry="causal property of a run; runtime-only",
    ),
    Invariant(
        name="ff-quiescence-noop",
        description="every scheduling pass skipped by the quiescent-tick "
                    "fast-forward would have been a strict no-op",
        runtime_checks=("ff-quiescence",),
        asymmetry="quiescence is a dynamic state property (idle PCPU, "
                  "all queued VCPUs parked) no static rule can decide; "
                  "the sanitizer replays the skipped pass step-wise and "
                  "compares state signatures, and the ff-off fingerprint "
                  "gate covers unsanitized runs",
    ),
)


def verify_parity() -> List[str]:
    """Cross-check the parity table against both rule registries.

    Returns a list of human-readable problems (empty when consistent):
    static rules or runtime checks missing from the table, table entries
    referencing ids that do not exist, ids claimed by two invariants,
    and invariants enforcing nothing on either plane.
    """
    problems: List[str] = []
    static_known = set(simlint.RULES) | set(INTERPROC_RULES)
    runtime_known = set(RUNTIME_CHECKS)
    static_claimed: Dict[str, str] = {}
    runtime_claimed: Dict[str, str] = {}
    for inv in INVARIANT_PARITY:
        if not inv.static_rules and not inv.runtime_checks:
            problems.append(f"invariant {inv.name!r} enforces nothing")
        if (not inv.static_rules or not inv.runtime_checks) \
                and not inv.asymmetry:
            problems.append(
                f"invariant {inv.name!r} is single-plane but gives no "
                f"asymmetry rationale")
        for rule in inv.static_rules:
            if rule not in static_known:
                problems.append(
                    f"invariant {inv.name!r} references unknown static "
                    f"rule {rule!r}")
            elif rule in static_claimed:
                problems.append(
                    f"static rule {rule!r} claimed by both "
                    f"{static_claimed[rule]!r} and {inv.name!r}")
            else:
                static_claimed[rule] = inv.name
        for check in inv.runtime_checks:
            if check not in runtime_known:
                problems.append(
                    f"invariant {inv.name!r} references unknown runtime "
                    f"check {check!r}")
            elif check in runtime_claimed:
                problems.append(
                    f"runtime check {check!r} claimed by both "
                    f"{runtime_claimed[check]!r} and {inv.name!r}")
            else:
                runtime_claimed[check] = inv.name
    for rule in sorted(static_known - set(static_claimed)):
        problems.append(
            f"static rule {rule!r} has no row in INVARIANT_PARITY: "
            f"decide its runtime counterpart (or record the asymmetry)")
    for check in sorted(runtime_known - set(runtime_claimed)):
        problems.append(
            f"runtime check {check!r} has no row in INVARIANT_PARITY: "
            f"decide its static counterpart (or record the asymmetry)")
    return problems
