"""Forward dataflow / taint lattice over the project call graph.

Two value families are tracked through assignments, arithmetic, calls
and returns:

* **unit taint** — ``("float", src)`` for float-valued expressions
  (literals, true division, float-returning helpers) and ``("ms", src)``
  for wall-denominated values (``units.to_ms`` / ``units.to_seconds``
  results).  ``src`` distinguishes ``"local"`` taint (visible to the
  per-file rules) from ``"ret"`` taint that crossed a call boundary.
* **RNG provenance** — ``("stream", prefix)`` for generators obtained
  from :meth:`repro.sim.rng.RngStreams.get` (prefix = the stream name up
  to the first ``/``, ``"?"`` when dynamic), ``("seeded",)`` for ad-hoc
  explicitly-seeded generators, ``("unseeded",)`` for entropy-seeded
  ones.  ``default_rng(x)`` *preserves* stream provenance when its seed
  derives from a stream draw (the workload thread-RNG idiom).

Values flowing through parameters carry ``("param", i)`` markers;
per-function :class:`Summary` objects record where those parameters end
up (cycle sinks, RNG draws, the return value), and a small fixpoint
iteration propagates summaries through wrappers so a leak laundered
through two helper calls is still attributed to its concrete source.

Conversion points are trusted boundaries, exactly like the per-file
rules: ``units.ms/us/seconds``, ``int``/``round``/``math.floor``/
``math.ceil`` and floor division all clear taint — the conversion is
visible and auditable, which is the contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import LocalTypes
from repro.analysis.engine import (FunctionInfo, ModuleInfo, Project,
                                   _dotted_name)

__all__ = [
    "DRAW_METHODS",
    "Summary",
    "TaintContext",
    "Tag",
    "compute_summaries",
    "stream_prefix_of_arg",
]

Tag = Tuple[str, ...]

#: numpy Generator methods that consume entropy from the stream.
DRAW_METHODS: Set[str] = {
    "random", "choice", "integers", "shuffle", "permutation", "uniform",
    "normal", "exponential", "gamma", "poisson", "standard_normal",
    "binomial", "geometric", "beta", "bytes", "lognormal", "pareto",
    "triangular", "weibull", "chisquare", "dirichlet", "multinomial",
}

_INTEGERIZERS = {"int", "round", "len", "max", "min", "abs", "floor",
                 "ceil"}
_UNITS_PRODUCERS = {"ms", "us", "seconds"}
_UNITS_WALL = {"to_ms", "to_seconds"}
_GENERATOR_TYPE = "numpy.random.Generator"
_STREAMS_CLASS = "RngStreams"


@dataclass
class Summary:
    """Interprocedural facts about one function, iterated to fixpoint."""

    #: tags of the returned value; ``("param", i)`` marks pass-through.
    returns: Set[Tag] = field(default_factory=set)
    #: param index -> human chain describing the cycle sink it reaches.
    param_sink: Dict[int, str] = field(default_factory=dict)
    #: param index -> modules in which that parameter is drawn from.
    param_draw_modules: Dict[int, Set[str]] = field(default_factory=dict)

    def snapshot(self) -> Tuple[object, ...]:
        return (frozenset(self.returns),
                tuple(sorted(self.param_sink.items())),
                tuple(sorted((i, tuple(sorted(m)))
                             for i, m in self.param_draw_modules.items())))


def stream_prefix_of_arg(arg: Optional[ast.expr]) -> Optional[str]:
    """Stream-name prefix (text before the first ``/``) from a literal
    or f-string first argument of ``RngStreams.get``; ``"?"`` when the
    name is dynamic."""
    if arg is None:
        return None
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value.split("/")[0]
    if isinstance(arg, ast.JoinedStr) and arg.values:
        first = arg.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value.split("/")[0]
    return "?"


class TaintContext:
    """Shared state for one whole-project taint computation."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.summaries: Dict[str, Summary] = {
            q: Summary() for q in project.functions}
        #: class qname -> attr name -> __init__ param index (``self.x =
        #: param`` bindings, for draws on constructor-provided RNGs).
        self.ctor_attr_params: Dict[str, Dict[str, int]] = {}
        self._collect_ctor_attr_params()

    def _collect_ctor_attr_params(self) -> None:
        for cq, cinfo in self.project.classes.items():
            init = cinfo.methods.get("__init__")
            if init is None:
                continue
            index = {name: i for i, name in enumerate(init.params)}
            binding: Dict[str, int] = {}
            for stmt in ast.walk(init.node):
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    t, v = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign) \
                        and stmt.value is not None:
                    t, v = stmt.target, stmt.value
                else:
                    continue
                if isinstance(t, ast.Attribute) \
                        and isinstance(t.value, ast.Name) \
                        and t.value.id == "self":
                    names = _param_names_in(v)
                    for n in names:
                        if n in index:
                            binding.setdefault(t.attr, index[n])
                            break
            if binding:
                self.ctor_attr_params[cq] = binding


def _param_names_in(expr: ast.expr) -> List[str]:
    """Parameter-name candidates an rvalue forwards (covers ``param``,
    ``param if param is not None else ...`` and similar)."""
    out: List[str] = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            out.append(node.id)
    return out


class FunctionEvaluator:
    """One ordered pass over a function body, computing expression tags
    and updating the function's :class:`Summary`."""

    def __init__(self, ctx: TaintContext, mod: ModuleInfo,
                 finfo: FunctionInfo, local: LocalTypes) -> None:
        self.ctx = ctx
        self.project = ctx.project
        self.mod = mod
        self.finfo = finfo
        self.local = local
        self.summary = ctx.summaries[finfo.qname]
        self.env: Dict[str, Set[Tag]] = {
            name: {("param", str(i))} for i, name in enumerate(finfo.params)}
        #: call-site observations the rule pass consumes:
        #: (call node, callee qname, {param idx: tags}).
        self.call_bindings: List[Tuple[ast.Call, str,
                                       Dict[int, Set[Tag]]]] = []
        #: draw sites: (call node, receiver tags).
        self.draws: List[Tuple[ast.Call, Set[Tag]]] = []
        #: direct cycle-sink args: (arg node, sink label, tags).
        self.sink_args: List[Tuple[ast.expr, str, Set[Tag]]] = []
        #: generator creation sites: (call node, "unseeded" | "adhoc").
        self.rng_creations: List[Tuple[ast.Call, str]] = []

    # -- statement walk -------------------------------------------------- #
    def run(self) -> None:
        self._block(self.finfo.node.body)

    def _block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            tags = self.eval(stmt.value)
            for t in stmt.targets:
                if isinstance(t, ast.Name):
                    self.env[t.id] = set(tags)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None and isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = set(self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                tags = self.eval(stmt.value)
                merged = self.env.get(stmt.target.id, set()) | tags
                if isinstance(stmt.op, ast.Div):
                    merged.add(("float", "local"))
                self.env[stmt.target.id] = merged
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.summary.returns |= {
                    t for t in self.eval(stmt.value)
                    if t[0] in ("float", "ms", "param", "stream",
                                "seeded", "unseeded")}
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.If,)):
            self.eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass          # nested scopes get their own FunctionInfo pass
        elif isinstance(stmt, ast.Raise) and stmt.exc is not None:
            self.eval(stmt.exc)

    # -- expression evaluation ------------------------------------------- #
    def eval(self, expr: ast.expr) -> Set[Tag]:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, float):
                return {("float", "local")}
            return set()
        if isinstance(expr, ast.Name):
            return set(self.env.get(expr.id, set()))
        if isinstance(expr, ast.BinOp):
            tags = self.eval(expr.left) | self.eval(expr.right)
            if isinstance(expr.op, ast.Div):
                tags.add(("float", "local"))
            elif isinstance(expr.op, (ast.FloorDiv, ast.Mod,
                                      ast.LShift, ast.RShift)):
                return set()      # integerizing boundary
            return tags
        if isinstance(expr, ast.UnaryOp):
            return self.eval(expr.operand)
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test)
            return self.eval(expr.body) | self.eval(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            out: Set[Tag] = set()
            for v in expr.values:
                out |= self.eval(v)
            return out
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self.eval(elt)
            return set()
        if isinstance(expr, ast.Compare):
            self.eval(expr.left)
            for c in expr.comparators:
                self.eval(c)
            return set()
        if isinstance(expr, ast.Subscript):
            self.eval(expr.value)
            return set()
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value)
        return set()

    def _eval_attribute(self, expr: ast.Attribute) -> Set[Tag]:
        # self.<attr> backed by a constructor parameter: carry an
        # attrparam marker so draws inside methods attribute back to the
        # __init__ parameter that supplied the generator.
        if isinstance(expr.value, ast.Name) and expr.value.id == "self" \
                and self.finfo.cls is not None:
            binding = self._class_attr_binding(self.finfo.cls, expr.attr)
            if binding is not None:
                cls, idx = binding
                return {("attrparam", cls, str(idx))}
        return set()

    def _class_attr_binding(self, cls: str,
                            attr: str) -> Optional[Tuple[str, int]]:
        seen: Set[str] = set()
        frontier = [cls]
        while frontier:
            q = frontier.pop(0)
            if q in seen:
                continue
            seen.add(q)
            binding = self.ctx.ctor_attr_params.get(q, {})
            if attr in binding:
                return q, binding[attr]
            cinfo = self.project.classes.get(q)
            if cinfo is not None:
                frontier.extend(cinfo.bases)
        return None

    # -- call handling ---------------------------------------------------- #
    def _eval_call(self, call: ast.Call) -> Set[Tag]:
        fn = call.func
        arg_tags = [self.eval(a) for a in call.args]
        kw_tags = {kw.arg: self.eval(kw.value) for kw in call.keywords
                   if kw.arg is not None}
        for kw in call.keywords:
            if kw.arg is None:
                self.eval(kw.value)

        name = fn.id if isinstance(fn, ast.Name) else \
            fn.attr if isinstance(fn, ast.Attribute) else None
        dotted = _dotted_name(fn)
        qname = self.project.resolve_name(self.mod, dotted) \
            if dotted is not None else None

        # Conversion boundaries clear taint.
        if name in _INTEGERIZERS or qname == "sorted":
            return set()
        if (qname or "").startswith("math."):
            return set()
        if name in _UNITS_PRODUCERS and (
                qname is None or qname.endswith(f"units.{name}")
                or qname == name):
            return set()
        if name in _UNITS_WALL and (
                qname is None or qname.endswith(f"units.{name}")
                or qname == name):
            return {("ms", "local")}

        # RngStreams.get(...) -> stream-tagged generator.
        if isinstance(fn, ast.Attribute) and fn.attr in ("get", "fork"):
            recv_t = self.local.type_of_expr(fn.value)
            if recv_t is not None and recv_t.split(".")[-1] == \
                    _STREAMS_CLASS:
                if fn.attr == "fork":
                    return set()     # a new stream family, not a generator
                prefix = stream_prefix_of_arg(
                    call.args[0] if call.args else None)
                return {("stream", prefix or "?")}

        # numpy default_rng: unseeded / seeded / stream-derived.
        if qname is not None and qname.endswith("random.default_rng"):
            if not call.args and not call.keywords:
                self.rng_creations.append((call, "unseeded"))
                return {("unseeded",)}
            seed_tags = arg_tags[0] if arg_tags else \
                next(iter(kw_tags.values()), set())
            passthrough = {t for t in seed_tags
                           if t[0] in ("stream", "param", "attrparam")}
            if passthrough:
                return passthrough
            self.rng_creations.append((call, "adhoc"))
            return {("seeded",)}

        # Draws on generators.
        if isinstance(fn, ast.Attribute) and fn.attr in DRAW_METHODS:
            recv_tags = self.eval(fn.value)
            recv_t = self.local.type_of_expr(fn.value)
            if recv_tags or recv_t == _GENERATOR_TYPE:
                self._note_draw(call, recv_tags)
                # A draw's numeric result keeps the stream provenance so
                # default_rng(rng.integers(...)) stays stream-derived.
                return {t for t in recv_tags
                        if t[0] in ("stream", "param", "attrparam")}

        # Project calls: record bindings, substitute return summaries.
        targets = self._project_targets(call)
        if targets:
            out: Set[Tag] = set()
            for callee_q, param_offset in targets:
                binding = self._bind_args(callee_q, param_offset,
                                          arg_tags, kw_tags)
                self.call_bindings.append((call, callee_q, binding))
                self._propagate_param_summaries(callee_q, binding)
                out |= self._apply_return_summary(callee_q, binding)
            self._check_direct_sink(call)
            return out

        self._check_direct_sink(call)
        return set()

    def _note_draw(self, call: ast.Call, recv_tags: Set[Tag]) -> None:
        self.draws.append((call, set(recv_tags)))
        for t in recv_tags:
            if t[0] == "param":
                self.summary.param_draw_modules.setdefault(
                    int(t[1]), set()).add(self.mod.name)
            elif t[0] == "attrparam":
                cls, idx = t[1], int(t[2])
                init = self.project.lookup_method(cls, "__init__")
                if init is not None:
                    self.ctx.summaries[init.qname] \
                        .param_draw_modules.setdefault(idx, set()) \
                        .add(self.mod.name)

    def _project_targets(self, call: ast.Call
                         ) -> List[Tuple[str, int]]:
        """(callee qname, param offset) pairs; offset 1 for bound calls
        (methods/constructors, where param 0 is ``self``)."""
        fn = call.func
        dotted = _dotted_name(fn)
        out: List[Tuple[str, int]] = []
        if dotted is not None:
            qname = self.project.resolve_name(self.mod, dotted)
            if qname in self.project.functions:
                info = self.project.functions[qname]
                offset = 1 if (info.cls is not None
                               and isinstance(fn, ast.Attribute)) else 0
                return [(qname, offset)]
            if qname in self.project.classes:
                init = self.project.lookup_method(qname, "__init__")
                if init is not None:
                    return [(init.qname, 1)]
        if isinstance(fn, ast.Attribute):
            recv_t = self.local.type_of_expr(fn.value)
            if recv_t is not None and recv_t in self.project.classes:
                m = self.project.lookup_method(recv_t, fn.attr)
                if m is not None:
                    out.append((m.qname, 1))
                for sub in sorted(self.project.subclasses.get(recv_t, ())):
                    cinfo = self.project.classes.get(sub)
                    if cinfo is not None and fn.attr in cinfo.methods:
                        out.append((cinfo.methods[fn.attr].qname, 1))
        return out

    def _bind_args(self, callee_q: str, offset: int,
                   arg_tags: List[Set[Tag]],
                   kw_tags: Dict[str, Set[Tag]]) -> Dict[int, Set[Tag]]:
        callee = self.project.functions[callee_q]
        binding: Dict[int, Set[Tag]] = {}
        for pos, tags in enumerate(arg_tags):
            idx = pos + offset
            if idx < len(callee.params):
                binding[idx] = tags
        for kwname, tags in kw_tags.items():
            if kwname in callee.params:
                binding[callee.params.index(kwname)] = tags
        return binding

    def _propagate_param_summaries(self, callee_q: str,
                                   binding: Dict[int, Set[Tag]]) -> None:
        """Lift the callee's per-param facts onto whatever parameters of
        *this* function (or constructor params behind ``self.x``) were
        forwarded — so a leak laundered through a wrapper chain is still
        attributed to its concrete source."""
        callee = self.ctx.summaries[callee_q]
        for idx, tags in binding.items():
            mods = callee.param_draw_modules.get(idx)
            sink = callee.param_sink.get(idx)
            if not mods and sink is None:
                continue
            for t in tags:
                if t[0] == "param":
                    p = int(t[1])
                    if mods:
                        self.summary.param_draw_modules.setdefault(
                            p, set()).update(mods)
                    if sink is not None:
                        self.summary.param_sink.setdefault(p, sink)
                elif t[0] == "attrparam":
                    init = self.project.lookup_method(t[1], "__init__")
                    if init is not None:
                        s = self.ctx.summaries[init.qname]
                        if mods:
                            s.param_draw_modules.setdefault(
                                int(t[2]), set()).update(mods)
                        if sink is not None:
                            s.param_sink.setdefault(int(t[2]), sink)

    def _apply_return_summary(self, callee_q: str,
                              binding: Dict[int, Set[Tag]]) -> Set[Tag]:
        summary = self.ctx.summaries[callee_q]
        out: Set[Tag] = set()
        if not summary.returns:
            callee_info = self.project.functions.get(callee_q)
            if callee_info is not None \
                    and callee_info.return_type == "float":
                return {("float", "ret")}
        for t in summary.returns:
            if t[0] == "param":
                out |= binding.get(int(t[1]), set())
            elif t[0] == "float":
                out.add(("float", "ret"))
            elif t[0] == "ms":
                out.add(("ms", "ret"))
            else:
                out.add(t)
        return out

    # -- cycle sinks ------------------------------------------------------ #
    def _check_direct_sink(self, call: ast.Call) -> None:
        label = self._sink_label(call)
        if label is None:
            return
        for arg in self._sink_args(call, label):
            tags = self.eval(arg)
            self.sink_args.append((arg, label, tags))
            for t in tags:
                if t[0] == "param":
                    self.summary.param_sink.setdefault(int(t[1]), label)
                elif t[0] == "attrparam":
                    cls, idx = t[1], int(t[2])
                    init = self.project.lookup_method(cls, "__init__")
                    if init is not None:
                        self.ctx.summaries[init.qname] \
                            .param_sink.setdefault(int(idx), label)

    def _sink_label(self, call: ast.Call) -> Optional[str]:
        fn = call.func
        if isinstance(fn, ast.Attribute) and fn.attr in ("at", "after",
                                                         "every"):
            recv_t = self.local.type_of_expr(fn.value)
            if recv_t is not None and recv_t.endswith(".Simulator"):
                return f"sim.{fn.attr}()"
            if _looks_like_sim_name(fn.value):
                return f"sim.{fn.attr}()"
            return None
        name = fn.id if isinstance(fn, ast.Name) else None
        if name in ("Compute", "Sleep", "Critical"):
            return f"{name}()"
        return None

    def _sink_args(self, call: ast.Call, label: str) -> List[ast.expr]:
        out: List[ast.expr] = []
        if label.startswith("sim."):
            if call.args:
                out.append(call.args[0])
            for kw in call.keywords:
                if kw.arg in ("time", "delay", "period", "start_offset"):
                    out.append(kw.value)
        elif label == "Critical()":
            if len(call.args) > 1:
                out.append(call.args[1])
        else:
            if call.args:
                out.append(call.args[0])
        return out


def _looks_like_sim_name(receiver: ast.expr) -> bool:
    if isinstance(receiver, ast.Name):
        return receiver.id in ("sim", "_sim")
    if isinstance(receiver, ast.Attribute):
        return receiver.attr in ("sim", "_sim")
    return False


def compute_summaries(project: Project,
                      max_rounds: int = 12) -> TaintContext:
    """Iterate function summaries to a fixpoint (bounded)."""
    ctx = TaintContext(project)
    for _ in range(max_rounds):
        before = {q: s.snapshot() for q, s in ctx.summaries.items()}
        for qname, finfo in project.functions.items():
            mod = project.modules[finfo.module]
            local = LocalTypes(project, mod, finfo)
            FunctionEvaluator(ctx, mod, finfo, local).run()
        after = {q: s.snapshot() for q, s in ctx.summaries.items()}
        if before == after:
            break
    return ctx


def evaluate_function(ctx: TaintContext,
                      finfo: FunctionInfo) -> FunctionEvaluator:
    """One more evaluation pass with frozen summaries, for reporting."""
    mod = ctx.project.modules[finfo.module]
    local = LocalTypes(ctx.project, mod, finfo)
    ev = FunctionEvaluator(ctx, mod, finfo, local)
    ev.run()
    return ev
