"""Runtime invariant checking for the VMM scheduler — a TSan for the sim.

:class:`SchedulerSanitizer` attaches to a running scheduler and validates
the paper's structural guarantees *after every scheduling decision*, not
just at the spots tests happen to probe.  It is strictly an observer: it
never schedules events, never mutates scheduler state, and therefore can
never change a run's outcome fingerprint — switching it on must only cost
wall-clock time.

Invariants checked
------------------
After every :meth:`SchedulerBase.schedule` call:

1. **Placement** — each VCPU occupies at most one PCPU, and PCPU/VCPU
   linkage is mutually consistent (``pcpu.current.pcpu is pcpu``).
2. **Runq membership** — a VCPU is in exactly one runq iff RUNNABLE,
   its ``home_pcpu_id`` matches the queue it sits in, and the global
   ``_queued`` counter agrees with the queues (delegates to
   :meth:`SchedulerBase.check_invariants`).
3. **Credit conservation** — between credit-assignment events the total
   credit in the system may only fall (debits); at an assignment it may
   rise by at most the period entitlement Cred_total plus the per-VCPU
   banking cap (Algorithm 3's clip bounds).
4. **Coschedule atomicity** — for a VM the policy gang-schedules
   (``_wants_cosched``), cap enforcement parks/unparks its VCPUs
   all-or-nothing; for a VM it does *not*, no gang window may be open
   and no VCPU may carry a coscheduling boost (HIGH→LOW must tear both
   down, paper Algorithm 4).

On every completed spinlock acquisition (hooked from
:meth:`repro.guest.kernel.GuestKernel._record_wait`):

5. **LHP provenance** — an over-threshold spin (wait > 2**delta_exp,
   paper Section 3.1) must trace back to a descheduled VCPU: if every
   VCPU of the VM was continuously online for the whole wait window,
   nothing was preempted and the "wait times are greatly increased [when]
   the VCPU holding a spinlock is descheduled" causal story is broken —
   that is a simulator bug, not contention.

Failure mode
------------
``strict=True`` (default) raises :class:`SanitizerViolation` at the
first breach — the scheduling decision that corrupted state is at the
top of the traceback.  ``strict=False`` records violations in
:attr:`violations` for post-run inspection (used by the macro-bench
gate, which asserts the list is empty after a full run).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import SchedulerInvariantError

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.spinlock import SpinLock
    from repro.hardware.machine import PCPU
    from repro.vmm.scheduler_base import SchedulerBase
    from repro.vmm.vm import VM

#: Slack for float credit arithmetic (credits are floats; debits and
#: shares accumulate rounding error over thousands of periods).
_EPS = 1e-6

#: Check id -> one-line description of every invariant this sanitizer
#: enforces at runtime.  :mod:`repro.analysis.parity` cross-references
#: this registry against the static rule tables; add an entry here (and
#: a row there) when adding a check, or the parity test fails loudly.
RUNTIME_CHECKS: Dict[str, str] = {
    "placement": "each VCPU on at most one PCPU; PCPU/VCPU linkage "
                 "mutually consistent",
    "runq-membership": "RUNNABLE iff in exactly one runq; home queue "
                       "and global counters agree (check_invariants)",
    "credit-conservation": "total credit only falls between "
                           "assignments; assignments respect the "
                           "Algorithm 3 ceiling",
    "gang-atomicity": "coscheduled VMs park/unpark all-or-nothing; "
                      "HIGH->LOW tears down window and boosts",
    "launch-mutex": "the coscheduling launch mutex is held at most one "
                    "IPI fan-out window",
    "lhp-provenance": "over-threshold spins trace to a descheduled "
                      "VCPU (no phantom lock-holder preemption)",
    "ff-quiescence": "fast-forwarded quiescent ticks replay their "
                     "scheduling pass step-wise and find it a no-op",
}


class SanitizerViolation(SchedulerInvariantError):
    """A scheduler invariant was broken while the sanitizer watched."""


class SchedulerSanitizer:
    """Validates scheduler invariants after every scheduling decision.

    Attach via :class:`repro.experiments.setup.Testbed` (``sanitize=True``
    or the ``REPRO_SANITIZE`` env var / ``--sanitize`` CLI flag), or wire
    manually::

        san = SchedulerSanitizer(scheduler)
        scheduler.sanitizer = san        # after_schedule / note_* hooks
        kernel.sanitizer = san           # note_spin_wait hook
    """

    __slots__ = (
        "scheduler", "strict", "violations", "schedules_checked",
        "assigns_checked", "spin_waits_checked", "ff_ticks_checked",
        "_credit_watermark",
    )

    def __init__(self, scheduler: "SchedulerBase",
                 strict: bool = True) -> None:
        self.scheduler = scheduler
        self.strict = strict
        #: Human-readable record of every breach (non-strict mode keeps
        #: accumulating; strict mode holds the one that raised).
        self.violations: List[str] = []
        self.schedules_checked = 0
        self.assigns_checked = 0
        self.spin_waits_checked = 0
        self.ff_ticks_checked = 0
        #: Highest legitimate total credit since the last injection point
        #: (assignment / VM add or remove).  Between injection points the
        #: total may only fall.
        self._credit_watermark = self._total_credit()

    # ------------------------------------------------------------------ #
    def _fail(self, message: str) -> None:
        self.violations.append(message)
        if self.strict:
            raise SanitizerViolation(f"sanitizer: {message}")

    def _total_credit(self) -> float:
        total = 0.0
        for vm in self.scheduler.vms:
            for vcpu in vm.vcpus:
                total += vcpu.credit
        return total

    # ------------------------------------------------------------------ #
    # Hooks called by the scheduler
    # ------------------------------------------------------------------ #
    def after_schedule(self, pcpu: "PCPU") -> None:
        """Full structural sweep after one scheduling event on ``pcpu``."""
        self.schedules_checked += 1
        self._check_placement()
        try:
            self.scheduler.check_invariants()
        except SanitizerViolation:
            raise
        except SchedulerInvariantError as exc:
            self._fail(str(exc))
        self._check_gang_atomicity()
        self._check_launch_mutex()
        self._check_credit_monotonic()

    def note_assign(self) -> None:
        """Called after :meth:`SchedulerBase.assign_credits` completes."""
        self.assigns_checked += 1
        total = self._total_credit()
        ceiling = self._assign_ceiling()
        if total > ceiling + _EPS:
            self._fail(
                f"credit conservation: total {total:.3f} after assignment "
                f"exceeds the Algorithm 3 ceiling {ceiling:.3f}")
        self._credit_watermark = total

    def note_credit_event(self) -> None:
        """A legitimate out-of-band credit change (VM added/removed):
        re-baseline the conservation watermark."""
        self._credit_watermark = self._total_credit()

    def check_ff_quiescence(self, pcpu: "PCPU") -> None:
        """The quiescent-tick fast-forward claims the scheduling pass on
        ``pcpu`` would be a strict no-op.  Don't trust it: replay the
        pass step-wise (``_schedule`` for real) and assert the scheduler
        state signature is untouched.  With the sanitizer attached,
        fast-forward therefore *skips nothing* — every claimed-quiescent
        tick is executed and cross-checked, which is what keeps the
        optimisation honest under ``--sanitize`` runs.

        Replaying a genuine no-op cannot change the run's fingerprint;
        if the replay does mutate state, the claim was wrong and this
        check fails (in non-strict mode the run is already divergent at
        that point — the violation record is the authoritative outcome).
        """
        self.ff_ticks_checked += 1
        before = self._quiescence_signature()
        self.scheduler._schedule(pcpu)
        after = self._quiescence_signature()
        if before != after:
            self._fail(
                f"ff quiescence: tick on PCPU {pcpu.id} was fast-forwarded "
                f"as a provable no-op, but the step-wise replay changed "
                f"scheduler state (before={before!r}, after={after!r})")

    def _quiescence_signature(self) -> tuple:
        """Everything a scheduling pass could observably change: PCPU
        occupancy, runq contents/order, the queue counter, the context
        switch counter, and the side-effect counters of the stateful
        policies (skew stops, coscheduling launches, relocations)."""
        sched = self.scheduler
        return (
            sched.context_switches,
            sched._queued,
            tuple(id(p.current) for p in sched.machine),
            tuple(tuple(id(v) for v in sched.runqs[p.id])
                  for p in sched.machine),
            getattr(sched, "skew_stops", 0),
            getattr(sched, "cosched_launches", 0),
            getattr(sched, "relocations", 0),
        )

    def note_spin_wait(self, vm: "VM", lock: "SpinLock", wait: int) -> None:
        """LHP provenance check for one completed spinlock acquisition."""
        self.spin_waits_checked += 1
        threshold = vm.config.monitor.over_threshold_cycles
        if wait <= threshold:
            return
        now = self.scheduler.sim.now
        since = now - wait
        for vcpu in vm.vcpus:
            online_since = vcpu._online_since
            if online_since is None or online_since > since:
                # This VCPU was offline (or came online mid-wait): the
                # over-threshold spin has a preemption to blame.
                return
        self._fail(
            f"LHP provenance: {vm.name} waited {wait} cycles "
            f"(> 2^{vm.config.monitor.delta_exp}) on lock {lock.name!r} "
            f"but every VCPU was online for the whole window "
            f"[{since}, {now}] — no descheduled holder can explain it")

    # ------------------------------------------------------------------ #
    # Individual invariants
    # ------------------------------------------------------------------ #
    def _check_placement(self) -> None:
        """Each VCPU on at most one PCPU; linkage mutually consistent."""
        occupant_of: Dict[int, int] = {}
        for pcpu in self.scheduler.machine:
            vcpu = pcpu.current
            if vcpu is None:
                continue
            prev = occupant_of.get(id(vcpu))
            if prev is not None:
                self._fail(f"placement: {vcpu.name} current on PCPUs "
                           f"{prev} and {pcpu.id} simultaneously")
            occupant_of[id(vcpu)] = pcpu.id
            if vcpu.pcpu is not pcpu:
                self._fail(f"placement: PCPU {pcpu.id} runs {vcpu.name} "
                           f"but the VCPU points at "
                           f"{getattr(vcpu.pcpu, 'id', None)}")

    def _check_gang_atomicity(self) -> None:
        """All-or-nothing gang entry/exit (paper Algorithm 4)."""
        sched = self.scheduler
        now = sched.sim.now
        for vm in sched.vms:
            if sched._wants_cosched(vm):
                if not sched.config.work_conserving:
                    parked = {v.parked for v in vm.vcpus}
                    if len(parked) > 1:
                        detail = ", ".join(
                            f"{v.name}={'P' if v.parked else 'R'}"
                            for v in vm.vcpus)
                        self._fail(
                            f"gang atomicity: coscheduled {vm.name} has "
                            f"mixed park state under a cap ({detail})")
            else:
                if sched._gang_until.get(vm.id, 0) > now:
                    self._fail(
                        f"gang atomicity: {vm.name} is not coscheduled "
                        f"but its gang window is still open "
                        f"(until {sched._gang_until[vm.id]}, now {now})")
                stale = [v.name for v in vm.vcpus if v.boosted]
                if stale:
                    self._fail(
                        f"gang atomicity: {vm.name} is not coscheduled "
                        f"but {', '.join(stale)} still carry a "
                        f"coscheduling boost")

    def _check_launch_mutex(self) -> None:
        """The coscheduling launch mutex is held only while an IPI fan-out
        is in flight (paper Section 4.1): one IPI latency window plus the
        release event's own cycle.  A longer hold means the release path
        was lost (exception, cancelled event) and gang launching would
        silently stop for the rest of the run."""
        sched = self.scheduler
        held = getattr(sched, "_cosched_launching", False)
        if not held:
            return
        since = getattr(sched, "_cosched_mutex_since", None)
        now = sched.sim.now
        window = sched.ipi.latency + 1
        if since is None:
            self._fail("launch mutex: held with no acquisition timestamp")
        elif now - since > window:
            self._fail(
                f"launch mutex: held since cycle {since} "
                f"({now - since} cycles > one IPI latency window of "
                f"{window}) — the release event was lost")

    def _check_credit_monotonic(self) -> None:
        """Between assignments, total credit may only fall (debits)."""
        total = self._total_credit()
        if total > self._credit_watermark + _EPS:
            self._fail(
                f"credit conservation: total rose from "
                f"{self._credit_watermark:.3f} to {total:.3f} outside an "
                f"assignment event")
        else:
            # Ratchet down so a later illegitimate refill inside the same
            # period is caught against the tightest known bound.
            self._credit_watermark = total

    def _assign_ceiling(self) -> float:
        """Upper bound on total credit immediately after Algorithm 3.

        Each VCPU is clipped to ``hi = inc_max + burst*(1+cap)`` where
        ``inc_max <= vm_credit`` (a VM's whole period entitlement landing
        on one VCPU is the worst case), so the system total is bounded by
        ``sum_vm |C(Vi)| * (vm_credit + burst*(1+cap))``.
        """
        sched = self.scheduler
        cfg = sched.config
        total_weight = sum(vm.weight for vm in sched.vms)
        if total_weight <= 0:
            return self._total_credit()
        cred_total = (len(sched.machine) * cfg.credit_per_tick
                      * cfg.assign_slots)
        burst = cfg.credit_per_tick * cfg.assign_slots
        bank = burst * (1.0 + cfg.credit_cap_periods)
        ceiling = 0.0
        for vm in sched.vms:
            vm_credit = cred_total * (vm.weight / total_weight)
            ceiling += len(vm.vcpus) * (vm_credit + bank)
        return ceiling

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Counters for reporting: checks run and violations found."""
        return {
            "schedules_checked": self.schedules_checked,
            "assigns_checked": self.assigns_checked,
            "spin_waits_checked": self.spin_waits_checked,
            "ff_ticks_checked": self.ff_ticks_checked,
            "violations": len(self.violations),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<SchedulerSanitizer strict={self.strict} "
                f"checks={self.schedules_checked} "
                f"violations={len(self.violations)}>")
