"""SARIF 2.1.0 rendering for the whole-program lint report.

One ``run`` per invocation: the tool driver advertises every active rule
(per-file and interprocedural), each violation becomes a ``result`` with
a physical location, the engine's content fingerprint rides in
``partialFingerprints`` (so SARIF viewers dedupe across commits the same
way the baseline does), and ``baselineState`` distinguishes ``new``
findings from ``unchanged`` grandfathered ones.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis import simlint
from repro.analysis.engine import AnalysisReport, Project, _fingerprints
from repro.analysis.simlint import Violation

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

TOOL_NAME = "simlint"
TOOL_URI = "https://example.invalid/repro/docs/static_analysis.md"


def _rule_descriptors(rule_ids: Sequence[str]) -> List[Dict[str, object]]:
    from repro.analysis.rules_interproc import INTERPROC_RULES
    merged = {**simlint.RULES, **INTERPROC_RULES}
    out: List[Dict[str, object]] = []
    for rid in sorted(rule_ids):
        desc = merged.get(rid, rid)
        out.append({
            "id": rid,
            "shortDescription": {"text": desc},
            "defaultConfiguration": {"level": "error"},
        })
    return out


def _artifact_uri(path: str, project: Optional[Project]) -> str:
    if project is not None:
        return project.rel_path(Path(path)).replace("\\", "/")
    return str(path).replace("\\", "/")


def _result(v: Violation, uri: str, fingerprint: str,
            baseline_state: str) -> Dict[str, object]:
    return {
        "ruleId": v.rule,
        "level": "error",
        "message": {"text": v.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": uri},
                "region": {"startLine": v.line, "startColumn": v.col},
            },
        }],
        "partialFingerprints": {"simlintContent/v1": fingerprint},
        "baselineState": baseline_state,
    }


def render_sarif(report: AnalysisReport,
                 sources: Dict[str, List[str]],
                 project: Optional[Project] = None) -> str:
    """Serialize an :class:`AnalysisReport` as a SARIF 2.1.0 document."""
    fps = _fingerprints(report.violations, sources)
    new = set(map(id, report.new))
    results = []
    for v, fp in zip(report.violations, fps):
        uri = _artifact_uri(v.path, project)
        state = "new" if id(v) in new else "unchanged"
        results.append(_result(v, uri, fp, state))
    rule_ids = sorted({v.rule for v in report.violations}
                      | set(simlint.RULES))
    if report.interprocedural:
        from repro.analysis.rules_interproc import INTERPROC_RULES
        rule_ids = sorted(set(rule_ids) | set(INTERPROC_RULES))
    doc = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": _rule_descriptors(rule_ids),
                },
            },
            "columnKind": "unicodeCodePoints",
            "results": results,
            "properties": {
                "filesChecked": report.files_checked,
                "pragmasUsed": report.pragmas_used,
                "waiversByRule": dict(sorted(
                    report.waivers_by_rule.items())),
                "grandfathered": len(report.grandfathered),
                "staleBaselineEntries": len(report.stale_baseline),
                "interprocedural": report.interprocedural,
            },
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
