"""Project call graph over a :class:`repro.analysis.engine.Project`.

Every function/method body is walked once; each ``ast.Call`` is resolved
to one or more callee qualified names:

* plain names through the module's import/alias tables;
* ``module.attr`` through import resolution (``time.time`` ->
  external node ``time.time``);
* ``self.method()`` through the owning class's project-local MRO;
* attribute receivers through the engine's type layer (annotations,
  ``self.x = <typed param>``, constructor assignments) with **virtual
  dispatch**: a call on a ``SchedulerBase``-typed receiver adds edges to
  every project subclass override — this is how the scheduler registry's
  indirection (``make_scheduler(name)(...)``) stays visible;
* calls on a ``Type[X]``-returning factory's result dispatch to ``X``
  and all its subclasses' constructors.

External callees (stdlib, numpy) become leaf nodes named by their
resolved dotted path, which is exactly what the transitive wall-clock /
entropy reachability rule consumes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import (FunctionInfo, ModuleInfo, Project,
                                   _TYPE_OF, _dotted_name)

__all__ = ["CallGraph", "CallSite", "LocalTypes", "build_call_graph"]


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge with its source anchor."""

    caller: str      #: caller function qname
    callee: str      #: callee qname (project function or external dotted)
    line: int
    col: int
    external: bool   #: True when the callee is not a project function


class LocalTypes:
    """Single-pass local variable typing inside one function body.

    Tracks ``x = ClassName(...)``, ``x = self.attr`` (typed attribute),
    ``x = f(...)`` with an annotated return, annotated assignments and
    parameter annotations.  Deliberately flow-insensitive past the first
    binding — good enough for the idioms this codebase uses, and wrong
    bindings only widen the call graph (never hide an edge).
    """

    def __init__(self, project: Project, mod: ModuleInfo,
                 finfo: FunctionInfo) -> None:
        self.project = project
        self.mod = mod
        self.finfo = finfo
        self.types: Dict[str, str] = dict(finfo.param_types)
        if finfo.cls is not None:
            self.types.setdefault("self", finfo.cls)
        for stmt in ast.walk(finfo.node):
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                anno = project.resolve_annotation(mod, stmt.annotation)
                if anno is not None:
                    self.types.setdefault(stmt.target.id, anno)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                inferred = self.type_of_expr(stmt.value)
                if inferred is not None:
                    self.types.setdefault(stmt.targets[0].id, inferred)

    def type_of_expr(self, expr: ast.expr) -> Optional[str]:
        """Static type qname of an expression, or None."""
        if isinstance(expr, ast.Name):
            return self.types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.type_of_expr(expr.value)
            if base is not None and not base.startswith(_TYPE_OF):
                return self.project.attr_type(base, expr.attr)
            # module attribute: resolve through imports
            dotted = _dotted_name(expr)
            if dotted is not None:
                resolved = self.project.resolve_name(self.mod, dotted)
                if resolved in self.project.classes:
                    return _TYPE_OF + resolved
            return None
        if isinstance(expr, ast.Call):
            return self._type_of_call(expr)
        return None

    def _type_of_call(self, call: ast.Call) -> Optional[str]:
        fn = call.func
        dotted = _dotted_name(fn)
        if dotted is not None:
            qname = self.project.resolve_name(self.mod, dotted)
            if qname in self.project.classes:
                return qname          # constructor -> instance
            callee = self.project.functions.get(qname)
            if callee is None and isinstance(fn, ast.Attribute):
                recv_t = self.type_of_expr(fn.value)
                if recv_t is not None:
                    m = self.project.lookup_method(recv_t, fn.attr)
                    if m is not None:
                        callee = m
            if callee is not None and callee.return_type is not None:
                return callee.return_type
            return None
        if isinstance(fn, ast.Call):
            # f(...)(...): if f returns Type[X], the outer call builds X.
            inner = self._type_of_call(fn)
            if inner is not None and inner.startswith(_TYPE_OF):
                return inner[len(_TYPE_OF):]
        if isinstance(fn, ast.Attribute):
            recv_t = self.type_of_expr(fn.value)
            if recv_t is not None:
                if recv_t.startswith(_TYPE_OF):
                    return None
                m = self.project.lookup_method(recv_t, fn.attr)
                if m is not None and m.return_type is not None:
                    return m.return_type
        return None


class CallGraph:
    """Adjacency over function qnames, with per-edge call sites."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.edges: Dict[str, List[CallSite]] = {}
        self.callers: Dict[str, Set[str]] = {}

    def add(self, site: CallSite) -> None:
        self.edges.setdefault(site.caller, []).append(site)
        self.callers.setdefault(site.callee, set()).add(site.caller)

    def callees_of(self, qname: str) -> Sequence[CallSite]:
        return self.edges.get(qname, ())

    def reachable_externals(
            self, start: str,
            stop_rules: Optional[Set[str]] = None,
    ) -> Dict[str, List[CallSite]]:
        """Map external callee -> shortest call-site chain from ``start``.

        The chain lists the internal hops in order, ending with the site
        of the external call itself.
        """
        del stop_rules
        chains: Dict[str, List[CallSite]] = {}
        seen: Set[str] = {start}
        frontier: List[Tuple[str, List[CallSite]]] = [(start, [])]
        while frontier:
            next_frontier: List[Tuple[str, List[CallSite]]] = []
            for qname, chain in frontier:
                for site in self.callees_of(qname):
                    if site.external:
                        if site.callee not in chains:
                            chains[site.callee] = chain + [site]
                        continue
                    if site.callee in seen:
                        continue
                    seen.add(site.callee)
                    next_frontier.append((site.callee, chain + [site]))
            frontier = next_frontier
        return chains


def build_call_graph(project: Project) -> CallGraph:
    """Resolve every call in every project function into graph edges."""
    graph = CallGraph(project)
    for qname, finfo in project.functions.items():
        mod = project.modules[finfo.module]
        local = LocalTypes(project, mod, finfo)
        for node in ast.walk(finfo.node):
            if isinstance(node, ast.Call):
                for callee, external in _resolve_call(project, mod, local,
                                                      node):
                    graph.add(CallSite(
                        caller=qname, callee=callee, line=node.lineno,
                        col=node.col_offset + 1, external=external))
    return graph


def _constructor_targets(project: Project, class_qname: str
                         ) -> Iterable[Tuple[str, bool]]:
    """Edges for constructing ``class_qname`` or any subclass of it."""
    for cq in [class_qname, *sorted(project.subclasses.get(class_qname,
                                                           ()))]:
        init = project.lookup_method(cq, "__init__")
        if init is not None:
            yield init.qname, False


def _method_targets(project: Project, recv_type: str, method: str
                    ) -> List[Tuple[str, bool]]:
    """Static target + virtual-dispatch overrides for one method call."""
    out: List[Tuple[str, bool]] = []
    base = project.lookup_method(recv_type, method)
    if base is not None:
        out.append((base.qname, False))
    for sub in sorted(project.subclasses.get(recv_type, ())):
        cinfo = project.classes.get(sub)
        if cinfo is not None and method in cinfo.methods:
            out.append((cinfo.methods[method].qname, False))
    return out


def _resolve_call(project: Project, mod: ModuleInfo, local: LocalTypes,
                  call: ast.Call) -> List[Tuple[str, bool]]:
    """All (callee qname, is_external) targets for one call node."""
    fn = call.func
    # f(...)(...) — Type[X] factories (the scheduler registry pattern).
    if isinstance(fn, ast.Call):
        inner = local._type_of_call(fn)
        if inner is not None and inner.startswith(_TYPE_OF):
            return list(_constructor_targets(project,
                                             inner[len(_TYPE_OF):]))
        return []
    dotted = _dotted_name(fn)
    if isinstance(fn, ast.Name):
        # Local variable holding a class object (Type[X]).
        held = local.types.get(fn.id)
        if held is not None and held.startswith(_TYPE_OF):
            return list(_constructor_targets(project, held[len(_TYPE_OF):]))
        qname = project.resolve_name(mod, fn.id)
        if qname in project.classes:
            return list(_constructor_targets(project, qname))
        if qname in project.functions:
            return [(qname, False)]
        if qname != fn.id or fn.id in mod.imports:
            return [(qname, True)]      # resolved external symbol
        return []                        # builtin / unknown local
    if isinstance(fn, ast.Attribute):
        recv = fn.value
        recv_type = local.type_of_expr(recv)
        if recv_type is not None:
            if recv_type.startswith(_TYPE_OF):
                cls = recv_type[len(_TYPE_OF):]
                if fn.attr == "__init__" or fn.attr == "__call__":
                    return list(_constructor_targets(project, cls))
                return _method_targets(project, cls, fn.attr)
            if recv_type in project.classes:
                targets = _method_targets(project, recv_type, fn.attr)
                if targets:
                    return targets
                return []
            # External receiver type (e.g. numpy.random.Generator).
            return [(f"{recv_type}.{fn.attr}", True)]
        if dotted is not None:
            qname = project.resolve_name(mod, dotted)
            if qname in project.functions:
                return [(qname, False)]
            if qname in project.classes:
                return list(_constructor_targets(project, qname))
            head = dotted.split(".")[0]
            if head in mod.imports or head in mod.assigns:
                return [(qname, True)]
            prefix = qname.rsplit(".", 1)[0]
            if prefix in project.modules:
                # attribute of a project module that is not a function
                # (constant, registry dict): no edge.
                return []
        # Unresolvable receiver: drop the edge rather than guess.
        return []
    return []
