"""simlint — sim-specific static analysis for the reproduction.

The whole value of this codebase rests on two properties: **bit-identical
determinism** (the perf harness's fingerprint gate) and **cycle-exact
integer time** (the event engine refuses fractional timestamps).  Both are
easy to break with ordinary-looking Python — a ``time.time()`` call in a
trace label, a float division feeding ``sim.after``, iteration over a set
whose order leaks into scheduling decisions.  simlint walks the AST of
every source file and enforces the project's determinism contract the way
a sanitizer enforces memory safety: mechanically, on every commit.

Rules
-----
Rules are scoped.  *Simulation scope* covers the packages whose code runs
inside the simulated world (``repro.sim``, ``repro.vmm``, ``repro.guest``,
``repro.asman``, ``repro.hardware``); *hot-path scope* covers the modules
whose classes are instantiated per-event (the Task/Event/TraceRecord
tier); everything else applies package-wide.

``wall-clock``        [sim]  no ``time`` / ``datetime`` imports or calls —
                             the simulated clock is ``sim.now``, wall time
                             makes runs host-dependent.
``random-module``     [sim]  no stdlib ``random``, no numpy legacy global
                             RNG, no unseeded ``default_rng()`` — all
                             randomness flows through named, seeded
                             :class:`repro.sim.rng.RngStreams`.
``nondet-iter``       [sim]  no iteration over sets / ``vars()`` /
                             ``dir()`` / ``os.listdir`` results — their
                             order is not part of the language contract
                             and can differ across runs or versions.
``float-into-cycles`` [sim]  no float literals or true division in the
                             time arguments of ``sim.at/after/every`` or
                             in cycle-denominated op constructors
                             (``Compute``/``Sleep``/``Critical``); convert
                             through :mod:`repro.units` producers or
                             integerize explicitly.
``silent-truncation`` [sim]  no ``int(a / b)`` — truncating a true
                             division silently discards cycles; use
                             floor division.
``mutable-default``   [all]  no mutable default arguments.
``slots-required``    [hot]  classes in hot-path modules must declare
                             ``__slots__`` (per-event allocation cost and
                             accidental-attribute protection).
``bare-except``       [all]  no bare ``except:`` / ``except
                             BaseException:`` without re-raise, and no
                             ``except ...: pass`` silent swallows.

Escape hatch
------------
Any violation can be waived in place with an inline pragma on the
offending line::

    jitter = base * 1.5  # simlint: ignore[float-into-cycles]

``# simlint: ignore`` (no rule list) waives every rule on that line.
Pragmas are deliberate, reviewable markers — the linter counts them in
its JSON report so a creeping pile of waivers is visible.

Usage
-----
``python -m repro lint [paths...]`` (see :func:`run`), or
programmatically::

    from repro.analysis import lint_paths
    violations = lint_paths(["src/repro"])
"""

from __future__ import annotations

import ast
import io
import json
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "LintReport",
    "RULES",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "parse_pragmas",
    "render_json",
    "render_text",
]

#: Rule id -> one-line description (the CLI's --list-rules output).
RULES: Dict[str, str] = {
    "wall-clock": "no wall-clock time sources in simulation code",
    "random-module": "no stdlib random / unseeded or global numpy RNG",
    "nondet-iter": "no iteration over unordered collections",
    "float-into-cycles": "no float arithmetic feeding cycle-valued args",
    "silent-truncation": "no int() around a true division",
    "mutable-default": "no mutable default arguments",
    "slots-required": "hot-path classes must declare __slots__",
    "bare-except": "no bare/blanket except or silent except-pass",
}

#: Sub-packages whose code executes inside the simulated world.
SIM_PACKAGES: Tuple[str, ...] = ("sim", "vmm", "guest", "asman", "hardware",
                                 "faults")

#: Host-side tooling sub-packages: code that orchestrates simulations
#: from outside (process pools, on-disk caches, benchmark timing, this
#: checker itself) and legitimately touches wall clocks and the OS.
#: Sim-scoped rules never apply here, even under ``--assume-sim``.
TOOLING_PACKAGES: Tuple[str, ...] = ("parallel", "perf", "analysis",
                                     "conformance")

#: (subpackage, module) pairs holding per-event ("hot tier") classes.
HOT_MODULES: Set[Tuple[str, str]] = {
    ("sim", "engine"),
    ("sim", "tracing"),
    ("guest", "task"),
    ("guest", "spinlock"),
    ("guest", "futex"),
    ("guest", "flags"),
    ("vmm", "vm"),
    ("hardware", "machine"),
}

_WALL_CLOCK_MODULES = {"time", "datetime"}
_WALL_CLOCK_TIME_ATTRS = {
    "time", "monotonic", "perf_counter", "process_time", "time_ns",
    "monotonic_ns", "perf_counter_ns", "localtime", "gmtime",
}
_WALL_CLOCK_DT_ATTRS = {"now", "utcnow", "today"}
#: numpy legacy global-state RNG entry points (np.random.<attr>).
_NUMPY_LEGACY_RNG = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "seed", "uniform",
    "normal", "standard_normal", "exponential", "poisson", "bytes",
}
_UNORDERED_FACTORIES = {"set", "frozenset", "vars", "globals", "locals"}
_LISTING_ATTRS = {"listdir", "scandir", "iterdir", "glob", "iglob"}
#: Callables blessing a cycle argument (explicit, reviewable integerizing).
_INTEGERIZERS = {"int", "round", "floor", "ceil", "len", "max", "min", "abs"}
#: repro.units producers returning integer cycles.
_UNITS_PRODUCERS = {"ms", "us", "seconds"}
#: Constructors whose first argument is denominated in cycles.
_CYCLE_OPS = {"Compute", "Sleep"}
#: name -> index of the cycle-valued argument for mixed-arg constructors.
_CYCLE_OP_ARGS = {"Critical": 1}  # Critical(lock, hold)


@dataclass(frozen=True)
class Violation:
    """One rule breach at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}


@dataclass
class LintReport:
    """Aggregate outcome of one lint run."""

    violations: List[Violation]
    files_checked: int
    pragmas_used: int
    #: rule id -> number of pragma waivers that fired for it (the audit
    #: trail behind ``--max-waivers``); keys are sorted on render.
    waivers_by_rule: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


# --------------------------------------------------------------------- #
# Pragma parsing
# --------------------------------------------------------------------- #
def _parse_pragmas(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> waived rule set (None = every rule).

    Pragmas ride in comments so they survive ``ast`` parsing, which drops
    them; we re-tokenize to recover positions.
    """
    pragmas: Dict[int, Optional[Set[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type is not tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith("simlint:"):
                continue
            directive = text[len("simlint:"):].strip()
            if not directive.startswith("ignore"):
                continue
            rest = directive[len("ignore"):].strip()
            if rest.startswith("[") and rest.endswith("]"):
                rules = {r.strip() for r in rest[1:-1].split(",") if r.strip()}
                pragmas[tok.start[0]] = rules
            else:
                pragmas[tok.start[0]] = None  # waive everything
    except tokenize.TokenError:
        return pragmas  # syntax errors surface through ast.parse instead
    return pragmas


def parse_pragmas(source: str) -> Dict[int, Optional[Set[str]]]:
    """Public pragma table: line -> waived rule set (None = all rules).

    Used by :mod:`repro.analysis.engine` to apply the same inline-waiver
    semantics to interprocedural findings.
    """
    return _parse_pragmas(source)


# --------------------------------------------------------------------- #
# RNG import-alias tables (satellite of the random-module rule)
# --------------------------------------------------------------------- #
@dataclass
class _RngAliases:
    """Local names behind which RNG entry points can hide.

    ``from random import random as _r`` and ``import numpy.random as
    npr`` both defeat literal name matching; one pre-pass over the
    import statements recovers the mapping so call checks work on
    resolved origins.
    """

    #: aliases of the stdlib ``random`` module itself.
    random_mods: Set[str] = field(default_factory=lambda: {"random"})
    #: aliases of the ``numpy`` module.
    np_mods: Set[str] = field(default_factory=lambda: {"np", "numpy"})
    #: aliases of the ``numpy.random`` submodule.
    np_random_mods: Set[str] = field(default_factory=set)
    #: local name -> original ``random.<name>`` function.
    random_funcs: Dict[str, str] = field(default_factory=dict)
    #: local name -> original ``numpy.random.<name>`` function.
    np_random_funcs: Dict[str, str] = field(default_factory=dict)


def _collect_rng_aliases(tree: ast.Module) -> _RngAliases:
    aliases = _RngAliases()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname
                if alias.name == "random":
                    aliases.random_mods.add(local or "random")
                elif alias.name == "numpy":
                    aliases.np_mods.add(local or "numpy")
                elif alias.name == "numpy.random" and local:
                    aliases.np_random_mods.add(local)
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                if node.module == "random":
                    aliases.random_funcs[local] = alias.name
                elif node.module == "numpy" and alias.name == "random":
                    aliases.np_random_mods.add(local)
                elif node.module == "numpy.random":
                    aliases.np_random_funcs[local] = alias.name
    return aliases


# --------------------------------------------------------------------- #
# Expression helpers
# --------------------------------------------------------------------- #
def _is_units_producer(call: ast.Call) -> bool:
    """True for ``units.ms(...)`` / ``us`` / ``seconds`` (and bare names
    imported from repro.units)."""
    fn = call.func
    if isinstance(fn, ast.Attribute) and fn.attr in _UNITS_PRODUCERS \
            and isinstance(fn.value, ast.Name) and fn.value.id == "units":
        return True
    if isinstance(fn, ast.Name) and fn.id in _UNITS_PRODUCERS:
        return True
    return False


def _is_integerizer(call: ast.Call) -> bool:
    fn = call.func
    if isinstance(fn, ast.Name) and fn.id in _INTEGERIZERS:
        return True
    if isinstance(fn, ast.Attribute) and fn.attr in ("floor", "ceil"):
        return True
    return False


def _float_taint(expr: ast.expr) -> Optional[ast.expr]:
    """Return the first node proving float arithmetic reaches ``expr``.

    Subtrees wrapped in an explicit integerizer (``int``/``round``/
    ``math.floor``...) or produced by a :mod:`repro.units` converter are
    trusted: the conversion point is visible and auditable.
    """
    stack: List[ast.expr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            if _is_units_producer(node) or _is_integerizer(node):
                continue  # blessed boundary: don't look inside
            stack.extend(node.args)
            stack.extend(kw.value for kw in node.keywords)
            continue
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return node
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return node
        stack.extend(ast.iter_child_nodes(node))  # type: ignore[arg-type]
    return None


def _looks_like_sim(receiver: ast.expr) -> bool:
    """Heuristic: is this attribute receiver a Simulator handle?

    Matches ``sim``, ``self.sim``, ``self._sim``, ``tb.sim`` — any name
    or attribute whose final component is ``sim``/``_sim``.
    """
    if isinstance(receiver, ast.Name):
        return receiver.id in ("sim", "_sim")
    if isinstance(receiver, ast.Attribute):
        return receiver.attr in ("sim", "_sim")
    return False


def _mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("list", "dict", "set", "bytearray",
                                "defaultdict", "deque", "Counter",
                                "OrderedDict")
    return False


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    return False


def _annotation_is_set(node: ast.expr) -> bool:
    target = node.value if isinstance(node, ast.Subscript) else node
    if isinstance(target, ast.Name):
        return target.id in ("Set", "set", "frozenset", "FrozenSet",
                            "MutableSet")
    if isinstance(target, ast.Attribute):
        return target.attr in ("Set", "FrozenSet", "MutableSet")
    return False


_EXEMPT_BASES = {
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag", "Protocol",
    "Exception", "BaseException", "NamedTuple", "TypedDict", "ABC",
}


def _class_exempt_from_slots(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else \
            base.id if isinstance(base, ast.Name) else ""
        if name in _EXEMPT_BASES or name.endswith("Error"):
            return True
    for dec in node.decorator_list:
        # @dataclass(slots=True) generates __slots__ itself.
        if isinstance(dec, ast.Call):
            fn = dec.func
            fn_name = fn.attr if isinstance(fn, ast.Attribute) else \
                fn.id if isinstance(fn, ast.Name) else ""
            if fn_name == "dataclass" and any(
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in dec.keywords):
                return True
    return False


def _defines_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) \
                    and stmt.target.id == "__slots__":
                return True
    return False


# --------------------------------------------------------------------- #
# The checker
# --------------------------------------------------------------------- #
class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, sim_scope: bool, hot_module: bool,
                 rules: Set[str],
                 rng_aliases: Optional[_RngAliases] = None) -> None:
        self.path = path
        self.sim_scope = sim_scope
        self.hot_module = hot_module
        self.rules = rules
        self.rng = rng_aliases or _RngAliases()
        self.found: List[Violation] = []
        #: Names bound to set expressions in the current function.
        self._set_names: List[Set[str]] = []

    # -- plumbing ------------------------------------------------------- #
    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if rule not in self.rules:
            return
        self.found.append(Violation(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message))

    # -- imports -------------------------------------------------------- #
    def visit_Import(self, node: ast.Import) -> None:
        if self.sim_scope:
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _WALL_CLOCK_MODULES:
                    self._emit(node, "wall-clock",
                               f"import of {alias.name!r}: simulation code "
                               f"must use sim.now, not wall-clock time")
                elif root == "random":
                    self._emit(node, "random-module",
                               "import of stdlib 'random': use seeded "
                               "repro.sim.rng.RngStreams instead")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.sim_scope and node.module:
            root = node.module.split(".")[0]
            if root in _WALL_CLOCK_MODULES:
                self._emit(node, "wall-clock",
                           f"import from {node.module!r}: simulation code "
                           f"must use sim.now, not wall-clock time")
            elif root == "random":
                self._emit(node, "random-module",
                           "import from stdlib 'random': use seeded "
                           "repro.sim.rng.RngStreams instead")
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------- #
    def visit_Call(self, node: ast.Call) -> None:
        if self.sim_scope:
            self._check_wall_clock_call(node)
            self._check_random_call(node)
            self._check_cycle_args(node)
            self._check_silent_truncation(node)
        self.generic_visit(node)

    def _check_wall_clock_call(self, node: ast.Call) -> None:
        fn = node.func
        if not isinstance(fn, ast.Attribute):
            return
        base = fn.value
        if isinstance(base, ast.Name) and base.id == "time" \
                and fn.attr in _WALL_CLOCK_TIME_ATTRS:
            self._emit(node, "wall-clock",
                       f"time.{fn.attr}() in simulation code: the only "
                       f"clock is sim.now")
        elif isinstance(base, ast.Name) and base.id in ("datetime", "date") \
                and fn.attr in _WALL_CLOCK_DT_ATTRS:
            self._emit(node, "wall-clock",
                       f"{base.id}.{fn.attr}() in simulation code: the "
                       f"only clock is sim.now")

    def _check_random_call(self, node: ast.Call) -> None:
        fn = node.func
        if isinstance(fn, ast.Name):
            # Functions imported out of the RNG modules, possibly under
            # an alias: ``from random import random as _r; _r()``.
            orig = self.rng.random_funcs.get(fn.id)
            if orig is not None:
                self._emit(node, "random-module",
                           f"{fn.id}() is stdlib random.{orig}: "
                           f"process-global state; use a named "
                           f"RngStreams stream")
                return
            orig = self.rng.np_random_funcs.get(fn.id)
            if orig is not None:
                if orig in _NUMPY_LEGACY_RNG:
                    self._emit(node, "random-module",
                               f"{fn.id}() is numpy.random.{orig}: legacy "
                               f"global-state RNG; use a named RngStreams "
                               f"stream")
                elif orig == "default_rng" and not node.args \
                        and not node.keywords:
                    self._emit(node, "random-module",
                               f"{fn.id}() is numpy.random.default_rng "
                               f"without a seed: draws OS entropy; pass "
                               f"an explicit seed")
            return
        if not isinstance(fn, ast.Attribute):
            return
        base = fn.value
        # random.<anything>() — including ``import random as rnd``.
        if isinstance(base, ast.Name) and base.id in self.rng.random_mods:
            self._emit(node, "random-module",
                       f"{base.id}.{fn.attr}(): stdlib RNG has "
                       f"process-global state; use a named RngStreams "
                       f"stream")
            return
        # np.random.<legacy>() — also through ``import numpy.random as
        # npr`` / ``from numpy import random as nr``.
        np_random = (
            isinstance(base, ast.Attribute) and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in self.rng.np_mods
        ) or (isinstance(base, ast.Name)
              and base.id in self.rng.np_random_mods)
        if np_random:
            if fn.attr in _NUMPY_LEGACY_RNG:
                self._emit(node, "random-module",
                           f"numpy.random.{fn.attr}(): legacy "
                           f"global-state RNG; use a named RngStreams "
                           f"stream")
            elif fn.attr == "default_rng" and not node.args \
                    and not node.keywords:
                self._emit(node, "random-module",
                           "numpy.random.default_rng() without a seed "
                           "draws OS entropy; pass an explicit seed")

    def _check_cycle_args(self, node: ast.Call) -> None:
        fn = node.func
        cycle_args: List[ast.expr] = []
        where = ""
        if isinstance(fn, ast.Attribute) and fn.attr in ("at", "after",
                                                         "every") \
                and _looks_like_sim(fn.value):
            if node.args:
                cycle_args.append(node.args[0])
            for kw in node.keywords:
                if kw.arg in ("time", "delay", "period", "start_offset"):
                    cycle_args.append(kw.value)
            where = f"sim.{fn.attr}()"
        elif isinstance(fn, ast.Name) and fn.id in _CYCLE_OPS and node.args:
            cycle_args.append(node.args[0])
            where = f"{fn.id}()"
        elif isinstance(fn, ast.Name) and fn.id in _CYCLE_OP_ARGS:
            idx = _CYCLE_OP_ARGS[fn.id]
            if len(node.args) > idx:
                cycle_args.append(node.args[idx])
            where = f"{fn.id}()"
        for arg in cycle_args:
            taint = _float_taint(arg)
            if taint is not None:
                what = "float literal" \
                    if isinstance(taint, ast.Constant) else "true division"
                self._emit(arg, "float-into-cycles",
                           f"{what} reaches the cycle argument of {where}; "
                           f"convert via repro.units or integerize "
                           f"explicitly")

    def _check_silent_truncation(self, node: ast.Call) -> None:
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id == "int" \
                and len(node.args) == 1 \
                and isinstance(node.args[0], ast.BinOp) \
                and isinstance(node.args[0].op, ast.Div):
            self._emit(node, "silent-truncation",
                       "int(a / b) silently truncates; use a // b for "
                       "cycle-exact arithmetic")

    # -- iteration ------------------------------------------------------ #
    def _check_iter_expr(self, node: ast.expr) -> None:
        if not self.sim_scope:
            return
        if _is_set_expr(node):
            self._emit(node, "nondet-iter",
                       "iterating a set: ordering is not guaranteed; "
                       "wrap in sorted()")
            return
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in _UNORDERED_FACTORIES:
                self._emit(node, "nondet-iter",
                           f"iterating {fn.id}(): ordering is not "
                           f"guaranteed; wrap in sorted()")
            elif isinstance(fn, ast.Attribute) and fn.attr in _LISTING_ATTRS:
                self._emit(node, "nondet-iter",
                           f".{fn.attr}() results are filesystem-ordered; "
                           f"wrap in sorted()")
        elif isinstance(node, ast.Name) and self._set_names \
                and node.id in self._set_names[-1]:
            self._emit(node, "nondet-iter",
                       f"iterating {node.id!r}, which is bound to a set "
                       f"in this function; wrap in sorted()")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter_expr(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter_expr(node.iter)
        self.generic_visit(node)

    # -- functions ------------------------------------------------------ #
    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults
                                              if d is not None]:
            if _mutable_default(default):
                self._emit(default, "mutable-default",
                           "mutable default argument is shared across "
                           "calls; default to None and build inside")

    def _collect_set_names(self, node) -> Set[str]:
        names: Set[str] = set()
        if hasattr(node, "args"):
            all_args = (node.args.posonlyargs + node.args.args
                        + node.args.kwonlyargs)
            for arg in all_args:
                if arg.annotation is not None \
                        and _annotation_is_set(arg.annotation):
                    names.add(arg.arg)
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and _is_set_expr(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                if _annotation_is_set(stmt.annotation) or (
                        stmt.value is not None and _is_set_expr(stmt.value)):
                    names.add(stmt.target.id)
        return names

    def _visit_function(self, node) -> None:
        self._check_defaults(node)
        self._set_names.append(self._collect_set_names(node)
                               if self.sim_scope else set())
        self.generic_visit(node)
        self._set_names.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- classes -------------------------------------------------------- #
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.hot_module and not _class_exempt_from_slots(node) \
                and not _defines_slots(node):
            self._emit(node, "slots-required",
                       f"class {node.name} lives in a hot-path module but "
                       f"declares no __slots__")
        self.generic_visit(node)

    # -- exception handling --------------------------------------------- #
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        reraises = any(isinstance(s, ast.Raise) for s in node.body)
        if node.type is None:
            self._emit(node, "bare-except",
                       "bare except catches everything including "
                       "KeyboardInterrupt; name the exception")
        elif isinstance(node.type, ast.Name) \
                and node.type.id == "BaseException" and not reraises:
            self._emit(node, "bare-except",
                       "except BaseException without re-raise swallows "
                       "interpreter-level signals")
        elif len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
            self._emit(node, "bare-except",
                       "except ...: pass silently swallows the error; "
                       "handle it or let it propagate")
        self.generic_visit(node)


# --------------------------------------------------------------------- #
# File / path drivers
# --------------------------------------------------------------------- #
def _scope_of(path: Path, assume_sim: bool) -> Tuple[bool, bool]:
    """(sim_scope, hot_module) for a file, from its repro-relative path."""
    parts = path.parts
    sim_scope = assume_sim
    hot = False
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        rel = parts[idx + 1:]
        if rel and rel[0] in SIM_PACKAGES:
            sim_scope = True
            if len(rel) == 2 and (rel[0], rel[1][:-3]) in HOT_MODULES:
                hot = True
        elif rel and rel[0] in TOOLING_PACKAGES:
            # Explicitly host-side: pool timing, cache I/O, bench clocks.
            sim_scope = False
    return sim_scope, hot


def lint_tree(tree: ast.Module, source: str, path: str = "<string>",
              sim_scope: bool = False, hot_module: bool = False,
              rules: Optional[Iterable[str]] = None
              ) -> Tuple[List[Violation], int, Dict[str, int]]:
    """Lint an already-parsed module.

    Returns ``(violations, pragmas_used, waivers_by_rule)`` — the
    engine reuses its own parse through this entry point, and the
    per-rule waiver counts feed the ``--max-waivers`` audit.
    """
    active = set(rules) if rules is not None else set(RULES)
    unknown = active - set(RULES)
    if unknown:
        raise ValueError(f"unknown simlint rule(s): {sorted(unknown)}")
    checker = _Checker(path, sim_scope, hot_module, active,
                       rng_aliases=_collect_rng_aliases(tree))
    checker.visit(tree)
    pragmas = _parse_pragmas(source)
    kept: List[Violation] = []
    used = 0
    per_rule: Dict[str, int] = {}
    for v in sorted(checker.found, key=lambda v: (v.line, v.col, v.rule)):
        waived = pragmas.get(v.line)
        if v.line in pragmas and (waived is None or v.rule in waived):
            used += 1
            per_rule[v.rule] = per_rule.get(v.rule, 0) + 1
            continue
        kept.append(v)
    return kept, used, per_rule


def lint_source(source: str, path: str = "<string>",
                sim_scope: bool = False, hot_module: bool = False,
                rules: Optional[Iterable[str]] = None
                ) -> Tuple[List[Violation], int]:
    """Lint one source string.  Returns (violations, pragmas_used)."""
    tree = ast.parse(source, filename=path)
    kept, used, _ = lint_tree(tree, source, path=path,
                              sim_scope=sim_scope, hot_module=hot_module,
                              rules=rules)
    return kept, used


def _lint_file_full(path: Path, assume_sim: bool = False,
                    rules: Optional[Iterable[str]] = None
                    ) -> Tuple[List[Violation], int, Dict[str, int]]:
    sim_scope, hot = _scope_of(path, assume_sim)
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return lint_tree(tree, source, path=str(path), sim_scope=sim_scope,
                     hot_module=hot, rules=rules)


def lint_file(path: Path, assume_sim: bool = False,
              rules: Optional[Iterable[str]] = None
              ) -> Tuple[List[Violation], int]:
    """Lint one file on disk."""
    found, used, _ = _lint_file_full(path, assume_sim=assume_sim,
                                     rules=rules)
    return found, used


def lint_paths(paths: Sequence, assume_sim: bool = False,
               rules: Optional[Iterable[str]] = None) -> LintReport:
    """Lint files and directories (recursively, ``*.py``)."""
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    violations: List[Violation] = []
    pragmas = 0
    waivers: Dict[str, int] = {}
    for f in files:
        found, used, per_rule = _lint_file_full(f, assume_sim=assume_sim,
                                                rules=rules)
        violations.extend(found)
        pragmas += used
        for rule, n in per_rule.items():
            waivers[rule] = waivers.get(rule, 0) + n
    return LintReport(violations=violations, files_checked=len(files),
                      pragmas_used=pragmas,
                      waivers_by_rule=dict(sorted(waivers.items())))


# --------------------------------------------------------------------- #
# Reporters
# --------------------------------------------------------------------- #
def render_text(report: LintReport) -> str:
    """Compiler-style ``path:line:col: rule: message`` lines + summary."""
    lines = [v.render() for v in report.violations]
    summary = (f"{len(report.violations)} violation(s) in "
               f"{report.files_checked} file(s), "
               f"{report.pragmas_used} pragma waiver(s)")
    return "\n".join(lines + [summary])


def render_json(report: LintReport) -> str:
    """Machine-readable report: violations, file count, pragma counts.

    ``waivers_by_rule`` is emitted with sorted keys so diffs of the
    report are stable — the audit trail behind ``--max-waivers``.
    """
    doc = {
        "violations": [v.to_dict() for v in report.violations],
        "files_checked": report.files_checked,
        "pragmas_used": report.pragmas_used,
        "waivers_by_rule": dict(sorted(report.waivers_by_rule.items())),
        "ok": report.ok,
    }
    return json.dumps(doc, indent=2, sort_keys=True)
