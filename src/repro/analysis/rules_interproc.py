"""Interprocedural rule families for ``repro lint --interprocedural``.

Three whole-program determinism rules run over the
:mod:`repro.analysis.engine` project index, the
:mod:`repro.analysis.callgraph` call graph and the
:mod:`repro.analysis.taint` summaries:

``rng-provenance``
    Every generator in simulation code must descend from a named, seeded
    :class:`repro.sim.rng.RngStreams` stream.  Flags ad-hoc seeded
    ``default_rng(<constant>)`` construction in sim scope (the per-file
    rule already catches *unseeded* construction), and **stream
    contamination**: a stream named for one subsystem
    (``workload/...``, ``monitor/...``, ``faults/...``, ...) being drawn
    from inside a different subsystem's modules, directly or through any
    chain of parameter forwarding — sharing one stream couples two
    subsystems' draw sequences, so adding a draw in one silently
    perturbs the other.

``cycle-unit-flow``
    Millisecond-typed values (``units.to_ms`` / ``to_seconds`` results)
    and float values that crossed a call boundary must not reach the
    cycle-denominated sinks (``sim.at/after/every``, ``Compute``,
    ``Sleep``, ``Critical``) without an explicit conversion.  The
    per-file rule sees only literals and divisions in the sink's own
    argument expression; this rule follows values through assignments,
    returns and parameters.

``transitive-wall-clock``
    A sim-scope function whose call graph reaches a wall-clock, entropy
    or environment API (``time.*``, ``datetime.now``, ``os.urandom``,
    ``uuid.*``, ``os.environ``/``getenv``, ``secrets``, stdlib
    ``random``) through at least one internal hop is flagged with the
    full call chain.  Direct calls stay the per-file ``wall-clock``
    rule's job.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis import simlint
from repro.analysis.callgraph import CallGraph, build_call_graph
from repro.analysis.engine import FunctionInfo, Project
from repro.analysis.simlint import Violation
from repro.analysis.taint import (FunctionEvaluator, TaintContext,
                                  compute_summaries, evaluate_function)

__all__ = [
    "INTERPROC_RULES",
    "STREAM_ROUTES",
    "run_interproc_rules",
]

#: Rule id -> one-line description (merged into --list-rules).
INTERPROC_RULES: Dict[str, str] = {
    "rng-provenance": "all draws trace to a named RngStreams stream; "
                      "no cross-subsystem stream sharing",
    "cycle-unit-flow": "ms-typed/float values cannot cross calls into "
                       "cycle-denominated arguments unconverted",
    "transitive-wall-clock": "sim-scope code must not reach wall-clock/"
                             "entropy/env APIs through any call chain",
}

#: Stream-name prefix -> module prefixes allowed to draw from it.  The
#: experiments package is the wiring layer and may touch any stream it
#: routes; everything else is subsystem-exclusive.
STREAM_ROUTES: Dict[str, Tuple[str, ...]] = {
    "workload": ("repro.workloads", "repro.guest", "repro.experiments"),
    "monitor": ("repro.asman", "repro.experiments"),
    "learner": ("repro.asman",),
    "faults": ("repro.faults", "repro.experiments"),
    "conformance": ("repro.conformance",),
    # Driver-level streams: supervised-retry backoff jitter and the
    # chaos harness's injection schedule both live one level above the
    # simulation, in the parallel fabric only.
    "supervisor": ("repro.parallel",),
    "chaos": ("repro.parallel",),
}

#: Wall-clock reading attributes (superset of the per-file rule's list).
_TIME_ATTRS = set(simlint._WALL_CLOCK_TIME_ATTRS) | {"sleep"}
_DT_ATTRS = set(simlint._WALL_CLOCK_DT_ATTRS) | {"fromtimestamp"}
_UUID_ATTRS = {"uuid1", "uuid3", "uuid4", "uuid5", "getnode"}
_OS_BANNED = {
    "os.urandom", "os.getrandom", "os.getenv", "os.getpid",
    "os.environ.get", "os.environ.setdefault", "os.environ.pop",
    "os.environ.update",
}
_SOCKET_ATTRS = {"gethostname", "gethostbyname", "getfqdn"}


def _banned_external(qname: str) -> bool:
    """Is this external callee a wall-clock / entropy / env API?"""
    parts = qname.split(".")
    head, leaf = parts[0], parts[-1]
    if head == "time":
        return len(parts) == 1 or leaf in _TIME_ATTRS
    if head == "datetime":
        return leaf in _DT_ATTRS
    if head == "uuid":
        return len(parts) == 1 or leaf in _UUID_ATTRS
    if head in ("secrets", "random"):
        return True
    if head == "socket":
        return leaf in _SOCKET_ATTRS
    return qname in _OS_BANNED


def _route_allows(prefix: str, module: str) -> bool:
    allowed = STREAM_ROUTES.get(prefix)
    if allowed is None:
        return True        # unrouted prefix: no contamination contract
    return any(module == a or module.startswith(a + ".")
               for a in allowed)


def _tag_kind(tags: Iterable[Tuple[str, ...]]) -> Optional[str]:
    """Pick the most specific unit-taint kind present: ms beats float."""
    kinds = {t[0] for t in tags}
    if "ms" in kinds:
        return "ms"
    if "float" in kinds:
        return "float"
    return None


class _Reporter:
    """Accumulates violations, deduplicating per (path, line, rule)."""

    def __init__(self) -> None:
        self._seen: Set[Tuple[str, int, str]] = set()
        self.found: List[Violation] = []

    def emit(self, path: str, line: int, col: int, rule: str,
             message: str) -> None:
        key = (path, line, rule)
        if key in self._seen:
            return
        self._seen.add(key)
        self.found.append(Violation(path=path, line=line, col=col,
                                    rule=rule, message=message))


# --------------------------------------------------------------------- #
# rng-provenance
# --------------------------------------------------------------------- #
def _check_rng(rep: _Reporter, ctx: TaintContext, finfo: FunctionInfo,
               ev: FunctionEvaluator, path: str, sim_scope: bool) -> None:
    if sim_scope:
        for call, kind in ev.rng_creations:
            if kind != "adhoc":
                continue   # unseeded construction is the per-file rule
            rep.emit(path, call.lineno, call.col_offset + 1,
                     "rng-provenance",
                     "ad-hoc seeded default_rng() in simulation code: "
                     "the seed does not derive from RngStreams, so this "
                     "generator is outside the experiment's seed tree; "
                     "use a named rng.get(...) stream")
    module = finfo.module
    for call, recv_tags in ev.draws:
        for t in recv_tags:
            if t[0] == "stream" and not _route_allows(t[1], module):
                rep.emit(path, call.lineno, call.col_offset + 1,
                         "rng-provenance",
                         f"stream '{t[1]}/...' drawn from {module}: "
                         f"subsystems must not share RNG streams "
                         f"(allowed under "
                         f"{', '.join(STREAM_ROUTES[t[1]])})")
    for call, callee_q, binding in ev.call_bindings:
        callee = ctx.summaries[callee_q]
        for idx, tags in binding.items():
            draw_mods = callee.param_draw_modules.get(idx)
            if not draw_mods:
                continue
            for t in tags:
                if t[0] != "stream":
                    continue
                bad = sorted(m for m in draw_mods
                             if not _route_allows(t[1], m))
                if bad:
                    rep.emit(path, call.lineno, call.col_offset + 1,
                             "rng-provenance",
                             f"stream '{t[1]}/...' passed to {callee_q} "
                             f"is drawn from {', '.join(bad)}: "
                             f"subsystems must not share RNG streams")


# --------------------------------------------------------------------- #
# cycle-unit-flow
# --------------------------------------------------------------------- #
def _check_cycles(rep: _Reporter, ctx: TaintContext,
                  ev: FunctionEvaluator, path: str) -> None:
    for arg, label, tags in ev.sink_args:
        # Local float literals/divisions at the sink are the per-file
        # float-into-cycles rule's territory; here we report only what
        # crossed a boundary (ret) or is wall-denominated (ms).
        interesting = {t for t in tags
                       if t[0] == "ms" or t == ("float", "ret")}
        kind = _tag_kind(interesting)
        if kind is None:
            continue
        what = "millisecond-typed value" if kind == "ms" else \
            "float value returned from a call"
        rep.emit(path, arg.lineno, arg.col_offset + 1, "cycle-unit-flow",
                 f"{what} reaches the cycle argument of {label}; "
                 f"convert with repro.units (ms/us/seconds) or "
                 f"integerize explicitly")
    for call, callee_q, binding in ev.call_bindings:
        callee = ctx.summaries[callee_q]
        for idx, tags in binding.items():
            sink = callee.param_sink.get(idx)
            if sink is None:
                continue
            kind = _tag_kind(t for t in tags if t[0] in ("ms", "float"))
            if kind is None:
                continue
            what = "millisecond-typed value" if kind == "ms" else \
                "float value"
            rep.emit(path, call.lineno, call.col_offset + 1,
                     "cycle-unit-flow",
                     f"{what} passed to {callee_q} flows into the cycle "
                     f"argument of {sink} inside the callee; convert "
                     f"before the call")


# --------------------------------------------------------------------- #
# transitive-wall-clock
# --------------------------------------------------------------------- #
def _check_transitive(rep: _Reporter, graph: CallGraph, project: Project,
                      finfo: FunctionInfo, path: str) -> None:
    chains = graph.reachable_externals(finfo.qname)
    for external in sorted(chains):
        if not _banned_external(external):
            continue
        chain = chains[external]
        if len(chain) < 2:
            continue       # direct call: the per-file wall-clock rule
        hops = " -> ".join(site.callee for site in chain[:-1])
        first = chain[0]
        rep.emit(path, first.line, first.col, "transitive-wall-clock",
                 f"sim-scope function {finfo.qname} reaches "
                 f"{external}() via {hops}; simulation code must be "
                 f"closed over sim.now and RngStreams")


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #
def run_interproc_rules(project: Project,
                        rules: Optional[Iterable[str]] = None,
                        assume_sim: bool = False) -> List[Violation]:
    """Run the interprocedural rule families over an indexed project."""
    active = set(rules) if rules is not None else set(INTERPROC_RULES)
    unknown = active - set(INTERPROC_RULES)
    if unknown:
        raise ValueError(
            f"unknown interprocedural rule(s): {sorted(unknown)}")
    graph = build_call_graph(project)
    ctx = compute_summaries(project)
    rep = _Reporter()
    scope: Dict[str, bool] = {
        name: simlint._scope_of(mod.path, assume_sim)[0]
        for name, mod in project.modules.items()}
    for qname in sorted(project.functions):
        finfo = project.functions[qname]
        mod = project.modules[finfo.module]
        path = str(mod.path)
        sim_scope = scope[finfo.module]
        ev = evaluate_function(ctx, finfo)
        if "rng-provenance" in active:
            _check_rng(rep, ctx, finfo, ev, path, sim_scope)
        if "cycle-unit-flow" in active:
            _check_cycles(rep, ctx, ev, path)
        if "transitive-wall-clock" in active and sim_scope:
            _check_transitive(rep, graph, project, finfo, path)
    return rep.found
