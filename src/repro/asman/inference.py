"""Out-of-VM VCRD inference — the paper's stated future work.

Section 5.4: "It is still an open issue to monitor the VCRD of a VM from
outside the VM.  However, the VMM may find hints from running statuses
of CPUs to determine the VCRD of a VM, which will be our future work."

This module implements that idea: an :class:`ExternalVcrdMonitor` runs in
the VMM, requires **no guest modification**, and infers a VM's VCRD from
two hypervisor-visible signals sampled every accounting-ish window:

* **sleep/wake churn** — guests synchronising through blocking primitives
  (futexes behind OpenMP barriers) produce frequent BLOCKED→RUNNABLE
  transitions on *several* VCPUs.  A single busy VCPU's timer-interrupt
  wakes don't qualify (Linux concentrates IRQs on CPU0, so the heuristic
  demands churn on at least half the VCPUs).
* **progress skew** — under the Credit scheduler's noisy accounting, a
  synchronising VM's VCPUs drift apart in per-window online time; pure
  throughput guests stay even (each VCPU is independently CPU-bound) or
  idle.

When both signals exceed their thresholds the monitor raises the VM's
VCRD through the same ``set_vcrd`` path the in-guest module uses; it
lowers it after ``hold_windows`` consecutive quiet windows (hysteresis).

Compared to the in-guest Monitoring Module this trades precision for
deployability: it cannot see individual spinlock waits, so it reacts at
window granularity and can false-negative on workloads that spin without
ever blocking.  The benches compare both detectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import units
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.vmm.vm import VCRD, VM


@dataclass(frozen=True)
class InferenceConfig:
    """Thresholds for the out-of-VM detector."""

    #: Sampling window (cycles).  One Xen accounting period by default.
    window_cycles: int = units.ms(30)
    #: Minimum BLOCKED->RUNNABLE transitions per VCPU per second, on at
    #: least ``churn_quorum`` of the VM's VCPUs, to call it synchronising.
    churn_rate_per_s: float = 40.0
    #: Fraction of VCPUs that must show churn (IRQ-only guests fail this).
    churn_quorum: float = 0.5
    #: Minimum spread of per-window online time (as a fraction of the
    #: window) between the most- and least-online VCPU.
    skew_fraction: float = 0.08
    #: Quiet windows required before dropping VCRD back to LOW.
    hold_windows: int = 2

    def __post_init__(self) -> None:
        if self.window_cycles <= 0:
            raise ConfigurationError("window must be positive")
        if not 0 < self.churn_quorum <= 1:
            raise ConfigurationError("churn_quorum must be in (0, 1]")
        if self.hold_windows < 1:
            raise ConfigurationError("hold_windows must be >= 1")


class ExternalVcrdMonitor:
    """Infers and drives one VM's VCRD from VMM-side statistics."""

    def __init__(self, vm: VM, sim: Simulator,
                 config: Optional[InferenceConfig] = None) -> None:
        self.vm = vm
        self.sim = sim
        self.config = config or InferenceConfig()
        self._last_wakes: Dict[int, int] = {
            v.index: v.wakes for v in vm.vcpus}
        self._last_online: Dict[int, int] = {
            v.index: self._online(v) for v in vm.vcpus}
        self._quiet_streak = 0
        #: Observability.
        self.windows_sampled = 0
        self.high_verdicts = 0
        self.raises = 0
        self.drops = 0
        self._timer = sim.every(self.config.window_cycles, self._sample,
                                label=f"ext-vcrd:{vm.name}")

    # ------------------------------------------------------------------ #
    @staticmethod
    def _online(vcpu) -> int:
        online = vcpu.online_cycles
        if vcpu._online_since is not None:
            online += vcpu._sim.now - vcpu._online_since
        return online

    def stop(self) -> None:
        self._timer.cancel()

    # ------------------------------------------------------------------ #
    def _sample(self) -> None:
        cfg = self.config
        self.windows_sampled += 1
        window_s = units.to_seconds(cfg.window_cycles)

        churn_hits = 0
        online_deltas: List[int] = []
        for v in self.vm.vcpus:
            wake_delta = v.wakes - self._last_wakes[v.index]
            self._last_wakes[v.index] = v.wakes
            online = self._online(v)
            online_deltas.append(online - self._last_online[v.index])
            self._last_online[v.index] = online
            if wake_delta / window_s >= cfg.churn_rate_per_s:
                churn_hits += 1

        skew = (max(online_deltas) - min(online_deltas)) / cfg.window_cycles
        synchronising = (
            churn_hits >= cfg.churn_quorum * len(self.vm.vcpus)
            and skew >= cfg.skew_fraction)

        if synchronising:
            self.high_verdicts += 1
            self._quiet_streak = 0
            if self.vm.vcrd is not VCRD.HIGH:
                self.raises += 1
                self.vm.set_vcrd(VCRD.HIGH)
        else:
            self._quiet_streak += 1
            if (self.vm.vcrd is VCRD.HIGH
                    and self._quiet_streak >= cfg.hold_windows):
                self.drops += 1
                self.vm.set_vcrd(VCRD.LOW)

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        return {
            "windows_sampled": self.windows_sampled,
            "high_verdicts": self.high_verdicts,
            "raises": self.raises,
            "drops": self.drops,
        }
