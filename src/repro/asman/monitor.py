"""The Monitoring Module — ASMan's guest-kernel component.

Lives in each monitored guest's kernel (paper Section 3.3): the spinlock
code reports every acquisition's measured wait here.  When a wait exceeds
2^delta cycles (delta = 20), a **VCRD adjusting event** fires:

1. the interval z since the previous adjusting event is measured;
2. the Roth–Erev learner produces the estimated lasting time x_{i+1} of
   the new locality of synchronisation;
3. VCRD is set HIGH and reported to the VMM through ``do_vcrd_op``;
4. a timer is armed for x_{i+1}: if it expires with no further
   over-threshold spinlock, VCRD returns to LOW (and the VMM is told);
   if another over-threshold spinlock arrives first, that *is* the next
   adjusting event (Algorithm 1 line 13) — the learner re-estimates and
   the coscheduling window extends.

A short refractory period coalesces the burst of over-threshold waits
that marks a locality's onset (the model's property (i): they are one
locality, not many) so the learner sees locality starts, not every wait.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set, Tuple

import numpy as np

from repro import units
from repro.config import MonitorConfig
from repro.asman.learning import RothErevLearner
from repro.guest.kernel import GuestKernel
from repro.guest.spinlock import SpinLock
from repro.sim.engine import Event
from repro.vmm.hypercall import HypercallTable
from repro.vmm.vm import VCRD

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector

#: Default refractory window: over-threshold waits this close to the last
#: adjusting event are part of the same locality onset.
DEFAULT_REFRACTORY = units.us(50)


class MonitoringModule:
    """Detects over-threshold spinlocks and drives the VM's VCRD."""

    def __init__(self, kernel: GuestKernel, hypercalls: HypercallTable,
                 config: Optional[MonitorConfig] = None,
                 rng: Optional[np.random.Generator] = None,
                 refractory: int = DEFAULT_REFRACTORY,
                 faults: Optional["FaultInjector"] = None) -> None:
        if rng is None:
            # Every monitor must draw from the testbed's seed tree (a
            # ``monitor/<vm>`` stream); a constant-seed fallback here
            # would give all unwired monitors identical learner draws.
            raise ValueError(
                "MonitoringModule requires an explicit generator from a "
                "named RngStreams stream (e.g. rng.get('monitor/<vm>'))")
        self.kernel = kernel
        self.vm = kernel.vm
        self.sim = kernel.sim
        self.hypercalls = hypercalls
        self.config = config or self.vm.config.monitor
        self.refractory = refractory
        self.learner = RothErevLearner(self.config.learning, rng)
        #: Optional fault injector (repro.faults): misreporting modes.
        #: None in the default path — a single attribute test per report.
        self._faults = faults
        kernel.install_monitor(self)

        self._last_adjust: Optional[int] = None
        self._expiry_event: Optional[Event] = None
        #: (lock identity, wait-start cycle) of episodes already counted in
        #: ``over_threshold_count``.  One contention episode can be
        #: reported several times — by the in-spin probe, again on each
        #: online resume, and finally at acquisition — and must count once.
        self._counted_episodes: Set[Tuple[int, int]] = set()
        #: Statistics.
        self.adjusting_events = 0
        self.over_threshold_count = 0
        self.measured_waits: int = 0
        self.hypercalls_made = 0
        #: (time, estimate) of each adjusting event, for the experiments.
        self.estimates: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------ #
    @property
    def coscheduling(self) -> bool:
        """True while the module holds the VM's VCRD HIGH."""
        return self._expiry_event is not None and self._expiry_event.pending

    # ------------------------------------------------------------------ #
    # Hook called from the guest spinlock code
    # ------------------------------------------------------------------ #
    def on_spinlock_wait(self, lock: SpinLock, wait: int) -> None:
        """A completed acquisition with its final measured wait."""
        if wait < self.config.measure_floor_cycles:
            return
        self.measured_waits += 1
        if wait <= self.config.over_threshold_cycles:
            return
        # The episode may already be counted by the in-spin probe
        # (on_wait_in_progress); completion closes it either way.
        episode = (id(lock), self.sim.now - wait)
        if episode not in self._counted_episodes:
            self.over_threshold_count += 1
        else:
            self._counted_episodes.discard(episode)
        self._maybe_adjust()

    def on_wait_in_progress(self, lock: SpinLock, waited_so_far: int) -> None:
        """The probe inside the spin loop saw the wait cross 2^delta while
        still spinning — the paper's actual detection point ("upon
        detecting a spinlock whose waiting time is longer than a certain
        threshold").  Reacting here, not at acquisition, is what lets
        coscheduling rescue the *current* episode."""
        if waited_so_far <= self.config.over_threshold_cycles:
            return
        # An in-progress episode is identified by (lock, wait start): the
        # probe and every post-offline resume report the same episode.
        episode = (id(lock), self.sim.now - waited_so_far)
        if episode not in self._counted_episodes:
            self._counted_episodes.add(episode)
            self.over_threshold_count += 1
        self._maybe_adjust()

    def _maybe_adjust(self) -> None:
        now = self.sim.now
        if (self._last_adjust is not None
                and now - self._last_adjust < self.refractory):
            return  # same locality onset: already handled
        self._adjusting_event(now)

    # ------------------------------------------------------------------ #
    def _adjusting_event(self, now: int) -> None:
        self.adjusting_events += 1
        z = None if self._last_adjust is None else now - self._last_adjust
        estimate = self.learner.next_estimate(z)
        self._last_adjust = now
        self.estimates.append((now, estimate))
        # (Re-)arm the coscheduling window.
        if self._expiry_event is not None:
            self._expiry_event.cancel()
        self._expiry_event = self.sim.at(now + estimate, self._expire,
                                         label=f"vcrd-expiry:{self.vm.name}")
        self._set_vcrd(VCRD.HIGH)

    def _expire(self) -> None:
        """The estimated lasting time passed with no further over-threshold
        spinlock: the locality ended, stop coscheduling."""
        self._expiry_event = None
        self._set_vcrd(VCRD.LOW)

    def _set_vcrd(self, value: VCRD) -> None:
        if self._faults is not None:
            value = self._faults.monitor_report(value)
            delay = self._faults.monitor_report_delay()
            if delay:
                self.sim.after(delay, lambda: self._emit_vcrd(value),
                               label=f"fault-vcrd-delay:{self.vm.name}")
                return
        self._emit_vcrd(value)

    def _emit_vcrd(self, value: VCRD) -> None:
        """Report a VCRD value to the VMM (deduplicated at report time)."""
        if self.vm.vcrd is value:
            return
        self.hypercalls_made += 1
        self.hypercalls.do_vcrd_op(self.vm, value)

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Summary used by the experiment reports."""
        return {
            "adjusting_events": self.adjusting_events,
            "over_threshold": self.over_threshold_count,
            "measured_waits": self.measured_waits,
            "hypercalls": self.hypercalls_made,
            "under_cosched_updates": self.learner.under_cosched_updates,
            "proportional_updates": self.learner.proportional_updates,
        }
