"""The locality-of-synchronisation model (paper Section 4.2, Figures 5–6).

The paper extends the classical locality-of-reference model to
synchronisation: over-threshold spinlocks cluster into *localities* L_i.
L_i has a lasting time X_i; Z_i is the interval from the start of L_i to
the start of L_{i+1}.  Three properties:

(i)   over-threshold spinlocks occur inside localities, never outside;
(ii)  X_i is correlated with X_{i-1} (shared synchronisation variables);
(iii) L_i and L_{i+j} decorrelate as j grows.

Two tools live here:

* :class:`LocalityModel` **generates** synthetic (X_i, Z_i) sequences with
  exactly these properties — an AR(1) process over X with positive gaps.
  The learning tests use it to check that the Roth–Erev learner tracks a
  ground truth it was designed for.
* :class:`LocalityAnalyzer` **recovers** localities from a stream of
  over-threshold event timestamps, by gap-splitting; the experiment layer
  uses it to report how bursty the measured spinlock waits are (the
  paper's observation (4): "the long waits usually occur in some
  neighboring spinlocks").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SyncLocality:
    """One locality: [start, start + lasting) containing ``events`` over-
    threshold spinlocks."""

    start: int
    lasting: int
    events: int

    @property
    def end(self) -> int:
        return self.start + self.lasting


class LocalityModel:
    """AR(1) generator of (X_i, Z_i) pairs.

    ``X_{i+1} = clip(mean + rho * (X_i - mean) + noise)`` gives property
    (ii) for one step and property (iii) geometrically (corr(X_i, X_{i+j})
    = rho^j).  Gaps ``Z_i - X_i`` are drawn from an exponential with mean
    ``gap_mean`` so localities never overlap (property (i)).
    """

    def __init__(self, rng: np.random.Generator, mean_lasting: int,
                 rho: float = 0.7, cv: float = 0.3,
                 gap_mean: int = 0) -> None:
        if not 0.0 <= rho < 1.0:
            raise ConfigurationError("rho must be in [0, 1)")
        if mean_lasting <= 0:
            raise ConfigurationError("mean_lasting must be positive")
        if cv < 0:
            raise ConfigurationError("cv must be >= 0")
        self.rng = rng
        self.mean = float(mean_lasting)
        self.rho = rho
        #: Innovation std chosen so the stationary std is cv * mean.
        self.sigma = cv * self.mean * np.sqrt(1.0 - rho * rho)
        self.gap_mean = float(gap_mean if gap_mean > 0 else mean_lasting)
        self._x = self.mean

    def __iter__(self) -> Iterator[tuple]:
        return self

    def __next__(self) -> tuple:
        return self.sample()

    def sample(self) -> tuple:
        """Return the next (X_i, Z_i) pair, in cycles."""
        x = int(max(1.0, self._x))
        gap = float(self.rng.exponential(self.gap_mean))
        z = x + max(1, int(gap))
        noise = float(self.rng.normal(0.0, self.sigma))
        self._x = max(1.0, self.mean + self.rho * (self._x - self.mean) + noise)
        return x, z

    def sequence(self, n: int) -> List[tuple]:
        return [self.sample() for _ in range(n)]


class LocalityAnalyzer:
    """Split a sorted stream of over-threshold timestamps into localities.

    Two events belong to the same locality when their gap is below
    ``split_gap`` cycles.  The defaults make a locality out of the paper's
    "neighboring spinlocks" bursts.
    """

    def __init__(self, split_gap: int) -> None:
        if split_gap <= 0:
            raise ConfigurationError("split_gap must be positive")
        self.split_gap = split_gap

    def localities(self, timestamps: Sequence[int]) -> List[SyncLocality]:
        if not timestamps:
            return []
        ts = sorted(timestamps)
        out: List[SyncLocality] = []
        start = ts[0]
        prev = ts[0]
        count = 1
        for t in ts[1:]:
            if t - prev > self.split_gap:
                out.append(SyncLocality(start, max(1, prev - start), count))
                start = t
                count = 0
            count += 1
            prev = t
        out.append(SyncLocality(start, max(1, prev - start), count))
        return out

    def burstiness(self, timestamps: Sequence[int]) -> float:
        """Mean events per locality — 1.0 means no clustering at all."""
        locs = self.localities(timestamps)
        if not locs:
            return 0.0
        return sum(l.events for l in locs) / len(locs)

    def intervals(self, timestamps: Sequence[int]) -> List[int]:
        """The Z_i sequence: start-to-start intervals between localities."""
        locs = self.localities(timestamps)
        return [locs[i + 1].start - locs[i].start
                for i in range(len(locs) - 1)]
