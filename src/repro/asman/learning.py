"""The modified Roth–Erev learning algorithm (paper Algorithms 1 and 2).

The Monitoring Module must guess, at the start of each locality of
synchronisation, how long to keep the VM coscheduled (the lasting time
X_i).  The paper adapts the Roth–Erev reinforcement-learning scheme [20]:

* a *propensity* q_x is kept for each of N candidate durations x;
* initially q_x(0) = s(0) * A / N where A is the mean candidate value;
* at adjusting event i+1 every propensity decays by the recency factor
  and receives an update U(x, x_i, i, N, e):

  - **under-coscheduling** (z_i - x_i <= Delta: the next over-threshold
    spinlock arrived almost immediately after coscheduling ended, so the
    estimate was too short): every candidate *longer* than x_i is
    reinforced with 1 - e, everything else gets the experimentation
    residue q_x(i) * e / (N - 1);
  - **otherwise** the chosen x_i is reinforced proportionally to how the
    slack (z_i - x_i) evolved: U = (z_i - x_i)/(z_{i-1} - x_{i-1}) * (1-e);
    other candidates again get the experimentation residue.

* the next estimate is the candidate with maximal propensity; the first
  two estimates are drawn probabilistically (propensity-weighted).

Deviations from the paper (documented; the paper leaves these corners
unspecified):

* the reinforcement ratio is clamped to ``[0, ratio_max]`` and the
  denominator guarded — the raw formula divides by a possibly zero or
  negative previous slack;
* propensities are floored at a tiny positive value so the probabilistic
  draws stay well-defined.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config import LearningConfig
from repro.errors import ConfigurationError

_PROPENSITY_FLOOR = 1e-12
_RATIO_MAX = 4.0


class RothErevLearner:
    """Estimates locality lasting times from adjusting-event experience."""

    def __init__(self, config: LearningConfig,
                 rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        self.x: List[int] = list(config.candidates)
        n = len(self.x)
        # The paper initialises q_x(0) = s(0) * A / N with A "the
        # statistical average value of possible values of X".  Taken in
        # cycles, A is ~10^9 while Algorithm 2's reinforcements are O(1),
        # so propensities would never move and the argmax would stay
        # pinned to index 0.  We therefore normalise A to the payoff
        # scale (A := 1), which preserves the algorithm's dynamics and
        # makes the reinforcements actually select.
        self.q: np.ndarray = np.full(
            n, config.initial_scale * 1.0 / n, dtype=float)
        #: Number of completed estimates (the paper's event index i).
        self.i = 0
        #: Last estimate x_i, in cycles (None before the first event).
        self.last_estimate: Optional[int] = None
        #: Previous slack z_{i-1} - x_{i-1} for the reinforcement ratio.
        self._prev_slack: Optional[float] = None
        #: Observability: how many updates hit each branch of Algorithm 2.
        self.under_cosched_updates = 0
        self.proportional_updates = 0

    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return len(self.x)

    def propensities(self) -> np.ndarray:
        """A copy of the current propensity vector (for inspection)."""
        return self.q.copy()

    # ------------------------------------------------------------------ #
    def next_estimate(self, z_i: Optional[int] = None) -> int:
        """Produce the estimate for the upcoming locality.

        ``z_i`` is the measured interval from the *previous* adjusting
        event to this one; pass None at the very first event (nothing to
        learn from yet).  Returns the chosen duration in cycles.
        """
        if z_i is not None and self.last_estimate is not None:
            self._update(float(z_i), float(self.last_estimate))
        if self.i < 2:
            choice = self._probabilistic_choice()
        else:
            choice = int(np.argmax(self.q))
        estimate = self.x[choice]
        self.last_estimate = estimate
        self.i += 1
        return estimate

    # ------------------------------------------------------------------ #
    def _probabilistic_choice(self) -> int:
        weights = np.maximum(self.q, _PROPENSITY_FLOOR)
        probs = weights / weights.sum()
        return int(self.rng.choice(self.n, p=probs))

    def _update(self, z_i: float, x_i: float) -> None:
        """Algorithm 1 line 3 with U from Algorithm 2."""
        cfg = self.config
        e = cfg.experimentation
        r = cfg.recency
        n = self.n
        slack = z_i - x_i
        residue = self.q * (e / (n - 1))
        update = np.array(residue)  # default branch for non-reinforced x
        if slack <= cfg.under_cosched_delta:
            # Under-coscheduling: push probability mass to longer durations.
            self.under_cosched_updates += 1
            reinforced = False
            for idx, x in enumerate(self.x):
                if x > x_i:
                    update[idx] = 1.0 - e
                    reinforced = True
            if not reinforced:
                # x_i is already the longest candidate: there is nothing
                # longer to push mass to, yet the evidence says "coschedule
                # at least this long".  Reinforce the top candidate itself;
                # otherwise every propensity just decays by recency and the
                # learner's distribution collapses to the floor.
                update[int(np.argmax(np.asarray(self.x)))] = 1.0 - e
        else:
            self.proportional_updates += 1
            prev = self._prev_slack
            if prev is None or prev <= 0:
                ratio = 1.0
            else:
                ratio = min(_RATIO_MAX, max(0.0, slack / prev))
            try:
                chosen = self.x.index(int(x_i))
            except ValueError:
                raise ConfigurationError(
                    f"estimate {x_i} is not a candidate value")
            update[chosen] = ratio * (1.0 - e)
        self.q = (1.0 - r) * self.q + update
        np.maximum(self.q, _PROPENSITY_FLOOR, out=self.q)
        self._prev_slack = slack

    # ------------------------------------------------------------------ #
    def train(self, observations: Sequence[tuple]) -> List[int]:
        """Batch helper for tests: feed (x_forced?, z) pairs is awkward, so
        this replays a sequence of measured intervals ``z`` and returns the
        estimates the learner produced along the way."""
        estimates = [self.next_estimate(None)]
        for z in observations:
            estimates.append(self.next_estimate(int(z)))
        return estimates
