"""VCRD statistics: how much of a run each VM spent coscheduled.

Subscribes to ``vcrd.change`` trace records and integrates the time each
VM's VCRD spent HIGH.  The ablation benches use this to quantify ASMan's
central claim: the *coscheduled fraction* tracks the workload's actual
synchronisation intensity (near zero for EP and SPEC-rate copies, large
for LU), whereas static coscheduling (CON) is pinned at 100%.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus, TraceRecord
from repro.vmm.vm import VCRD, VM


class VcrdTracker:
    """Integrates per-VM VCRD-HIGH time from the trace bus."""

    def __init__(self, trace: TraceBus, sim: Simulator) -> None:
        self.sim = sim
        self._high_since: Dict[str, int] = {}
        self._high_total: Dict[str, int] = {}
        self.transitions: Dict[str, int] = {}
        #: Full per-VM change log: (time, "high"/"low").
        self.log: Dict[str, List[Tuple[int, str]]] = {}
        self._start = sim.now
        trace.subscribe("vcrd.change", self._on_change)

    def _on_change(self, rec: TraceRecord) -> None:
        vm = rec["vm"]
        value = rec["vcrd"]
        self.transitions[vm] = self.transitions.get(vm, 0) + 1
        self.log.setdefault(vm, []).append((rec.time, value))
        if value == VCRD.HIGH.value:
            self._high_since.setdefault(vm, rec.time)
        else:
            since = self._high_since.pop(vm, None)
            if since is not None:
                self._high_total[vm] = (
                    self._high_total.get(vm, 0) + rec.time - since)

    # ------------------------------------------------------------------ #
    def high_cycles(self, vm_name: str) -> int:
        """Total cycles the VM spent with VCRD HIGH (so far)."""
        total = self._high_total.get(vm_name, 0)
        since = self._high_since.get(vm_name)
        if since is not None:
            total += self.sim.now - since
        return total

    def high_fraction(self, vm_name: str) -> float:
        """Fraction of elapsed time the VM spent coscheduled."""
        elapsed = self.sim.now - self._start
        if elapsed <= 0:
            return 0.0
        return self.high_cycles(vm_name) / elapsed

    def episodes(self, vm_name: str) -> List[Tuple[int, int]]:
        """Closed (start, end) HIGH episodes recorded so far."""
        out: List[Tuple[int, int]] = []
        start = None
        for time, value in self.log.get(vm_name, []):
            if value == VCRD.HIGH.value:
                if start is None:
                    start = time
            elif start is not None:
                out.append((start, time))
                start = None
        return out
