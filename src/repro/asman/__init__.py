"""ASMan's guest-side machinery.

* :mod:`repro.asman.locality` — the locality-of-synchronisation model
  (paper Section 4.2, Figure 5): localities L_i with lasting times X_i and
  inter-locality intervals Z_i.
* :mod:`repro.asman.learning` — the modified Roth–Erev learning algorithm
  (Algorithms 1–2) estimating X_i.
* :mod:`repro.asman.monitor` — the Monitoring Module that lives in the
  guest kernel, detects over-threshold spinlocks, runs the learner, and
  reports VCRD changes to the VMM via the ``do_vcrd_op`` hypercall.
* :mod:`repro.asman.vcrd` — trace-driven VCRD statistics (time spent HIGH,
  coscheduled fraction), used by metrics and the ablation benches.
"""

from repro.asman.inference import ExternalVcrdMonitor, InferenceConfig
from repro.asman.learning import RothErevLearner
from repro.asman.locality import LocalityAnalyzer, LocalityModel, SyncLocality
from repro.asman.monitor import MonitoringModule
from repro.asman.vcrd import VcrdTracker

__all__ = [
    "RothErevLearner", "LocalityAnalyzer", "LocalityModel", "SyncLocality",
    "MonitoringModule", "VcrdTracker",
    "ExternalVcrdMonitor", "InferenceConfig",
]
