"""Spinlock waiting-time statistics (the measurements behind Figs 1b/2/8).

Subscribes to ``spinlock.wait`` trace records (only waits above the 2^10
measurement floor are emitted, matching the paper's instrumentation) and
provides the paper's views of them:

* counts above arbitrary 2^k thresholds (Figure 1b's two bar families);
* the per-spinlock scatter series — (acquisition index, log2 wait) —
  that Figures 2 and 8 plot;
* log2-binned histograms and locality/burstiness summaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import units
from repro.sim.tracing import TraceBus, TraceRecord


class SpinlockStats:
    """Collects (time, wait) pairs for one VM (or all VMs)."""

    def __init__(self, trace: TraceBus, vm_name: Optional[str] = None) -> None:
        self.vm_name = vm_name
        self.times: List[int] = []
        self.waits: List[int] = []
        self.locks: List[str] = []
        trace.subscribe("spinlock.wait", self._on_wait)

    def _on_wait(self, rec: TraceRecord) -> None:
        if self.vm_name is not None and rec["vm"] != self.vm_name:
            return
        self.times.append(rec.time)
        self.waits.append(rec["wait"])
        self.locks.append(rec["lock"])

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.waits)

    def count_above(self, exp: int, window: Optional[Tuple[int, int]] = None) -> int:
        """Number of recorded waits strictly above 2**exp cycles."""
        threshold = 1 << exp
        if window is None:
            return sum(1 for w in self.waits if w > threshold)
        lo, hi = window
        return sum(1 for t, w in zip(self.times, self.waits)
                   if lo <= t < hi and w > threshold)

    def over_threshold_times(self, exp: int = units.DELTA_EXP) -> List[int]:
        """Timestamps of waits above 2**exp (for locality analysis)."""
        threshold = 1 << exp
        return [t for t, w in zip(self.times, self.waits) if w > threshold]

    def scatter(self) -> List[Tuple[int, float]]:
        """Figure 2/8 series: (acquisition index, log2 wait)."""
        return [(i, units.log2_cycles(w)) for i, w in enumerate(self.waits)]

    def histogram(self, min_exp: int = 10, max_exp: int = 31) -> Dict[int, int]:
        """Counts per log2 bin: bin k holds waits in [2^k, 2^(k+1))."""
        hist = {k: 0 for k in range(min_exp, max_exp)}
        for w in self.waits:
            if w <= 0:
                continue
            k = min(max_exp - 1, max(min_exp, w.bit_length() - 1))
            hist[k] += 1
        return hist

    def max_wait(self) -> int:
        return max(self.waits) if self.waits else 0

    def mean_wait(self) -> float:
        return float(np.mean(self.waits)) if self.waits else 0.0

    def percentile(self, q: float) -> float:
        if not self.waits:
            return 0.0
        return float(np.percentile(self.waits, q))

    def summary(self) -> Dict[str, float]:
        return {
            "recorded": float(len(self)),
            "over_2^10": float(self.count_above(10)),
            "over_2^15": float(self.count_above(15)),
            "over_2^20": float(self.count_above(20)),
            "over_2^25": float(self.count_above(25)),
            "max_log2": units.log2_cycles(self.max_wait()),
        }
