"""Terminal plots: render figure series without a plotting stack.

The paper's figures are scatter plots, bar charts and line plots; these
helpers render recognisable equivalents as plain text so ``examples/``
and the bench result files can show the *shape* directly.  All functions
return strings (the caller prints), are deterministic, and degrade
gracefully on empty input.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

_BLOCKS = " .:-=+*#%@"


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    pos = (value - lo) / (hi - lo)
    return max(0, min(width - 1, int(pos * (width - 1))))


def scatter(points: Sequence[Tuple[float, float]], width: int = 72,
            height: int = 16, title: str = "",
            x_label: str = "x", y_label: str = "y") -> str:
    """An x/y scatter (Figures 2 and 8 style)."""
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = _scale(x, x_lo, x_hi, width)
        row = height - 1 - _scale(y, y_lo, y_hi, height)
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} [{y_lo:.1f} .. {y_hi:.1f}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_lo:.0f} .. {x_hi:.0f}]")
    return "\n".join(lines)


def bar_chart(data: Dict[str, float], width: int = 50,
              title: str = "", unit: str = "") -> str:
    """Horizontal bars (Figures 7/11/12 style)."""
    if not data:
        return f"{title}\n(no data)"
    hi = max(data.values())
    label_w = max(len(k) for k in data)
    lines = [title] if title else []
    for key, value in data.items():
        n = _scale(value, 0.0, hi, width) + 1 if hi > 0 else 0
        lines.append(f"{key.ljust(label_w)} |{'#' * n:<{width}} "
                     f"{value:.3f}{unit}")
    return "\n".join(lines)


def grouped_bars(groups: Dict[str, Dict[str, float]], width: int = 40,
                 title: str = "", unit: str = "") -> str:
    """Grouped horizontal bars: {x_label: {series: value}} (Figure 11)."""
    if not groups:
        return f"{title}\n(no data)"
    hi = max(v for g in groups.values() for v in g.values())
    series_w = max(len(s) for g in groups.values() for s in g)
    lines = [title] if title else []
    for group, values in groups.items():
        lines.append(group)
        for series, value in values.items():
            n = _scale(value, 0.0, hi, width) + 1 if hi > 0 else 0
            lines.append(f"  {series.ljust(series_w)} "
                         f"|{'#' * n:<{width}} {value:.3f}{unit}")
    return "\n".join(lines)


def line_plot(series: Dict[str, List[Tuple[float, float]]],
              width: int = 64, height: int = 14, title: str = "",
              markers: str = "*o+x#@") -> str:
    """Several (x, y) series on one grid, one marker per series."""
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for i, (name, pts) in enumerate(series.items()):
        mark = markers[i % len(markers)]
        legend.append(f"{mark}={name}")
        for x, y in pts:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y [{y_lo:.2f} .. {y_hi:.2f}]   " + "  ".join(legend))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" x [{x_lo:.1f} .. {x_hi:.1f}]")
    return "\n".join(lines)


def histogram(values: Sequence[float], bins: int = 20, width: int = 50,
              title: str = "", log_counts: bool = False) -> str:
    """A vertical-bar histogram rendered horizontally."""
    if not values:
        return f"{title}\n(no data)"
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0
    counts = [0] * bins
    for v in values:
        idx = min(bins - 1, int((v - lo) / (hi - lo) * bins))
        counts[idx] += 1
    peak = max(counts)
    lines = [title] if title else []
    for i, c in enumerate(counts):
        left = lo + (hi - lo) * i / bins
        display = math.log1p(c) if log_counts else float(c)
        peak_display = math.log1p(peak) if log_counts else float(peak)
        n = _scale(display, 0.0, peak_display, width) + (1 if c else 0)
        lines.append(f"{left:10.1f} |{'#' * n:<{width}} {c}")
    return "\n".join(lines)


def wait_histogram(waits_log2: Sequence[float], title: str = "",
                   threshold: Optional[float] = 20.0) -> str:
    """Log2-binned spinlock wait histogram with the 2^delta marker —
    the textual version of Figures 1(b)/2."""
    if not waits_log2:
        return f"{title}\n(no data)"
    lo = int(min(waits_log2))
    hi = int(max(waits_log2)) + 1
    counts = {k: 0 for k in range(lo, hi + 1)}
    for w in waits_log2:
        counts[int(w)] += 1
    peak = max(counts.values())
    lines = [title] if title else []
    for k in range(lo, hi + 1):
        c = counts[k]
        n = _scale(math.log1p(c), 0.0, math.log1p(peak), 40) + (1 if c else 0)
        marker = " <- 2^delta threshold" if threshold is not None and \
            k == int(threshold) else ""
        lines.append(f"2^{k:<3d}|{'#' * n:<40} {c}{marker}")
    return "\n".join(lines)
