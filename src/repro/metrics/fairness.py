"""CPU-share fairness measurements.

Every scheduler in the paper must preserve proportional-share fairness
("coscheduling should also keep this kind of proportional share fairness",
Section 1).  These helpers compare each VM's measured CPU time against its
weight entitlement and compute Jain's fairness index over the normalised
shares; the integration tests assert all three schedulers stay close to
1.0 under saturated multi-VM load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.vmm.vm import VM


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2); 1.0 = perfectly
    fair, 1/n = maximally unfair."""
    vals = [v for v in values]
    if not vals:
        raise ConfigurationError("empty value list")
    if any(v < 0 for v in vals):
        raise ConfigurationError("values must be non-negative")
    total = sum(vals)
    sq = sum(v * v for v in vals)
    if total == 0 or sq == 0.0:
        # All-zero shares (or squares underflowing to zero for denormal
        # inputs): nobody is being favoured, report perfect fairness.
        return 1.0
    return (total * total) / (len(vals) * sq)


@dataclass(frozen=True)
class VMShare:
    vm: str
    weight: int
    entitled_fraction: float
    measured_fraction: float

    @property
    def relative_error(self) -> float:
        if self.entitled_fraction == 0:
            return 0.0
        return abs(self.measured_fraction - self.entitled_fraction) \
            / self.entitled_fraction


class FairnessReport:
    """Snapshot of CPU-share fairness among a set of VMs."""

    def __init__(self, vms: List[VM], elapsed_cycles: int,
                 num_pcpus: int) -> None:
        if elapsed_cycles <= 0:
            raise ConfigurationError("elapsed time must be positive")
        total_weight = sum(vm.weight for vm in vms)
        capacity = elapsed_cycles * num_pcpus
        self.shares: List[VMShare] = []
        for vm in vms:
            entitled = vm.weight / total_weight
            measured = vm.cpu_time() / capacity
            self.shares.append(VMShare(vm.name, vm.weight, entitled, measured))

    def by_vm(self) -> Dict[str, VMShare]:
        return {s.vm: s for s in self.shares}

    def normalized_shares(self) -> List[float]:
        """measured/entitled per VM — the input to Jain's index."""
        return [s.measured_fraction / s.entitled_fraction
                if s.entitled_fraction else 0.0
                for s in self.shares]

    def jains(self) -> float:
        return jains_index(self.normalized_shares())

    def max_relative_error(self) -> float:
        return max(s.relative_error for s in self.shares)
