"""Throughput metrics: SPECjbb bops/score and the SPEC rate metric."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import WorkloadError


def bops_score(throughputs_by_warehouses: Dict[int, float],
               num_vcpus: int) -> float:
    """SPECjbb2005's score: "the average value of those throughput
    measurements when the number of warehouses is not less than 4 (the
    number of VCPUs)" (Section 5.2).

    ``throughputs_by_warehouses`` maps warehouse count -> bops.
    """
    eligible = [v for w, v in throughputs_by_warehouses.items()
                if w >= num_vcpus]
    if not eligible:
        raise WorkloadError(
            f"no measurements with >= {num_vcpus} warehouses")
    return sum(eligible) / len(eligible)


def spec_rate(copies: int, reference_seconds: float,
              measured_seconds: float) -> float:
    """The SPEC rate metric: copies * (reference time / measured time).

    We use the Credit-@100% run as the reference, so rates are relative
    within an experiment (absolute SPEC references are meaningless on a
    simulator).
    """
    if measured_seconds <= 0 or reference_seconds <= 0:
        raise WorkloadError("times must be positive")
    if copies < 1:
        raise WorkloadError("copies must be >= 1")
    return copies * reference_seconds / measured_seconds


def throughput_degradation(baseline: float, measured: float) -> float:
    """Fractional loss vs. baseline (0.08 = 8% slower), clamped at 0 for
    measurements that beat the baseline."""
    if baseline <= 0:
        raise WorkloadError("baseline must be positive")
    return max(0.0, (baseline - measured) / baseline)


def mean_of(values: Sequence[float]) -> float:
    """Arithmetic mean; rejects empty input explicitly."""
    if not values:
        raise WorkloadError("empty sequence")
    return sum(values) / len(values)
