"""Scheduling timelines: who ran where, and how co-online a VM's gang was.

Subscribes to ``sched.switch`` records (occupations *and* vacations) and
reconstructs per-PCPU occupancy segments.  From those it derives the
metric the whole paper is about but never names directly — the
**co-online fraction**: of the time during which at least one of a VM's
VCPUs was online, how much had *all* of them online simultaneously?
Under strict gang scheduling it approaches 1; under plain Credit at a
low cap it collapses; ASMan sits in between, tracking the workload's
synchronisation phases.

Also renders ASCII Gantt charts for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus, TraceRecord


@dataclass(frozen=True)
class Segment:
    """One occupancy stretch: ``vcpu`` (a name) ran on ``pcpu``."""

    pcpu: int
    vcpu: str
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


class TimelineCollector:
    """Builds per-PCPU segment lists from the trace bus."""

    def __init__(self, trace: TraceBus, sim: Simulator) -> None:
        self.sim = sim
        self._open: Dict[int, Tuple[str, int]] = {}
        self.segments: List[Segment] = []
        trace.subscribe("sched.switch", self._on_switch)

    def _on_switch(self, rec: TraceRecord) -> None:
        pcpu = rec["pcpu"]
        vcpu = rec["vcpu"]
        open_seg = self._open.pop(pcpu, None)
        if open_seg is not None:
            name, start = open_seg
            if rec.time > start:
                self.segments.append(Segment(pcpu, name, start, rec.time))
        if vcpu is not None:
            self._open[pcpu] = (vcpu, rec.time)

    def close(self) -> None:
        """Flush still-open segments up to the current simulation time.

        ``close`` is a *snapshot*, not a shutdown: the flushed occupations
        are re-opened at the snapshot time, so if the simulation continues
        the stretch from the snapshot to the next ``sched.switch`` is still
        accounted (closing again later never double-counts — the re-opened
        segment starts where the flushed one ended).
        """
        now = self.sim.now
        for pcpu, (name, start) in list(self._open.items()):
            if now > start:
                self.segments.append(Segment(pcpu, name, start, now))
                self._open[pcpu] = (name, now)

    # ------------------------------------------------------------------ #
    def pcpu_segments(self, pcpu: int) -> List[Segment]:
        return sorted((s for s in self.segments if s.pcpu == pcpu),
                      key=lambda s: s.start)

    def vcpu_intervals(self, vcpu_name: str) -> List[Tuple[int, int]]:
        """Online intervals of one VCPU (by its ``vm/vN`` name)."""
        return sorted((s.start, s.end) for s in self.segments
                      if s.vcpu == vcpu_name)

    def vm_vcpu_names(self, vm_name: str) -> List[str]:
        names = {s.vcpu for s in self.segments
                 if s.vcpu.startswith(vm_name + "/")}
        return sorted(names)

    # ------------------------------------------------------------------ #
    def concurrency_profile(self, vm_name: str) -> Dict[int, int]:
        """cycles spent with exactly k of the VM's VCPUs online, k >= 1."""
        events: List[Tuple[int, int]] = []
        for name in self.vm_vcpu_names(vm_name):
            for start, end in self.vcpu_intervals(name):
                events.append((start, +1))
                events.append((end, -1))
        events.sort()
        profile: Dict[int, int] = {}
        depth = 0
        prev: Optional[int] = None
        for time, delta in events:
            if prev is not None and depth > 0 and time > prev:
                profile[depth] = profile.get(depth, 0) + (time - prev)
            depth += delta
            prev = time
        return profile

    def co_online_fraction(self, vm_name: str,
                           parties: Optional[int] = None) -> float:
        """Fraction of the VM's any-online time with all VCPUs online."""
        profile = self.concurrency_profile(vm_name)
        total = sum(profile.values())
        if total == 0:
            return 0.0
        k = parties if parties is not None \
            else len(self.vm_vcpu_names(vm_name))
        return profile.get(k, 0) / total

    # ------------------------------------------------------------------ #
    def gantt(self, start: int, end: int, width: int = 72,
              pcpus: Optional[Sequence[int]] = None) -> str:
        """ASCII Gantt of PCPU occupancy over [start, end)."""
        if end <= start:
            return "(empty window)"
        ids = sorted(pcpus if pcpus is not None
                     else {s.pcpu for s in self.segments})
        # Stable one-char labels per vcpu name.
        names = sorted({s.vcpu for s in self.segments})
        glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
        label = {n: glyphs[i % len(glyphs)] for i, n in enumerate(names)}
        span = end - start
        lines = [f"gantt [{start} .. {end}) cycles; "
                 + " ".join(f"{label[n]}={n}" for n in names)]
        for pid in ids:
            row = ["."] * width
            for seg in self.pcpu_segments(pid):
                if seg.end <= start or seg.start >= end:
                    continue
                lo = max(0, int((seg.start - start) / span * width))
                hi = min(width, max(lo + 1,
                                    int((seg.end - start) / span * width)))
                for i in range(lo, hi):
                    row[i] = label[seg.vcpu]
            lines.append(f"P{pid} |" + "".join(row))
        return "\n".join(lines)
