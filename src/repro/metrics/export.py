"""Exporting results: CSV and JSON serialisation of figures and traces.

Downstream users typically want the reproduced series in a
machine-readable form (to plot with their own stack, or to diff across
runs in CI).  These helpers serialise :class:`FigureResult` objects,
spinlock statistics and raw trace records without adding dependencies.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.sim.tracing import TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.figures import FigureResult
    from repro.metrics.spinlock_stats import SpinlockStats


def figure_to_json(result: "FigureResult", indent: int = 2) -> str:
    """Serialise a FigureResult (figure, description, series, notes)."""
    payload = {
        "figure": result.figure,
        "description": result.description,
        "series": {name: [[x, y] for x, y in points]
                   for name, points in result.series.items()},
        "notes": dict(result.notes),
    }
    fingerprint = getattr(result, "fingerprint", None)
    if fingerprint is not None:
        payload["fingerprint"] = fingerprint
    return json.dumps(payload, indent=indent, sort_keys=True)


def figure_to_csv(result: "FigureResult") -> str:
    """Long-format CSV: series,x,y — one row per point."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["series", "x", "y"])
    for name, points in result.series.items():
        for x, y in points:
            writer.writerow([name, x, y])
    return buf.getvalue()


def figure_from_json(text: str) -> Dict:
    """Parse a figure JSON back into plain dicts (round-trip checks)."""
    payload = json.loads(text)
    for key in ("figure", "description", "series"):
        if key not in payload:
            raise ValueError(f"not a figure export: missing {key!r}")
    payload["series"] = {
        name: [tuple(p) for p in points]
        for name, points in payload["series"].items()}
    return payload


def spinlock_stats_to_csv(stats: "SpinlockStats") -> str:
    """CSV of every recorded wait: time_cycles,lock,wait_cycles."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["time_cycles", "lock", "wait_cycles"])
    for t, lock, w in zip(stats.times, stats.locks, stats.waits):
        writer.writerow([t, lock, w])
    return buf.getvalue()


def trace_records_to_json(records: Sequence[TraceRecord],
                          indent: Optional[int] = None) -> str:
    """Serialise retained trace records (category/time/payload)."""
    payload: List[Dict] = [
        {"time": r.time, "category": r.category, "payload": r.payload}
        for r in records]
    return json.dumps(payload, indent=indent, default=str)


def write_text(path, text: str) -> None:
    """Small helper so exports and bench artifacts share one write path."""
    import pathlib
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(text)
