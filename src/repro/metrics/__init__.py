"""Measurement collectors and reporting.

Collectors subscribe to the trace bus at testbed construction time and
accumulate exactly the quantities the paper's figures plot: spinlock
waiting-time distributions (Figs 1b, 2, 8), run times and slowdowns
(Figs 1a, 7, 9, 11, 12), SPECjbb throughput (Fig 10), and CPU-share
fairness (the property all three schedulers must preserve).
"""

from repro.metrics.spinlock_stats import SpinlockStats
from repro.metrics.runtime import RuntimeCollector, slowdown
from repro.metrics.throughput import spec_rate, bops_score
from repro.metrics.fairness import FairnessReport, jains_index
from repro.metrics.report import Table, format_series
from repro.metrics.timeline import Segment, TimelineCollector
from repro.metrics import ascii_plot, export

__all__ = [
    "SpinlockStats", "RuntimeCollector", "slowdown",
    "spec_rate", "bops_score", "FairnessReport", "jains_index",
    "Table", "format_series",
    "Segment", "TimelineCollector", "ascii_plot", "export",
]
