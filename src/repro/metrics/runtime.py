"""Run-time measurement and the paper's slowdown metric.

The slowdown of a benchmark at an online rate below 100% is "the ratio of
its run time to the run time of the same benchmark running on the same VM
scheduled by the Credit Scheduler with the VCPU online rate equaling 100%"
(Section 5.2).  :func:`slowdown` implements exactly that; the ideal
slowdown at rate ``r`` is ``1/r``, so values above ``1/r`` quantify the
virtualization-induced synchronisation overhead.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import units
from repro.errors import WorkloadError
from repro.sim.tracing import TraceBus, TraceRecord


class RuntimeCollector:
    """Records per-VM workload completion times and per-task finishes."""

    def __init__(self, trace: TraceBus) -> None:
        self.workload_done: Dict[str, int] = {}
        self.task_done: Dict[str, List[int]] = {}
        trace.subscribe("workload.done", self._on_workload)
        trace.subscribe("task.done", self._on_task)

    def _on_workload(self, rec: TraceRecord) -> None:
        self.workload_done[rec["vm"]] = rec.time

    def _on_task(self, rec: TraceRecord) -> None:
        self.task_done.setdefault(rec["vm"], []).append(rec.time)

    # ------------------------------------------------------------------ #
    def runtime_cycles(self, vm_name: str) -> int:
        t = self.workload_done.get(vm_name)
        if t is None:
            raise WorkloadError(f"workload in {vm_name} has not finished")
        return t

    def runtime_seconds(self, vm_name: str) -> float:
        return units.to_seconds(self.runtime_cycles(vm_name))

    def finished(self, vm_name: str) -> bool:
        return vm_name in self.workload_done


def slowdown(runtime: float, baseline_runtime: float) -> float:
    """Section 5.2's slowdown: runtime / (Credit @ 100% runtime)."""
    if baseline_runtime <= 0:
        raise WorkloadError("baseline runtime must be positive")
    return runtime / baseline_runtime


def ideal_slowdown(online_rate: float) -> float:
    """The no-overhead expectation: a VM with ``rate`` of a CPU takes
    1/rate as long."""
    if not 0 < online_rate <= 1:
        raise WorkloadError("online rate must be in (0, 1]")
    return 1.0 / online_rate


def excess_slowdown(measured: float, online_rate: float) -> float:
    """How much worse than ideal: measured_slowdown / ideal_slowdown.

    1.0 means virtualization cost nothing beyond the fair share; the
    paper's Credit-scheduler LU runs reach ~1.5x at 22.2%.
    """
    return measured / ideal_slowdown(online_rate)
