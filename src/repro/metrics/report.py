"""Plain-text tables and series for the benchmark harness output.

The benches print the same rows/series the paper's figures plot; these
helpers keep that output aligned and diff-friendly (EXPERIMENTS.md embeds
them verbatim).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def _fmt(value: Cell, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """A simple fixed-width text table."""

    def __init__(self, columns: Sequence[str], title: str = "",
                 precision: int = 3) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        self.precision = precision

    def add_row(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}")
        self.rows.append([_fmt(c, self.precision) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(c.ljust(widths[i])
                           for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_series(name: str, xs: Sequence[Cell], ys: Sequence[Cell],
                  x_label: str = "x", y_label: str = "y",
                  precision: int = 3) -> str:
    """One figure series as aligned '<x> <y>' pairs with a header."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    lines = [f"series: {name} ({x_label} -> {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x, precision):>12}  {_fmt(y, precision)}")
    return "\n".join(lines)


def format_mapping(title: str, data: Dict[str, Cell],
                   precision: int = 3) -> str:
    """A titled key/value block with aligned keys."""
    lines = [title]
    width = max((len(k) for k in data), default=0)
    for key, value in data.items():
        lines.append(f"  {key.ljust(width)}  {_fmt(value, precision)}")
    return "\n".join(lines)
