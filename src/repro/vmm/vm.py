"""Virtual machines and virtual CPUs.

A :class:`VCPU` is the schedulable entity.  From the VMM's point of view it
is in one of three states:

* ``RUNNING``  — currently occupying a PCPU ("online" in the paper's terms);
* ``RUNNABLE`` — sitting in some PCPU's run queue, waiting for time;
* ``BLOCKED``  — the guest has nothing to run on it (idle), so the VMM
  removed it from scheduling until the guest wakes it.

The guest OS hooks in through :class:`GuestClient`: the VMM calls
``on_online`` / ``on_offline`` when a VCPU gains or loses its PCPU, and the
guest calls :meth:`VCPU.block` / :meth:`VCPU.wake` when it idles or gets
work.  Scheduling policy lives entirely in :mod:`repro.vmm.scheduler_base`
and its subclasses; this module is pure mechanism.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional, Protocol

from repro.config import VMConfig
from repro.errors import SchedulerInvariantError
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.machine import PCPU
    from repro.vmm.scheduler_base import SchedulerBase


class VCPUState(enum.Enum):
    """VMM-visible VCPU states (see module docstring)."""

    RUNNING = "running"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"


class VCRD(enum.Enum):
    """VCPU Related Degree of a VM (paper Section 3.1).

    HIGH means an over-threshold spinlock was detected and the VM's VCPUs
    should be coscheduled; LOW means asynchronous scheduling is fine.
    """

    LOW = "low"
    HIGH = "high"


class GuestClient(Protocol):
    """What the VMM needs from a guest OS implementation."""

    def on_online(self, vcpu: "VCPU") -> None:
        """The VCPU just gained a PCPU; resume its current activity."""

    def on_offline(self, vcpu: "VCPU") -> None:
        """The VCPU just lost its PCPU; pause its current activity."""


class _NullGuest:
    """Placeholder guest for VMs created without an OS (e.g. Domain-0
    in single-VM experiments, which carries no workload)."""

    __slots__ = ()

    def on_online(self, vcpu: "VCPU") -> None:
        # An empty guest has nothing to run: block immediately so the VMM
        # does not waste PCPU time on it.
        vcpu.block()

    def on_offline(self, vcpu: "VCPU") -> None:
        pass


class VCPU:
    """One virtual CPU of one VM."""

    __slots__ = (
        "vm", "index", "credit", "state", "pcpu", "home_pcpu_id", "boosted",
        "wake_boost", "parked",
        "online_cycles", "_online_since", "created_at", "_sim",
        "wait_cycles", "_runnable_since", "preemptions", "migrations",
        "wakes",
    )

    def __init__(self, vm: "VM", index: int, sim: Simulator) -> None:
        self.vm = vm
        self.index = index
        self._sim = sim
        self.credit: float = 0.0
        self.state = VCPUState.RUNNABLE
        #: PCPU currently occupied (only while RUNNING).
        self.pcpu: Optional["PCPU"] = None
        #: Which PCPU's run queue this VCPU belongs to.
        self.home_pcpu_id: int = 0
        #: Temporarily raised priority for IPI coscheduling (Algorithm 4).
        self.boosted = False
        #: Xen's BOOST priority: set when a blocked VCPU wakes with credit
        #: left, letting latency-sensitive VCPUs preempt CPU hogs.
        self.wake_boost = False
        #: Non-work-conserving cap enforcement: parked VCPUs are ineligible
        #: until a credit assignment finds them back in the black.
        self.parked = False
        self.online_cycles = 0
        self._online_since: Optional[int] = None
        self._runnable_since: Optional[int] = sim.now
        self.wait_cycles = 0
        self.created_at = sim.now
        self.preemptions = 0
        self.migrations = 0
        #: BLOCKED->RUNNABLE transitions; a VMM-visible proxy for guest
        #: sleep/wake churn (used by out-of-VM VCRD inference).
        self.wakes = 0

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return f"{self.vm.name}/v{self.index}"

    @property
    def is_online(self) -> bool:
        return self.state is VCPUState.RUNNING

    def online_rate(self, since: int = 0) -> float:
        """Measured fraction of time online since cycle ``since``."""
        total = self._sim.now - max(since, self.created_at)
        if total <= 0:
            return 0.0
        online = self.online_cycles
        if self._online_since is not None:
            online += self._sim.now - self._online_since
        return min(1.0, online / total)

    # ------------------------------------------------------------------ #
    # Transitions driven by the scheduler
    # ------------------------------------------------------------------ #
    def start_running(self, pcpu: "PCPU") -> None:
        if self.state is VCPUState.BLOCKED:
            raise SchedulerInvariantError(f"{self.name}: running a BLOCKED VCPU")
        if self.state is VCPUState.RUNNING:
            raise SchedulerInvariantError(f"{self.name}: already RUNNING")
        if self._runnable_since is not None:
            self.wait_cycles += self._sim.now - self._runnable_since
            self._runnable_since = None
        self.state = VCPUState.RUNNING
        self.pcpu = pcpu
        self._online_since = self._sim.now
        self.vm.guest.on_online(self)

    def stop_running(self) -> None:
        """Preempt: RUNNING -> RUNNABLE.  The guest activity is paused."""
        if self.state is not VCPUState.RUNNING:
            raise SchedulerInvariantError(f"{self.name}: not RUNNING")
        self._close_online_span()
        self.state = VCPUState.RUNNABLE
        self._runnable_since = self._sim.now
        self.pcpu = None
        self.preemptions += 1
        self.wake_boost = False
        self.vm.guest.on_offline(self)

    # ------------------------------------------------------------------ #
    # Transitions driven by the guest
    # ------------------------------------------------------------------ #
    def block(self) -> None:
        """The guest has nothing to run: give up the PCPU (or the runq slot).

        Called either from guest dispatch while RUNNING, or on a RUNNABLE
        VCPU whose last task blocked before it got scheduled again.
        """
        if self.state is VCPUState.BLOCKED:
            return
        was_running = self.state is VCPUState.RUNNING
        if was_running:
            self._close_online_span()
        self.state = VCPUState.BLOCKED
        self._runnable_since = None
        self.wake_boost = False
        self.vm.scheduler.on_vcpu_block(self, was_running)
        self.pcpu = None

    def wake(self) -> None:
        """The guest has work for a BLOCKED VCPU again."""
        if self.state is not VCPUState.BLOCKED or self.vm.destroyed:
            return
        self.state = VCPUState.RUNNABLE
        self._runnable_since = self._sim.now
        self.wakes += 1
        self.vm.scheduler.on_vcpu_wake(self)

    # ------------------------------------------------------------------ #
    def _close_online_span(self) -> None:
        if self._online_since is not None:
            self.online_cycles += self._sim.now - self._online_since
            self._online_since = None

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<VCPU {self.name} {self.state.value} "
                f"credit={self.credit:.0f}>")


class VM:
    """A virtual machine: a named set of VCPUs plus scheduling metadata.

    The guest OS (:class:`repro.guest.kernel.GuestKernel`) is attached after
    construction via :meth:`attach_guest`; until then a null guest that
    blocks immediately is installed, which is exactly how the paper's idle
    Domain-0 behaves.
    """

    __slots__ = (
        "id", "config", "sim", "trace", "vcpus", "weight", "vcrd", "guest",
        "scheduler", "destroyed", "concurrent_hint", "vcrd_changes",
    )

    def __init__(self, vm_id: int, config: VMConfig, sim: Simulator,
                 trace: TraceBus) -> None:
        self.id = vm_id
        self.config = config
        self.sim = sim
        self.trace = trace
        self.vcpus: List[VCPU] = [VCPU(self, i, sim)
                                  for i in range(config.num_vcpus)]
        self.weight = config.weight
        self.vcrd = VCRD.LOW
        self.guest: GuestClient = _NullGuest()
        #: Set by the scheduler when the VM is registered.
        self.scheduler: "SchedulerBase" = None  # type: ignore[assignment]
        #: True once the VM has been destroyed (removed from scheduling);
        #: late guest timer wakes are ignored from then on.
        self.destroyed = False
        #: Static concurrent-VM mark used by the CON comparator scheduler.
        self.concurrent_hint = False
        #: Count of VCRD transitions (observability).
        self.vcrd_changes = 0

    @property
    def name(self) -> str:
        return self.config.name

    def set_vcrd(self, value: VCRD) -> None:
        """Update the VCRD; the Adaptive Scheduler reads it at scheduling
        events.  Emits a trace record on every actual change."""
        if value is self.vcrd:
            return
        self.vcrd = value
        self.vcrd_changes += 1
        self.trace.emit(self.sim.now, "vcrd.change",
                        vm=self.name, vcrd=value.value)
        if self.scheduler is not None:
            self.scheduler.on_vcrd_change(self)

    def online_vcpus(self) -> List[VCPU]:
        return [v for v in self.vcpus if v.is_online]

    def cpu_time(self) -> int:
        """Total online cycles consumed by this VM's VCPUs so far."""
        total = 0
        for v in self.vcpus:
            total += v.online_cycles
            if v._online_since is not None:
                total += self.sim.now - v._online_since
        return total

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VM {self.name} w={self.weight} vcrd={self.vcrd.value}>"
