"""ASMan's Adaptive Scheduler (paper Section 4, Algorithms 3 and 4).

Modified from the Credit scheduler: credit accounting and work stealing are
inherited unchanged, so proportional-share fairness between VMs is kept.
On top of that:

* When a VM's VCRD flips LOW→HIGH (reported by the guest's Monitoring
  Module through the ``do_vcrd_op`` hypercall), its VCPUs are **relocated**
  so that no two siblings share a PCPU run queue (Algorithm 3, lines 8–15)
  — a precondition for running them simultaneously.
* At a scheduling event that picks a VCPU of a VCRD-HIGH VM with credit
  left, the PCPU sends **IPIs** to the PCPUs holding the sibling VCPUs;
  each target temporarily raises its sibling's priority (the boost class)
  and reschedules, so the whole VM comes online together (Algorithm 4).
* A launch mutex guarantees only one PCPU fans out IPIs per scheduling
  event, preventing interrupt storms when all siblings pick simultaneously.
* Work stealing refuses to co-locate two VCPUs of a VCRD-HIGH VM
  (Algorithm 4's side condition ``runq(Pk') ∩ C(V_I) = ∅``).

When VCRD returns to LOW, boosts are dropped and the VM degrades gracefully
to plain credit scheduling.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.hardware.machine import PCPU
from repro.vmm.scheduler_base import SchedulerBase
from repro.vmm.vm import VCPU, VM, VCPUState, VCRD


class AdaptiveScheduler(SchedulerBase):
    """ASMan: dynamic adaptive coscheduling driven by VCRD."""

    name = "asman"

    # Quiescent-tick fast-forward: safe.  ``eligible`` is inherited (the
    # side-effect-free parked test), so with every queued VCPU parked a
    # scheduling pass picks nothing — and all ASMan-specific machinery
    # (``post_pick`` IPI fan-out, launch mutex, gang windows) sits
    # strictly *after* a pick, hence is unreachable.  Relocation and the
    # gang park/unpark rule run from assignment and VCRD events, which
    # the fast path never skips.
    ff_quiescent_safe = True

    def __init__(self, *args, llc_aware: bool = False, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: LLC-aware placement (the paper's future work, Section 7:
        #: "the properties of the underlying architecture such as LLC
        #: ... will be considered"): when relocating a coscheduled VM,
        #: prefer PCPUs sharing one socket so the gang shares a
        #: last-level cache.
        self.llc_aware = llc_aware
        #: Launch mutex (Section 4.1): held while an IPI fan-out is in
        #: flight so only one PCPU initiates coscheduling per event.
        self._cosched_launching = False
        #: Cycle at which the launch mutex was last acquired (None while
        #: free).  The sanitizer asserts the hold never outlives one IPI
        #: latency window, and post_pick self-heals a stale hold (e.g. a
        #: release event lost to a deadline stop) instead of silently
        #: never gang-launching again.
        self._cosched_mutex_since: Optional[int] = None
        #: vm id -> cycle of its last fan-out (slot-grained gang launches).
        self._last_launch: dict = {}
        #: Observability counters, reported by the ablation benches.
        self.cosched_launches = 0
        self.relocations = 0

    # ------------------------------------------------------------------ #
    # Which VMs does this scheduler coschedule?
    # ------------------------------------------------------------------ #
    def _wants_cosched(self, vm: VM) -> bool:
        return vm.vcrd is VCRD.HIGH

    # ------------------------------------------------------------------ #
    # VCRD transitions
    # ------------------------------------------------------------------ #
    def on_vcrd_change(self, vm: VM) -> None:
        if self._wants_cosched(vm):
            self.relocate(vm)
            # Apply the gang park/unpark rule immediately (don't wait for
            # the next accounting): the whole point of the HIGH transition
            # is to bring the VM online *now*, rescuing the preempted lock
            # holder the Monitoring Module just detected.
            if not self.config.work_conserving:
                burst = self.config.credit_per_tick * self.config.assign_slots
                self._repark(vm, burst)
            # Nudge the PCPUs that now hold this VM's VCPUs so coscheduling
            # can begin without waiting for the next tick.
            for pid in self._pcpus_of(vm):
                self.schedule(self.machine[pid])
        else:
            self._gang_until.pop(vm.id, None)
            for vcpu in vm.vcpus:
                vcpu.boosted = False

    def post_assign(self) -> None:
        # Algorithm 3 re-checks placement of coscheduled VMs at every
        # credit assignment event.
        for vm in self.vms:
            if self._wants_cosched(vm):
                self.relocate(vm)

    def _credit_split(self, vm, vm_credit: float):
        """Algorithm 3, line 6: "the Credit obtained by a VM is equally
        distributed among its VCPUs" — over all |C(Vi)| of them.

        Applied while the VM is coscheduled: a gang's members are all
        online together, so equal split is the gang-consistent division
        and stops barrier-sleepers forfeiting income mid-locality.  A
        non-coscheduled VM keeps Xen's active-only split — otherwise a
        guest running fewer threads than VCPUs (SPECjbb with few
        warehouses) would strand most of its entitlement on idle VCPUs.
        """
        if self._wants_cosched(vm):
            share = vm_credit / len(vm.vcpus)
            return [(v, share) for v in vm.vcpus]
        return super()._credit_split(vm, vm_credit)

    def _repark(self, vm, burst: float) -> None:
        """Gang cap enforcement for coscheduled VMs.

        Coscheduling must not grant extra CPU time (the cap still binds),
        but it must make the VM's VCPUs online *simultaneously*.  Under a
        cap that means the park/unpark decision is taken for the whole
        VM: all VCPUs park and unpark together, gated on the VM's *mean*
        banked credit.  The unpark threshold is zero (not a full period's
        burn as in the per-VCPU rule): credit conservation still enforces
        the long-run cap exactly — running on a small positive balance
        just shifts the same park/run cycle earlier, which is what lets a
        coscheduling response reach a preempted lock holder quickly.
        """
        if not self._wants_cosched(vm):
            super()._repark(vm, burst)
            return
        mean_credit = sum(v.credit for v in vm.vcpus) / len(vm.vcpus)
        parked = mean_credit < 0
        for vcpu in vm.vcpus:
            vcpu.parked = parked

    # ------------------------------------------------------------------ #
    # Relocation (Algorithm 3, lines 8-15)
    # ------------------------------------------------------------------ #
    def relocate(self, vm: VM) -> None:
        """Spread the VM's RUNNABLE VCPUs so each PCPU holds at most one
        of them (RUNNING VCPUs already occupy distinct PCPUs)."""
        occupied: Set[int] = set()
        for vcpu in vm.vcpus:
            if vcpu.state is VCPUState.RUNNING and vcpu.pcpu is not None:
                occupied.add(vcpu.pcpu.id)
        # First pass: claim non-conflicting current homes.
        pending: List[VCPU] = []
        for vcpu in vm.vcpus:
            if vcpu.state is not VCPUState.RUNNABLE:
                continue
            if vcpu.home_pcpu_id in occupied:
                pending.append(vcpu)
            else:
                occupied.add(vcpu.home_pcpu_id)
        # Second pass: move conflicting VCPUs to free PCPUs, preferring
        # idle ones so coscheduling can start immediately.
        for vcpu in pending:
            dest = self._free_pcpu_for(vm, occupied)
            if dest is None:
                break  # |C(Vi)| <= |P| makes this unreachable, but be safe
            self._move_to_runq(vcpu, dest.id)
            vcpu.migrations += 1
            self.relocations += 1
            occupied.add(dest.id)

    def _free_pcpu_for(self, vm: VM, occupied: Set[int]) -> Optional[PCPU]:
        candidates = [p for p in self.machine if p.id not in occupied]
        if not candidates:
            return None
        if self.llc_aware and occupied:
            # Prefer the socket where most of the gang already sits.
            topo = self.machine.topology
            counts: dict = {}
            for pid in sorted(occupied):
                s = topo.socket_of(pid)
                counts[s] = counts.get(s, 0) + 1
            target_socket = max(counts, key=lambda s: counts[s])
            same = [p for p in candidates if p.socket == target_socket]
            if same:
                candidates = same
        for p in candidates:
            if p.is_idle:
                return p
        return candidates[0]

    def _pcpus_of(self, vm: VM) -> List[int]:
        pids: List[int] = []
        for vcpu in vm.vcpus:
            if vcpu.state is VCPUState.RUNNING and vcpu.pcpu is not None:
                pids.append(vcpu.pcpu.id)
            elif vcpu.state is VCPUState.RUNNABLE:
                pids.append(vcpu.home_pcpu_id)
        return sorted(set(pids))

    # ------------------------------------------------------------------ #
    # Migration filter (Algorithm 4 side condition)
    # ------------------------------------------------------------------ #
    def may_migrate(self, vcpu: VCPU, dest: PCPU) -> bool:
        if not self._wants_cosched(vcpu.vm):
            return True
        for sibling in vcpu.vm.vcpus:
            if sibling is vcpu:
                continue
            if sibling.state is VCPUState.RUNNING and sibling.pcpu is dest:
                return False
            if sibling.state is VCPUState.RUNNABLE and \
                    sibling.home_pcpu_id == dest.id:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Coscheduling fan-out (Algorithm 4)
    # ------------------------------------------------------------------ #
    def post_pick(self, pcpu: PCPU, vcpu: VCPU) -> None:
        vm = vcpu.vm
        if not self._wants_cosched(vm):
            return
        if vcpu.credit < 0:
            return  # Algorithm 4 only coschedules from the credit>=0 branch
        if self._cosched_launching:
            since = self._cosched_mutex_since
            if since is not None and \
                    self.sim.now - since <= self.ipi.latency + 1:
                return  # another PCPU holds the launch mutex
            # Stale hold: the release event never fired (it can be lost
            # to a deadline stop).  Break the mutex rather than silently
            # never gang-launching again.
            self._release_mutex()
        last = self._last_launch.get(vm.id)
        if last is not None and \
                self.sim.now - last < self.config.cosched_cooldown_cycles:
            return  # this VM's gang was launched within the current slot
        targets: List[int] = []
        for sibling in vm.vcpus:
            if sibling is vcpu:
                continue
            if sibling.state is VCPUState.RUNNING:
                continue  # already online
            if sibling.state is VCPUState.BLOCKED:
                continue  # idle in the guest; nothing to bring online
            if not self.eligible(sibling):
                continue  # NWC cap: coscheduling must not grant extra time
            occupant = self.machine[sibling.home_pcpu_id].current
            if occupant is not None and occupant.vm is vm:
                # Boosting here would evict a sibling — the gang must not
                # preempt itself; relocation fixes the placement at the
                # next assignment event.
                continue
            sibling.boosted = True
            targets.append(sibling.home_pcpu_id)
        if not targets:
            return
        self._cosched_launching = True
        self._cosched_mutex_since = self.sim.now
        self._last_launch[vm.id] = self.sim.now
        # Open the gang window: all members run in the top priority class
        # for one coscheduling slot, so the gang stays online *together*.
        self._gang_until[vm.id] = \
            self.sim.now + self.config.cosched_cooldown_cycles
        self.cosched_launches += 1
        self.trace.emit(self.sim.now, "sched.cosched",
                        vm=vm.name, initiator=pcpu.id, targets=targets)
        try:
            self.ipi.broadcast(pcpu.id, sorted(set(targets)), payload=vm)
            # Release the launch mutex once the IPIs have been delivered.
            self.sim.after(self.ipi.latency + 1, self._release_mutex,
                           label="cosched-mutex-release")
        except BaseException:
            # A failed fan-out must not leave the mutex held forever —
            # that would silently disable gang launching for the rest of
            # the run.  Release and re-raise.
            self._release_mutex()
            raise

    def _release_mutex(self) -> None:
        self._cosched_launching = False
        self._cosched_mutex_since = None

    def _on_ipi(self, target: int, source: int, payload) -> None:
        # A coscheduling IPI: the boosted sibling now outranks whatever is
        # running here, so a plain scheduling event brings it online.
        self.schedule(self.machine[target])
