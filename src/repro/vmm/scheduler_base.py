"""Common machinery for VMM schedulers.

:class:`SchedulerBase` implements everything the three schedulers share:

* per-PCPU run queues with strict membership invariants (a VCPU is in
  exactly one runq iff RUNNABLE, on exactly one PCPU iff RUNNING, and
  nowhere iff BLOCKED);
* per-PCPU accounting ticks.  Ticks are **staggered** across PCPUs (phase
  offset ``tick * id / |P|``) exactly because real Xen's per-PCPU timers are
  not aligned — this asynchrony is what de-synchronises VCPU online windows
  and produces lock-holder preemption under the Credit baseline;
* credit assignment every K slots on the bootstrap PCPU (paper Algorithm 3);
* the credit-ordered pick ("a VCPU with the maximal Credit in the run queue
  of a PCPU will be mapped to the PCPU", Section 4.1), with UNDER/OVER
  priority classes and an IPI-boost class above both;
* work stealing for load balancing ("Before a PCPU goes idle, it will find
  any runnable VCPU in the run queue of the other PCPUs", Section 3.3);
* block/wake plumbing between guest and scheduler.

Subclasses specialise :meth:`eligible`, :meth:`post_pick` and
:meth:`on_vcrd_change` to implement the Credit baseline, static
coscheduling (CON) and ASMan.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.config import SchedulerConfig
from repro.errors import ConfigurationError, SchedulerInvariantError
from repro.hardware.ipi import IPIFabric
from repro.hardware.machine import Machine, PCPU
from repro.sim.engine import Simulator
from repro.sim.fastforward import fastforward_enabled
from repro.sim.tracing import TraceBus
from repro.vmm.vm import VCPU, VM, VCPUState

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.sanitizer import SchedulerSanitizer


class SchedulerBase:
    """Base VMM scheduler: mechanism + the shared credit policy."""

    #: Human-readable scheduler name, overridden by subclasses.
    name = "base"

    #: May the quiescent-tick fast-forward skip this scheduler's
    #: scheduling pass when the ticked PCPU is idle and every queued
    #: VCPU is parked?  Opting in carries a proof obligation: in that
    #: state ``_schedule`` must be a *strict no-op* — no placement, no
    #: trace emission, no counter or policy side effects (see the
    #: rationale comments on each opting-in subclass).  Default off so
    #: subclasses with unknown ``eligible``/``post_pick`` behaviour keep
    #: exact step-wise semantics.
    ff_quiescent_safe = False

    def __init__(self, machine: Machine, sim: Simulator, trace: TraceBus,
                 config: Optional[SchedulerConfig] = None) -> None:
        self.machine = machine
        self.sim = sim
        self.trace = trace
        self.config = config or SchedulerConfig()
        self.ipi = IPIFabric(machine, sim)
        self.vms: List[VM] = []
        #: pcpu id -> list of RUNNABLE VCPUs (unordered; picks scan it).
        self.runqs: Dict[int, List[VCPU]] = {p.id: [] for p in machine}
        #: Total VCPUs across all runqs, kept in lockstep by _enqueue /
        #: _remove_from_runq so the steal path can skip an all-runq scan
        #: when everything queued is already local.
        self._queued = 0
        #: pcpu id -> the *other* PCPUs' runq lists, in machine order.
        #: Runqs are only ever mutated in place, so the aliases stay live.
        self._peer_runqs: Dict[int, List[List[VCPU]]] = {
            p.id: [self.runqs[q.id] for q in machine if q.id != p.id]
            for p in machine}
        self._started = False
        self._next_vm_slot = 0
        self.context_switches = 0
        self._tick_count: Dict[int, int] = {p.id: 0 for p in machine}
        #: id(vcpu) -> cycle of its last credit debit while running.
        self._debit_start: Dict[int, int] = {}
        #: vm id -> cycle until which the VM's gang window is open (its
        #: VCPUs run in the top priority class).  Maintained only by the
        #: coscheduling subclasses; empty under the plain Credit policy.
        self._gang_until: Dict[int, int] = {}
        #: Optional runtime invariant checker (repro.analysis.sanitizer).
        #: None in the default path: every hook below is a single
        #: attribute test, so the sanitizer costs nothing when off.
        self.sanitizer: Optional["SchedulerSanitizer"] = None
        #: Quiescence fast-forward, sampled at construction (PR 9).
        self._ff = fastforward_enabled()
        for p in machine:
            self.ipi.register(p.id, self._on_ipi)

    # ------------------------------------------------------------------ #
    # Registration and startup
    # ------------------------------------------------------------------ #
    def add_vm(self, vm: VM) -> None:
        """Register a VM; its VCPUs are spread round-robin over PCPU runqs
        ("When a VM is created, its VCPUs will be inserted into run queues
        of PCPUs", Section 4.1)."""
        if vm.config.num_vcpus > len(self.machine):
            raise ConfigurationError(
                f"VM {vm.name} has more VCPUs ({vm.config.num_vcpus}) than "
                f"PCPUs ({len(self.machine)})")
        vm.scheduler = self
        self.vms.append(vm)
        # A fresh VM starts with one period's burn banked so it is not
        # parked for its first accounting periods (startup transient).
        initial = self.config.credit_per_tick * self.config.assign_slots
        for vcpu in vm.vcpus:
            pid = self._next_vm_slot % len(self.machine)
            self._next_vm_slot += 1
            vcpu.credit = float(initial)
            self._enqueue(vcpu, pid)
        if self.sanitizer is not None:
            self.sanitizer.note_credit_event()

    def remove_vm(self, vm: VM) -> None:
        """Destroy a VM: deschedule and dequeue its VCPUs and stop giving
        it credit.  The guest's pending timers become no-ops (the VM is
        flagged destroyed); its statistics remain readable."""
        if vm not in self.vms:
            raise ConfigurationError(f"VM {vm.name} is not registered")
        vm.destroyed = True
        for vcpu in vm.vcpus:
            self._debit_start.pop(id(vcpu), None)
            vcpu.boosted = False
            if vcpu.state is VCPUState.RUNNING:
                pcpu = vcpu.pcpu
                pcpu.vacate()
                self.trace.emit(self.sim.now, "sched.switch",
                                pcpu=pcpu.id, vcpu=None)
                vcpu.stop_running()  # RUNNING -> RUNNABLE, not in a runq
                vcpu.state = VCPUState.BLOCKED
                self.schedule(pcpu)
            elif vcpu.state is VCPUState.RUNNABLE:
                self._remove_from_runq(vcpu)
                vcpu.state = VCPUState.BLOCKED
        self._gang_until.pop(vm.id, None)
        self.vms.remove(vm)
        if self.sanitizer is not None:
            self.sanitizer.note_credit_event()

    def start(self) -> None:
        """Install tick timers and perform the initial credit assignment.

        Call once, after all VMs have been added (VMs added later still
        work: they join the next assignment round).
        """
        if self._started:
            raise SchedulerInvariantError("scheduler already started")
        self._started = True
        self.assign_credits()
        npc = len(self.machine)
        for p in self.machine:
            offset = (self.config.tick_cycles * p.id) // npc
            self.sim.every(self.config.tick_cycles,
                           lambda pid=p.id: self._tick(pid),
                           label=f"tick:p{p.id}",
                           start_offset=offset)
        # Kick the first scheduling pass so work begins at cycle ~0.
        for p in self.machine:
            self.schedule(p)

    # ------------------------------------------------------------------ #
    # Ticks and credit accounting
    # ------------------------------------------------------------------ #
    def _debit(self, vcpu: VCPU) -> None:
        """Exact-mode debit: charge elapsed runtime since the last debit.
        No-op in sampled mode (ticks do all the charging there)."""
        start = self._debit_start.pop(id(vcpu), None)
        if start is None or not self.config.exact_accounting:
            return
        elapsed = self.sim.now - start
        if elapsed > 0:
            debit = (elapsed * self.config.credit_per_tick
                     / self.config.tick_cycles)
            pcpu = vcpu.pcpu
            if pcpu is not None and pcpu.speed_factor != 1.0:
                # Degraded PCPU: the same wall cycles buy less work, so
                # the entitlement burns proportionally faster.
                debit /= pcpu.speed_factor
            vcpu.credit -= debit

    def _tick(self, pcpu_id: int) -> None:
        """Per-PCPU accounting tick: debit the running VCPU, re-schedule.

        The bootstrap PCPU (id 0) additionally runs the credit assignment
        every ``assign_slots`` of its own ticks (Algorithm 3)."""
        pcpu = self.machine[pcpu_id]
        running = pcpu.current
        if running is not None:
            if self.config.exact_accounting:
                self._debit(running)
                self._debit_start[id(running)] = self.sim.now
            else:
                # Xen's sampled accounting: whoever holds the PCPU at the
                # tick pays for the whole tick (more, on a degraded PCPU).
                debit = float(self.config.credit_per_tick)
                if pcpu.speed_factor != 1.0:
                    debit /= pcpu.speed_factor
                running.credit -= debit
        self._tick_count[pcpu_id] += 1
        if pcpu_id == 0 and self._tick_count[0] % self.config.assign_slots == 0:
            self.assign_credits()
            # Parked VCPUs that regained credit are *not* kicked here: as
            # in Xen, each PCPU notices newly-eligible VCPUs at its own
            # (staggered) tick.  This is what desynchronises the online
            # windows of a capped VM's VCPUs — the seed of lock-holder
            # preemption under the Credit baseline.
        if (self._ff and self.ff_quiescent_safe and pcpu.current is None
                and (self._queued == 0 or self._all_queued_parked())):
            # Lazy credit tick: the PCPU is idle and nothing queued is
            # eligible anywhere (base eligibility is exactly ``not
            # parked``), so the scheduling pass below would scan the
            # runqs, pick nothing, place nothing, emit nothing.  Skip
            # it.  Everything observable already happened above: the
            # tick counter advanced and — on PCPU 0 — Algorithm 3 ran
            # with exact conservation, so UNDER/OVER transitions and
            # park/unpark flips are identical; the *next* tick after an
            # unpark takes the normal path because the parked scan
            # fails.  With the sanitizer attached nothing is skipped:
            # the pass is replayed for real and asserted to be the
            # no-op the proof claims (check "ff-quiescence").
            if self.sanitizer is not None:
                self.sanitizer.check_ff_quiescence(pcpu)
                self.sanitizer.after_schedule(pcpu)
            return
        self.schedule(pcpu)

    def _all_queued_parked(self) -> bool:
        """True when every queued VCPU is parked under its cap — i.e. no
        scheduling pass anywhere could place anything.  Always False in
        work-conserving mode, where parking does not exist and every
        queued VCPU is eligible."""
        if self.config.work_conserving:
            return False
        for runq in self.runqs.values():
            for v in runq:
                if not v.parked:
                    return False
        return True

    def assign_credits(self) -> None:
        """Algorithm 3: distribute Cred_total = |P| * Cred_unit * K among
        VMs by weight, equally across each VM's VCPUs.

        Banking is clipped (a VCPU may save about one full running burst
        beyond its per-period share, like Xen's anti-hoarding clip), debt
        is floored, and — in non-work-conserving mode — cap enforcement
        happens *here*, at accounting granularity: a VCPU in the red is
        parked until a later assignment finds it positive again.  At low
        online rates this yields the real system's burst pattern (runs a
        whole 30 ms slice, parks ~100 ms), which is what stretches
        lock-holder-preemption waits into the 2^27..2^30 range.
        """
        cfg = self.config
        total_weight = sum(vm.weight for vm in self.vms)
        if total_weight <= 0:
            return
        cred_total = len(self.machine) * cfg.credit_per_tick * cfg.assign_slots
        burst = cfg.credit_per_tick * cfg.assign_slots  # one period's burn
        for vm in self.vms:
            omega = vm.weight / total_weight
            vm_credit = cred_total * omega
            shares = self._credit_split(vm, vm_credit)
            inc_max = max((s for _, s in shares), default=vm_credit)
            hi = inc_max + burst * (1.0 + cfg.credit_cap_periods)
            lo = -(inc_max + burst * (1.0 + cfg.credit_cap_periods))
            earned = {id(v): s for v, s in shares}
            for vcpu in vm.vcpus:
                inc = earned.get(id(vcpu), 0.0)
                vcpu.credit = min(hi, max(lo, vcpu.credit + inc))
            if not cfg.work_conserving:
                self._repark(vm, burst)
        self.trace.emit(self.sim.now, "credit.assign",
                        total=cred_total, vms=len(self.vms))
        self.post_assign()
        if self.sanitizer is not None:
            self.sanitizer.note_assign()

    def _credit_split(self, vm: VM, vm_credit: float) -> List[Tuple[VCPU, float]]:
        """How a VM's per-period credit is divided among its VCPUs.

        Xen's ``csched_acct`` splits it among the VCPUs *active* (not
        idle-blocked) at accounting time; a VCPU asleep at that instant
        earns nothing that period.  For synchronisation-heavy guests this
        is a vicious cycle — threads sleeping at a barrier forfeit income,
        park longer on wake, delay the others into sleeping more — and a
        major ingredient of the Credit scheduler's concurrent-workload
        pathology.  The Adaptive Scheduler overrides this with the paper's
        Algorithm 3 (equal split over all |C(Vi)| VCPUs).
        """
        active = [v for v in vm.vcpus if v.state is not VCPUState.BLOCKED]
        if not active:
            active = list(vm.vcpus)
        share = vm_credit / len(active)
        return [(v, share) for v in active]

    def _repark(self, vm: VM, burst: float) -> None:
        """Non-work-conserving cap enforcement at accounting granularity.

        A VCPU is eligible for the coming period only if its banked credit
        can fund a full period of running (``burst``); otherwise it parks
        and saves up.  This quantisation delivers exactly the entitled
        rate for CPU-bound VCPUs (run floor(credit/burst) of every few
        periods) while leaving blocked VCPUs unaffected.  Subclasses that
        coschedule override this to park/unpark a VM's VCPUs as a gang.
        """
        for vcpu in vm.vcpus:
            vcpu.parked = vcpu.credit < burst

    def post_assign(self) -> None:
        """Hook for subclasses (ASMan relocates VCRD-HIGH VMs here too)."""

    # ------------------------------------------------------------------ #
    # Eligibility and ordering
    # ------------------------------------------------------------------ #
    def eligible(self, vcpu: VCPU) -> bool:
        """May this RUNNABLE VCPU be placed on a PCPU right now?

        In non-work-conserving mode a parked VCPU is ineligible ("the CPU
        time obtained by the VM is strictly in proportion to its weight",
        Section 5.2); parking is decided at assignment events.
        """
        if self.config.work_conserving:
            return True
        return not vcpu.parked

    def _key(self, vcpu: VCPU) -> Tuple[int, float]:
        """Priority key, most important first.

        Class 0: coscheduled gang member in an open gang window (the IPI's
        "temporarily raise the priority", Algorithm 4 — held for the whole
        gang slot so the gang runs and exhausts credit *together*).
        Class 1: Xen's BOOST — just woke with credit in hand.
        Class 2: UNDER (credit >= 0);  class 3: OVER.
        Ties broken by maximal credit (Section 4.1).
        """
        if vcpu.boosted or \
                self._gang_until.get(vcpu.vm.id, 0) > self.sim.now:
            cls = 0
        elif vcpu.wake_boost and vcpu.credit >= 0:
            cls = 1
        elif vcpu.credit >= 0:
            cls = 2
        else:
            cls = 3
        return (cls, -vcpu.credit)

    # ------------------------------------------------------------------ #
    # The scheduling event (paper Section 4.5)
    # ------------------------------------------------------------------ #
    def schedule(self, pcpu: PCPU) -> None:
        """Run one scheduling event on ``pcpu``: pick the best eligible
        VCPU (locally, else steal), preempting the current one if beaten."""
        self._schedule(pcpu)
        if self.sanitizer is not None:
            self.sanitizer.after_schedule(pcpu)

    def _schedule(self, pcpu: PCPU) -> None:
        best = self._best_local(pcpu)
        if best is None and pcpu.current is None:
            best = self._steal_for(pcpu)
        current = pcpu.current
        if best is None:
            if current is not None and not self.eligible_running(current):
                self._deschedule(pcpu)
            return
        if current is not None:
            if not self.eligible_running(current):
                self._deschedule(pcpu)
            elif self._key(best) < self._key(current):
                self._deschedule(pcpu)
            else:
                # Current keeps the PCPU; Algorithm 4 still applies to it
                # as the head VCPU of this scheduling event.
                self.post_pick(pcpu, current)
                return
        self._place(pcpu, best)
        self.post_pick(pcpu, best)

    def eligible_running(self, vcpu: VCPU) -> bool:
        """May the *currently running* VCPU keep its PCPU?  Symmetric to
        :meth:`eligible`; split out so subclasses can differ."""
        if self.config.work_conserving:
            return True
        return not vcpu.parked

    def post_pick(self, pcpu: PCPU, vcpu: VCPU) -> None:
        """Hook invoked after a VCPU is placed (coschedulers fan out here)."""

    # -- placement helpers --------------------------------------------- #
    def _best_local(self, pcpu: PCPU) -> Optional[VCPU]:
        best: Optional[VCPU] = None
        best_key: Optional[Tuple[int, float]] = None
        for v in self.runqs[pcpu.id]:
            if not self.eligible(v):
                continue
            key = self._key(v)
            if best_key is None or key < best_key:
                best, best_key = v, key
        return best

    def _steal_for(self, pcpu: PCPU) -> Optional[VCPU]:
        """Work stealing: find the best eligible VCPU in other runqs and
        migrate it here.  Only called when this PCPU would otherwise idle."""
        if self._queued == len(self.runqs[pcpu.id]):
            return None  # every queued VCPU is already local
        best: Optional[VCPU] = None
        best_key: Optional[Tuple[int, float]] = None
        for runq in self._peer_runqs[pcpu.id]:
            for v in runq:
                if not self.eligible(v):
                    continue
                if not self.may_migrate(v, pcpu):
                    continue
                key = self._key(v)
                if best_key is None or key < best_key:
                    best, best_key = v, key
        if best is not None:
            self._move_to_runq(best, pcpu.id)
            best.migrations += 1
        return best

    def may_migrate(self, vcpu: VCPU, dest: PCPU) -> bool:
        """Migration filter hook.  Algorithm 4 forbids migrating a VCPU of
        a VCRD-HIGH VM onto a PCPU whose runq already holds a sibling;
        subclasses enforce that — the base allows everything."""
        return True

    def _place(self, pcpu: PCPU, vcpu: VCPU) -> None:
        if vcpu.state is not VCPUState.RUNNABLE:
            raise SchedulerInvariantError(
                f"placing {vcpu.name} which is {vcpu.state}")
        self._remove_from_runq(vcpu)
        vcpu.home_pcpu_id = pcpu.id
        self.context_switches += 1
        pcpu.occupy(vcpu)
        self._debit_start[id(vcpu)] = self.sim.now
        self.trace.emit(self.sim.now, "sched.switch",
                        pcpu=pcpu.id, vcpu=vcpu.name)
        # A coscheduling boost is consumed by winning a PCPU: the IPI's
        # purpose ("temporarily raise the priority", Algorithm 4) is
        # fulfilled, and ordinary credit order resumes afterwards.
        vcpu.boosted = False
        vcpu.start_running(pcpu)

    def _deschedule(self, pcpu: PCPU) -> None:
        vcpu = pcpu.vacate()
        if vcpu is None:
            return
        self.trace.emit(self.sim.now, "sched.switch",
                        pcpu=pcpu.id, vcpu=None)
        self._debit(vcpu)
        vcpu.stop_running()
        # stop_running may cascade into block() via the guest offline hook
        # in pathological guests; only runnable VCPUs rejoin the queue.
        if vcpu.state is VCPUState.RUNNABLE:
            self._enqueue(vcpu, pcpu.id)

    def _enqueue(self, vcpu: VCPU, pcpu_id: int) -> None:
        """Single entry point onto a runq: keeps home_pcpu_id and the
        global ``_queued`` counter consistent with runq membership."""
        vcpu.home_pcpu_id = pcpu_id
        self.runqs[pcpu_id].append(vcpu)
        self._queued += 1

    def _remove_from_runq(self, vcpu: VCPU) -> None:
        runq = self.runqs[vcpu.home_pcpu_id]
        try:
            runq.remove(vcpu)
        except ValueError:
            raise SchedulerInvariantError(
                f"{vcpu.name} not in its home runq {vcpu.home_pcpu_id}")
        self._queued -= 1

    def _move_to_runq(self, vcpu: VCPU, dest_pcpu_id: int) -> None:
        self._remove_from_runq(vcpu)
        self._enqueue(vcpu, dest_pcpu_id)

    # ------------------------------------------------------------------ #
    # Guest-driven events
    # ------------------------------------------------------------------ #
    def on_vcpu_block(self, vcpu: VCPU, was_running: bool) -> None:
        """A VCPU went idle.  Free its PCPU or runq slot and re-schedule."""
        if was_running:
            pcpu = vcpu.pcpu
            if pcpu is None or pcpu.current is not vcpu:
                raise SchedulerInvariantError(
                    f"blocking {vcpu.name}: PCPU linkage broken")
            pcpu.vacate()
            self.trace.emit(self.sim.now, "sched.switch",
                            pcpu=pcpu.id, vcpu=None)
            self._debit(vcpu)
            vcpu.boosted = False
            self.schedule(pcpu)
        else:
            # RUNNABLE -> BLOCKED while queued.
            self._remove_from_runq(vcpu)
            vcpu.boosted = False

    def on_vcpu_wake(self, vcpu: VCPU) -> None:
        """A blocked VCPU has work again: enqueue it, prefer idle PCPUs,
        and give it Xen's BOOST priority so a latency-sensitive VCPU can
        preempt a CPU hog immediately (the "tickle" path)."""
        home = self.machine[vcpu.home_pcpu_id]
        target = home
        if not home.is_idle:
            for p in self.machine:
                if p.is_idle and self.may_migrate(vcpu, p):
                    target = p
                    break
        self._enqueue(vcpu, target.id)
        if vcpu.credit >= 0:
            vcpu.wake_boost = True
        if self.eligible(vcpu):
            self.schedule(target)

    def on_vcrd_change(self, vm: VM) -> None:
        """Hook: a VM's VCRD flipped (only the Adaptive Scheduler reacts)."""

    def _wants_cosched(self, vm: VM) -> bool:
        """Does policy want this VM's VCPUs gang-scheduled right now?
        The base credit policy never coschedules; the CON and ASMan
        subclasses override (static hint / VCRD respectively)."""
        return False

    # ------------------------------------------------------------------ #
    # IPIs
    # ------------------------------------------------------------------ #
    def _on_ipi(self, target: int, source: int, payload) -> None:
        """Default IPI handler: a rescheduling interrupt."""
        self.schedule(self.machine[target])

    # ------------------------------------------------------------------ #
    # Introspection / verification
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Assert the runq/state invariants; used heavily by tests."""
        seen: Dict[str, int] = {}
        total_queued = sum(len(rq) for rq in self.runqs.values())
        if total_queued != self._queued:
            raise SchedulerInvariantError(
                f"_queued={self._queued} but runqs hold {total_queued}")
        for pid, runq in self.runqs.items():
            for v in runq:
                if v.state is not VCPUState.RUNNABLE:
                    raise SchedulerInvariantError(
                        f"{v.name} in runq {pid} but state={v.state}")
                if v.home_pcpu_id != pid:
                    raise SchedulerInvariantError(
                        f"{v.name} home={v.home_pcpu_id} but queued on {pid}")
                seen[v.name] = seen.get(v.name, 0) + 1
        for name, count in seen.items():
            if count > 1:
                raise SchedulerInvariantError(f"{name} in {count} runqs")
        for p in self.machine:
            v = p.current
            if v is None:
                continue
            if v.state is not VCPUState.RUNNING or v.pcpu is not p:
                raise SchedulerInvariantError(
                    f"{v.name} on PCPU {p.id} but state={v.state}")
            if v.name in seen:
                raise SchedulerInvariantError(
                    f"{v.name} both RUNNING and queued")
        for vm in self.vms:
            for v in vm.vcpus:
                if v.state is VCPUState.RUNNABLE and v.name not in seen:
                    raise SchedulerInvariantError(
                        f"{v.name} RUNNABLE but in no runq")

    def runq_of(self, vcpu: VCPU) -> List[VCPU]:
        return self.runqs[vcpu.home_pcpu_id]
