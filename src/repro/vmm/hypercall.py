"""The hypercall interface between guests and the VMM.

The paper adds one hypercall to Xen: ``do_vcrd_op``, through which the
Monitoring Module reports VCRD changes (Section 3.3).  We model a small
hypercall table so the call site in the guest looks like the real thing
(trap into the VMM, dispatch by number) and so tests can count invocations
and inject faults.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.vmm.vm import VM, VCRD

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector

#: Hypercall numbers.  Xen's __HYPERVISOR_* table stops in the 40s; the
#: paper's addition gets the next free slot by convention.
HYPERCALL_VCRD_OP = 48


class HypercallTable:
    """Dispatch table for guest→VMM software traps."""

    def __init__(self, sim: Simulator, trace: TraceBus) -> None:
        self.sim = sim
        self.trace = trace
        self._table: Dict[int, Callable[..., int]] = {}
        self.invocations: Dict[int, int] = {}
        #: Optional fault injector (repro.faults): hypercall loss, delay
        #: and duplication.  None in the default path — the hook below is
        #: a single attribute test and dispatch is unchanged.
        self.faults: Optional["FaultInjector"] = None
        self.register(HYPERCALL_VCRD_OP, self._do_vcrd_op)

    def register(self, number: int, handler: Callable[..., int]) -> None:
        self._table[number] = handler
        self.invocations.setdefault(number, 0)

    def call(self, number: int, *args) -> int:
        """Trap into the VMM.  Returns the handler's status (0 = success)."""
        handler = self._table.get(number)
        if handler is None:
            raise ConfigurationError(f"unknown hypercall {number}")
        self.invocations[number] += 1
        if self.faults is not None:
            return self.faults.hypercall(self, number, handler, args)
        return handler(*args)

    # ------------------------------------------------------------------ #
    def _do_vcrd_op(self, vm: VM, value: VCRD) -> int:
        """``do_vcrd_op``: update the VCRD of ``vm`` (paper Section 3.3)."""
        if not isinstance(value, VCRD):
            raise ConfigurationError(f"bad VCRD value {value!r}")
        vm.set_vcrd(value)
        return 0

    def do_vcrd_op(self, vm: VM, value: VCRD) -> int:
        """Convenience wrapper used by the Monitoring Module."""
        return self.call(HYPERCALL_VCRD_OP, vm, value)
