"""Relaxed coscheduling — the VMware ESX comparator from related work.

The paper's Section 6 describes VMware's approach: "VMkernel always
coschedules VCPUs of a multi-VCPU VM, although it adopts a relaxed
coscheduling to allow VCPUs to be scheduled on a slightly skewed basis.
However, it still implements static coscheduling."

The mechanism (per VMware's CPU scheduler whitepaper [13]): track each
VCPU's cumulative progress (online time); when the *skew* between the
most- and least-progressed VCPU of a VM exceeds a bound, stop the
leaders until the laggards catch up.  Unlike strict gang scheduling it
never demands simultaneous placement — it only prevents divergence.

This scheduler is not part of ASMan; it is provided as the fourth policy
so the relaxed/strict/adaptive design space the paper situates itself in
can be explored (see ``benchmarks/test_ablation_schedulers.py``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import units
from repro.hardware.machine import PCPU
from repro.vmm.scheduler_base import SchedulerBase
from repro.vmm.vm import VCPU, VM, VCPUState

#: Default skew bound: VMware's relaxed coscheduling historically stopped
#: leaders at a few milliseconds of accumulated skew.
DEFAULT_SKEW_BOUND = units.ms(3)


class RelaxedCoscheduler(SchedulerBase):
    """Skew-bounded coscheduling for VMs marked concurrent."""

    name = "relaxed"

    # Quiescent-tick fast-forward: safe, but only because of the
    # short-circuit order in :meth:`eligible` below — the parked test
    # runs *before* the skew check, so a parked VCPU never evaluates
    # skew and never bumps the ``skew_stops`` counter.  With every
    # queued VCPU parked the scheduling pass is therefore side-effect
    # free even though this scheduler's eligibility is stateful.  If the
    # check order ever flips, this opt-in must be revoked.
    ff_quiescent_safe = True

    def __init__(self, *args, skew_bound: int = DEFAULT_SKEW_BOUND,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.skew_bound = int(skew_bound)
        #: Observability: how many placements were vetoed by skew.
        self.skew_stops = 0

    # ------------------------------------------------------------------ #
    def _applies(self, vm: VM) -> bool:
        return vm.concurrent_hint and len(vm.vcpus) > 1

    @staticmethod
    def _progress(vcpu: VCPU) -> int:
        online = vcpu.online_cycles
        if vcpu._online_since is not None:
            online += vcpu._sim.now - vcpu._online_since
        return online

    def _skew_of(self, vcpu: VCPU) -> int:
        """How far ahead this VCPU is of its VM's least-progressed sibling.

        Only *runnable or running* siblings count as laggards: a VCPU the
        guest idled (blocked) is not behind, it simply has nothing to do —
        stopping leaders for it would deadlock sleep-heavy guests.
        """
        mine = self._progress(vcpu)
        laggard: Optional[int] = None
        for sibling in vcpu.vm.vcpus:
            if sibling is vcpu:
                continue
            if sibling.state is VCPUState.BLOCKED:
                continue
            p = self._progress(sibling)
            if laggard is None or p < laggard:
                laggard = p
        if laggard is None:
            return 0
        return mine - laggard

    # ------------------------------------------------------------------ #
    # Policy: a leader beyond the skew bound is ineligible (it "stops")
    # until the laggards run; laggards get a priority lift so idle PCPUs
    # pull them in quickly.
    # ------------------------------------------------------------------ #
    def eligible(self, vcpu: VCPU) -> bool:
        if not super().eligible(vcpu):
            return False
        if self._applies(vcpu.vm) and self._skew_of(vcpu) > self.skew_bound:
            self.skew_stops += 1
            return False
        return True

    def eligible_running(self, vcpu: VCPU) -> bool:
        if not super().eligible_running(vcpu):
            return False
        if self._applies(vcpu.vm) and self._skew_of(vcpu) > self.skew_bound:
            return False
        return True

    def _key(self, vcpu: VCPU):
        cls, credit_key = super()._key(vcpu)
        if self._applies(vcpu.vm) and cls >= 2:
            # A laggard (negative skew beyond the bound) outranks its
            # priority class so it catches up promptly.
            if self._skew_of(vcpu) < -self.skew_bound:
                cls = 1
        return (cls, credit_key)

    def on_vcrd_change(self, vm: VM) -> None:
        # Static policy: the Monitoring Module's reports are ignored.
        pass
