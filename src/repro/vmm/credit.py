"""The Credit scheduler — the paper's baseline.

This models Xen 3.3's default scheduler as the paper describes it
(Section 3.3): proportional-share credits recalculated every 30 ms, 10 ms
accounting ticks, automatic work stealing so "no PCPU is idle when there
exists a runnable VCPU in the system", and **no coscheduling whatsoever** —
VCPUs of one VM are scheduled fully asynchronously, which is precisely what
breaks guest spinlocks.

All of the mechanics live in :class:`~repro.vmm.scheduler_base.SchedulerBase`;
this subclass exists so the baseline is an explicit, named policy object and
so VCRD changes are deliberately ignored (a Monitoring Module running in a
guest on plain Xen would hypercall into the void).
"""

from __future__ import annotations

from repro.vmm.scheduler_base import SchedulerBase
from repro.vmm.vm import VM


def closed_form_burn(elapsed: int, credit_per_tick: float, tick_cycles: int,
                     speed_factor: float = 1.0) -> float:
    """The exact-accounting credit burn for ``elapsed`` cycles of runtime,
    in one arithmetic step.

    This is the algebra behind compute coalescing: the debit is *linear*
    in elapsed time, so charging a whole coalesced interval at once
    (``elapsed * credit_per_tick / tick_cycles``) equals stepping through
    any number of intermediate debit points summing to the same elapsed
    cycles.  :meth:`SchedulerBase._debit` applies the identical formula
    inline on its hot path; ``tests/test_fastforward.py`` pins the two to
    each other, including the degraded-PCPU ``speed_factor`` divide.
    """
    burn = elapsed * credit_per_tick / tick_cycles
    if speed_factor != 1.0:
        burn /= speed_factor
    return burn


class CreditScheduler(SchedulerBase):
    """Xen's Credit scheduler: proportional share, no coscheduling."""

    name = "credit"

    # Quiescent-tick fast-forward is safe here: ``eligible`` is the base
    # parked test with no side effects, ``post_pick`` is a no-op, and
    # ``_schedule`` on an idle PCPU with every queued VCPU parked scans
    # the runqs and returns without placing, tracing or counting
    # anything.  Credit conservation is untouched — Algorithm 3 runs at
    # assignment ticks regardless, and per-interval burn is the linear
    # :func:`closed_form_burn`, indifferent to how many scheduling
    # passes observe it.
    ff_quiescent_safe = True

    def on_vcrd_change(self, vm: VM) -> None:
        # Plain Xen has no notion of VCRD: the hypercall is accepted (the
        # guest cannot tell) but changes nothing in scheduling.
        pass
