"""The Credit scheduler — the paper's baseline.

This models Xen 3.3's default scheduler as the paper describes it
(Section 3.3): proportional-share credits recalculated every 30 ms, 10 ms
accounting ticks, automatic work stealing so "no PCPU is idle when there
exists a runnable VCPU in the system", and **no coscheduling whatsoever** —
VCPUs of one VM are scheduled fully asynchronously, which is precisely what
breaks guest spinlocks.

All of the mechanics live in :class:`~repro.vmm.scheduler_base.SchedulerBase`;
this subclass exists so the baseline is an explicit, named policy object and
so VCRD changes are deliberately ignored (a Monitoring Module running in a
guest on plain Xen would hypercall into the void).
"""

from __future__ import annotations

from repro.vmm.scheduler_base import SchedulerBase
from repro.vmm.vm import VM


class CreditScheduler(SchedulerBase):
    """Xen's Credit scheduler: proportional share, no coscheduling."""

    name = "credit"

    def on_vcrd_change(self, vm: VM) -> None:
        # Plain Xen has no notion of VCRD: the hypercall is accepted (the
        # guest cannot tell) but changes nothing in scheduling.
        pass
