"""The virtual machine monitor: VMs, VCPUs, hypercalls and schedulers.

Three schedulers are provided, matching the paper's comparison:

* :class:`repro.vmm.credit.CreditScheduler` — baseline, a model of Xen's
  Credit scheduler (proportional share, work stealing, no coscheduling).
* :class:`repro.vmm.coschedule.StaticCoscheduler` — "CON", the authors'
  prior work: VMs marked concurrent are always coscheduled.
* :class:`repro.vmm.adaptive.AdaptiveScheduler` — ASMan: coschedules a VM
  exactly while its VCRD is HIGH (Algorithms 3 and 4).
"""

from repro.vmm.vm import VM, VCPU, VCPUState, VCRD
from repro.vmm.scheduler_base import SchedulerBase
from repro.vmm.credit import CreditScheduler
from repro.vmm.coschedule import StaticCoscheduler
from repro.vmm.adaptive import AdaptiveScheduler
from repro.vmm.relaxed import RelaxedCoscheduler
from repro.vmm.hypercall import HypercallTable

__all__ = [
    "VM", "VCPU", "VCPUState", "VCRD",
    "SchedulerBase", "CreditScheduler", "StaticCoscheduler",
    "AdaptiveScheduler", "RelaxedCoscheduler", "HypercallTable",
]
