"""Static coscheduling ("CON") — the authors' prior work, VEE'09 [12].

The comparator in Figures 11–12: the administrator marks a VM as
*concurrent* (here :attr:`repro.vmm.vm.VM.concurrent_hint`), and the VMM
**always** coschedules its VCPUs, regardless of whether the workload is
currently synchronising.  The mechanism is identical to ASMan's (relocation
+ IPI fan-out + boost); only the *trigger* differs — a static property of
the VM instead of the dynamically tuned VCRD.

This is deliberately implemented as a two-line subclass of
:class:`~repro.vmm.adaptive.AdaptiveScheduler`: the paper's point is that
ASMan = CON's mechanism + a better activation policy, and the code mirrors
that.  The over-coscheduling cost that the paper attributes to CON (up to
18% degradation for high-throughput neighbours vs. ASMan's 8%) emerges
naturally: concurrent VMs keep preempting their neighbours via IPIs even
during their asynchronous compute phases.
"""

from __future__ import annotations

from repro.vmm.adaptive import AdaptiveScheduler
from repro.vmm.vm import VM


class StaticCoscheduler(AdaptiveScheduler):
    """CON: coschedule every VM statically marked as concurrent."""

    name = "con"

    # Restated (inherited True from AdaptiveScheduler) to make the
    # quiescent-tick opt-in explicit: CON changes only the coscheduling
    # *trigger*, not eligibility, so the parent's no-op proof carries.
    ff_quiescent_safe = True

    def _wants_cosched(self, vm: VM) -> bool:
        return vm.concurrent_hint

    def on_vcrd_change(self, vm: VM) -> None:
        # Static coscheduling ignores the Monitoring Module entirely.
        pass
