"""repro — a reproduction of "Dynamic Adaptive Scheduling for Virtual
Machines" (Weng, Liu, Yu, Li — HPDC 2011).

The package simulates a virtualized multi-core system faithfully enough to
reproduce the paper's phenomenon (lock-holder preemption inflating guest
spinlock waits) and its fix (ASMan: VCRD-driven adaptive coscheduling).

Layer map (bottom-up):

* :mod:`repro.sim`        — discrete-event engine, RNG streams, tracing
* :mod:`repro.hardware`   — PCPUs, topology, IPIs
* :mod:`repro.guest`      — guest kernel: tasks, spinlocks, semaphores,
  futexes, barriers
* :mod:`repro.vmm`        — VMs/VCPUs, hypercalls, the three schedulers
  (Credit, CON, ASMan)
* :mod:`repro.asman`      — Monitoring Module, locality model, Roth–Erev
  learner, VCRD tracking
* :mod:`repro.workloads`  — NAS / SPECjbb / SPEC CPU rate models
* :mod:`repro.metrics`    — spinlock stats, slowdowns, throughput, fairness
* :mod:`repro.experiments`— testbed builder and per-figure drivers

Quickstart::

    from repro.experiments import run_single_vm
    from repro.workloads import NasBenchmark

    result = run_single_vm(lambda: NasBenchmark.by_name("LU", scale=0.2),
                           scheduler="asman", online_rate=0.4)
    print(result.runtime_seconds, result.spin_summary)
"""

from repro import units
from repro.config import (GuestConfig, LearningConfig, MachineConfig,
                          MonitorConfig, SchedulerConfig, VMConfig,
                          vcpu_online_rate, weight_proportion)
from repro.errors import (ConfigurationError, GuestStateError, ReproError,
                          SchedulerInvariantError, SimulationError,
                          WorkloadError)
from repro.experiments import (Testbed, run_multi_vm, run_single_vm,
                               run_specjbb, weight_for_rate, PAPER_RATES)
from repro.sim import Simulator, TraceBus, RngStreams
from repro.vmm import (VM, VCPU, VCRD, AdaptiveScheduler, CreditScheduler,
                       StaticCoscheduler)
from repro.workloads import (NasBenchmark, SpecCpuRateWorkload,
                             SpecJbbWorkload, SyntheticWorkload)

__version__ = "1.2.0"

__all__ = [
    "units",
    # config
    "GuestConfig", "LearningConfig", "MachineConfig", "MonitorConfig",
    "SchedulerConfig", "VMConfig", "vcpu_online_rate", "weight_proportion",
    # errors
    "ReproError", "ConfigurationError", "SimulationError",
    "SchedulerInvariantError", "GuestStateError", "WorkloadError",
    # experiments
    "Testbed", "run_single_vm", "run_multi_vm", "run_specjbb",
    "weight_for_rate", "PAPER_RATES",
    # sim
    "Simulator", "TraceBus", "RngStreams",
    # vmm
    "VM", "VCPU", "VCRD",
    "CreditScheduler", "AdaptiveScheduler", "StaticCoscheduler",
    # workloads
    "NasBenchmark", "SpecCpuRateWorkload", "SpecJbbWorkload",
    "SyntheticWorkload",
    "__version__",
]
