"""Configuration dataclasses for machines, VMs and schedulers.

These are plain, validated value objects; construction performs all sanity
checks so that downstream code can assume a consistent configuration.  The
defaults mirror the paper's testbed: a Dell T5400 with dual quad-core Xeon
X5410 (8 PCPUs at 2.33 GHz), Xen 3.3.0 Credit-scheduler timing (30 ms time
slice, 10 ms accounting tick), and ASMan's delta = 20 over-threshold
exponent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro import units
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MachineConfig:
    """Physical machine description."""

    num_pcpus: int = 8
    cpu_hz: int = units.CPU_HZ
    #: sockets * cores_per_socket must equal num_pcpus (used by topology).
    sockets: int = 2
    #: Latency of an inter-processor interrupt, in cycles (~1 microsecond).
    ipi_latency: int = units.us(1)

    def __post_init__(self) -> None:
        if self.num_pcpus <= 0:
            raise ConfigurationError("num_pcpus must be positive")
        if self.sockets <= 0 or self.num_pcpus % self.sockets != 0:
            raise ConfigurationError(
                f"{self.num_pcpus} PCPUs do not divide into {self.sockets} sockets")
        if self.ipi_latency < 0:
            raise ConfigurationError("ipi_latency must be >= 0")


@dataclass(frozen=True)
class SchedulerConfig:
    """Timing parameters shared by all VMM schedulers (Xen Credit defaults).

    ``slice_cycles`` is the 30 ms scheduling slice; ``tick_cycles`` the 10 ms
    accounting tick (the paper: "The basic unit time of scheduling is 10 ms,
    and the Credit of a running VCPU is decreased every 10 ms").  Credit is
    assigned every ``assign_slots`` ticks (the paper's interval of K slots;
    K=3 gives Xen's 30 ms accounting period).
    """

    slice_cycles: int = units.ms(30)
    tick_cycles: int = units.ms(10)
    assign_slots: int = 3
    #: Credit debited from a running VCPU per tick (Xen uses 100).
    credit_per_tick: int = 100
    #: Work-conserving: VMs may consume idle CPU beyond their weight share.
    work_conserving: bool = True
    #: Upper bound on accumulated credit, in assignment periods, so an
    #: idle VM cannot bank unbounded credit (Xen caps at one period's worth).
    credit_cap_periods: float = 1.0
    #: Credit accounting mode.  False (default) models Xen faithfully:
    #: whoever is running *at* a PCPU's tick is debited a full tick's
    #: credit.  Sampling is accurate for CPU-bound VCPUs but noisy for
    #: bursty (synchronisation-heavy) ones — that noise spreads the VCPUs'
    #: credit and hence their park/unpark times, desynchronising their
    #: online windows; it is a root cause of the paper's phenomenon.
    #: True debits exactly by elapsed runtime (ablation: how much of the
    #: pathology does accounting noise contribute?).
    exact_accounting: bool = False
    #: Context-switch overhead charged on every VCPU switch, in cycles.
    context_switch_cycles: int = units.us(3)
    #: Minimum spacing between IPI coscheduling fan-outs of one VM.  Gang
    #: launches are slot-grained (a gang runs for about a slot before
    #: another gang may evict it); without this, two coscheduled VMs evict
    #: each other at IPI latency and both starve.
    cosched_cooldown_cycles: int = units.ms(10)

    def __post_init__(self) -> None:
        if self.tick_cycles <= 0:
            raise ConfigurationError("tick_cycles must be positive")
        if self.slice_cycles % self.tick_cycles != 0:
            raise ConfigurationError("slice must be a multiple of the tick")
        if self.assign_slots <= 0:
            raise ConfigurationError("assign_slots must be positive")
        if self.credit_per_tick <= 0:
            raise ConfigurationError("credit_per_tick must be positive")
        if self.context_switch_cycles < 0:
            raise ConfigurationError("context_switch_cycles must be >= 0")


@dataclass(frozen=True)
class LearningConfig:
    """Parameters of the modified Roth–Erev learning algorithm (Section 4.3).

    The algorithm estimates the lasting time X_i of each locality of
    synchronization.  ``candidates`` is the discrete set of possible
    durations (the paper's N possible values of X), in cycles.
    """

    #: Recency parameter r in [0, 1): how fast old propensities decay.
    recency: float = 0.2
    #: Experimentation parameter e in [0, 1): probability mass spread to
    #: non-reinforced candidates.
    experimentation: float = 0.1
    #: Initial scaling parameter s(0).
    initial_scale: float = 1.0
    #: Candidate coscheduling durations (cycles).  Default: geometric grid
    #: from 4 ms to ~4 s, N = 11.  The top of the range matters for
    #: continuously-synchronising workloads (LU): their localities chain
    #: into effectively unbounded stretches, and the learner should be
    #: able to express that.
    candidates: Tuple[int, ...] = tuple(
        int(units.ms(4) * (2.0 ** k)) for k in range(11))
    #: Threshold Delta for classifying under-coscheduling: if the next
    #: over-threshold spinlock arrives within Delta cycles of coscheduling
    #: ending, the estimate was too short and probability mass moves to
    #: longer durations.  The paper leaves Delta unspecified; 500 ms makes
    #: the learner treat episodes recurring at sub-second gaps as one
    #: continuing locality, which is what its NAS experiments need.
    under_cosched_delta: int = units.ms(500)

    def __post_init__(self) -> None:
        if not 0.0 <= self.recency < 1.0:
            raise ConfigurationError("recency must be in [0, 1)")
        if not 0.0 <= self.experimentation < 1.0:
            raise ConfigurationError("experimentation must be in [0, 1)")
        if self.initial_scale <= 0:
            raise ConfigurationError("initial_scale must be positive")
        if len(self.candidates) < 2:
            raise ConfigurationError("need at least two candidate durations")
        if any(c <= 0 for c in self.candidates):
            raise ConfigurationError("candidate durations must be positive")
        if list(self.candidates) != sorted(self.candidates):
            raise ConfigurationError("candidates must be sorted ascending")


@dataclass(frozen=True)
class MonitorConfig:
    """Monitoring Module parameters (guest side of ASMan)."""

    #: delta: waits above 2**delta_exp cycles are over-threshold (paper: 20).
    delta_exp: int = units.DELTA_EXP
    #: Waits above 2**measure_floor_exp cycles are recorded at all (paper: 10).
    measure_floor_exp: int = 10
    #: Cost in cycles of executing the do_vcrd_op hypercall from the guest.
    hypercall_cycles: int = units.us(2)
    learning: LearningConfig = field(default_factory=LearningConfig)

    def __post_init__(self) -> None:
        if not 0 < self.measure_floor_exp <= self.delta_exp:
            raise ConfigurationError(
                "need 0 < measure_floor_exp <= delta_exp")

    @property
    def over_threshold_cycles(self) -> int:
        return 1 << self.delta_exp

    @property
    def measure_floor_cycles(self) -> int:
        return 1 << self.measure_floor_exp


@dataclass(frozen=True)
class GuestConfig:
    """Guest operating system parameters."""

    #: Guest scheduler timeslice for multiplexing tasks on a VCPU (cycles).
    timeslice_cycles: int = units.ms(10)
    #: Futex spin budget before blocking (cycles).  Models the adaptive
    #: spin-then-block behaviour of futex-based synchronisation: libgomp's
    #: default wait policy busy-waits a long while (~10^5..10^6 cycles)
    #: before sleeping, which is tuned for dedicated HPC nodes and is a
    #: large CPU-waste source once VCPUs are descheduled under them.
    futex_spin_cycles: int = units.us(400)
    #: Hold time of the futex hash-bucket spinlock per wait/wake operation.
    futex_bucket_hold_cycles: int = units.us(6)
    #: Base cost of acquiring an uncontended spinlock.
    spinlock_acquire_cycles: int = 200
    #: Cost of a context switch inside the guest.
    context_switch_cycles: int = units.us(2)
    #: Interrupt housekeeping on VCPU0.  Linux routes device and timer
    #: interrupts to CPU0 by default, so VCPU0 carries a persistent extra
    #: load.  Under a credit cap this drains VCPU0's credit faster each
    #: period, drifting its park phase away from its siblings' — the
    #: persistent asymmetry that desynchronises a capped VM's online
    #: windows (and that gang-aware scheduling absorbs).  Zero interval
    #: disables the IRQ daemon.
    irq_interval_cycles: int = units.ms(1)
    irq_work_cycles: int = units.us(100)
    #: Every Nth interrupt takes a shared kernel spinlock briefly (timer
    #: wheel / xtime-style bookkeeping).
    irq_lock_period: int = 4
    irq_lock_hold_cycles: int = units.us(3)

    def __post_init__(self) -> None:
        if self.timeslice_cycles <= 0:
            raise ConfigurationError("guest timeslice must be positive")
        if self.futex_spin_cycles < 0:
            raise ConfigurationError("futex spin budget must be >= 0")
        if self.irq_interval_cycles < 0:
            raise ConfigurationError("irq interval must be >= 0")
        if self.irq_lock_period < 1:
            raise ConfigurationError("irq_lock_period must be >= 1")


@dataclass(frozen=True)
class VMConfig:
    """One virtual machine: VCPUs, weight, and optional monitoring."""

    name: str
    num_vcpus: int = 4
    weight: int = 256
    #: Memory in MB — recorded for fidelity with the paper's setup; the
    #: simulator does not model memory pressure.
    memory_mb: int = 1024
    #: Install the ASMan Monitoring Module in this guest's kernel.
    monitored: bool = False
    guest: GuestConfig = field(default_factory=GuestConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("VM needs a name")
        if self.num_vcpus <= 0:
            raise ConfigurationError("num_vcpus must be positive")
        if self.weight <= 0:
            raise ConfigurationError("weight must be positive")


def weight_proportion(weights: Sequence[int], index: int) -> float:
    """Equation (1): weight of VM ``index`` divided by the total weight."""
    total = sum(weights)
    if total <= 0:
        raise ConfigurationError("total weight must be positive")
    return weights[index] / total


def vcpu_online_rate(num_pcpus: int, proportion: float, num_vcpus: int) -> float:
    """Equation (2): |P| * omega(Vi) / |C(Vi)|, capped at 1.0.

    The cap reflects that a VCPU cannot be online more than all the time;
    Equation (2) in the paper implicitly assumes the uncapped case.
    """
    if num_vcpus <= 0:
        raise ConfigurationError("num_vcpus must be positive")
    return min(1.0, num_pcpus * proportion / num_vcpus)
