"""Differential oracle: cross-scheduler invariants over one scenario.

The oracle never looks at a reference implementation — correctness is
defined *relationally*, across the three schedulers' runs of the same
scenario and against scheduler-independent physics:

**Per-run invariants** (every scheduler, every scenario)
  progress (events executed, non-negative virtual time), bounded
  fairness index, complete VM labelling, fault-stats presence iff a
  fault spec was armed.

**Fault-free invariants** (clean scenarios only — a fault class is
  *allowed* to stall a run, never to corrupt one)
  liveness (the workload finishes inside the generous deadline), no
  lost VCPUs (the monitored VM measurably ran; every VM reports its
  measured rounds), the credit cap (NWC single-VM measured online rate
  may not exceed the configured rate beyond tolerance — credit
  conservation end to end), a Jain fairness floor for equal-weight
  multi-VM mixes, and co-online convergence: on synchronisation-heavy
  scenarios the adaptive scheduler's co-online fraction must not fall
  below plain credit's (gang scheduling can only help concurrency).

**Differential agreement** (fault-free)
  identical VM labelling and round accounting structure across
  schedulers, and unanimous completion.

Thresholds are deliberately explicit module constants: the corpus is
deterministic, so they only need to hold at the drawn points — if a
scheduler change trips one, that is a behavioural diff to investigate,
not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

#: Signature of the violation-recording callback threaded through the
#: check helpers: (check, scheduler-or-None, message).
_Report = Callable[[str, Optional[str], str], None]

from repro.conformance.scenarios import Scenario
from repro.experiments.runner import MultiVmResult, SingleVmResult

__all__ = [
    "CAP_TOLERANCE",
    "CO_TOLERANCE",
    "JAIN_FLOOR",
    "ScenarioVerdict",
    "Violation",
    "judge",
]

#: NWC single-VM runs: measured online rate may overshoot the configured
#: rate by at most this (boost/rounding slack on short runs).
CAP_TOLERANCE = 0.10

#: The credit cap only binds once the startup transient (one banked
#: accounting period of credit, see ``SchedulerBase.add_vm``) is
#: amortised: runs shorter than this many accounting periods are exempt.
CAP_MIN_PERIODS = 15

#: Fault-free equal-weight multi-VM mixes under any scheduler must keep
#: Jain's index above this floor (1.0 is perfect fairness).
JAIN_FLOOR = 0.70

#: Adaptive co-online fraction may trail plain credit's by at most this
#: on concurrent fault-free single-VM scenarios.
CO_TOLERANCE = 0.05

#: A fault-free single VM must have measurably run (lost-VCPU guard).
MIN_ONLINE_RATE = 0.01


@dataclass(frozen=True)
class Violation:
    """One invariant breach found by the oracle."""

    scenario: int
    check: str
    scheduler: Optional[str]
    message: str

    def render(self) -> str:
        where = f"[{self.scheduler}]" if self.scheduler else "[*]"
        return f"#{self.scenario} {where} {self.check}: {self.message}"


@dataclass
class ScenarioVerdict:
    """The oracle's output for one scenario."""

    scenario: Scenario
    #: scheduler -> 64-bit result fingerprint (hex), the determinism unit
    #: compared across job counts and cache states.
    fingerprints: Dict[str, str] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def judge(scenario: Scenario,
          results: Mapping[str, object],
          roles: Optional[Mapping[str, str]] = None) -> List[Violation]:
    """Check one scenario's per-scheduler results against the invariants.

    ``results`` maps scheduler name -> runner result dataclass.
    ``roles`` maps scheduler names to the *policy role* their checks run
    under ("credit"/"relaxed"/"asman"); unmapped names are their own
    role.  The mutant tests use this to run a broken scheduler under its
    parent's contract.
    """
    out: List[Violation] = []
    role = {s: (roles or {}).get(s, s) for s in results}

    def bad(check: str, scheduler: Optional[str], message: str) -> None:
        out.append(Violation(scenario.index, check, scheduler, message))

    clean = scenario.fault_free
    for sched, res in results.items():
        if isinstance(res, SingleVmResult):
            _check_single(scenario, sched, res, clean, bad)
        elif isinstance(res, MultiVmResult):
            _check_multi(scenario, sched, res, clean, bad)
        else:
            bad("result-type", sched,
                f"unexpected result type {type(res).__name__}")

    if clean:
        _check_differential(scenario, results, role, bad)
    return out


# --------------------------------------------------------------------- #
def _check_single(scenario: Scenario, sched: str, res: SingleVmResult,
                  clean: bool, bad: _Report) -> None:
    base = scenario.base
    if res.events_executed <= 0:
        bad("progress", sched, "no simulator events executed")
    if res.runtime_cycles < 0:
        bad("monotone-time", sched,
            f"negative virtual time {res.runtime_cycles}")
    if not 0.0 <= res.measured_online_rate <= 1.0 + 1e-9:
        bad("online-rate-bounds", sched,
            f"measured online rate {res.measured_online_rate:.4f} "
            f"outside [0, 1]")
    if res.co_online_fraction is not None \
            and not 0.0 <= res.co_online_fraction <= 1.0 + 1e-9:
        bad("co-online-bounds", sched,
            f"co-online fraction {res.co_online_fraction:.4f} "
            f"outside [0, 1]")
    if clean != (res.fault_stats is None):
        bad("fault-stats", sched,
            "fault counters present on a clean run" if clean
            else "fault counters missing on a faulted run")
    if not clean:
        return
    # Liveness: the scenario deadline is generous; a clean run that
    # fails to finish points at a stall (lost VCPU, broken wakeup, ...).
    if not res.finished:
        bad("liveness", sched,
            f"clean run hit the deadline after "
            f"{res.runtime_seconds:.1f} simulated seconds")
        return
    if res.measured_online_rate < MIN_ONLINE_RATE:
        bad("lost-vcpu", sched,
            f"measured online rate {res.measured_online_rate:.4f} — "
            f"the VM barely ran")
    # Credit conservation end to end: in NWC mode the long-run online
    # rate is capped by the configured rate (Equations 1+2).  Only
    # meaningful once the run spans enough accounting periods to
    # amortise the banked startup credit.
    cfg = base.resolved_sched_config()
    period = cfg.tick_cycles * cfg.assign_slots
    if not cfg.work_conserving \
            and res.runtime_cycles >= CAP_MIN_PERIODS * period \
            and res.measured_online_rate > base.online_rate + CAP_TOLERANCE:
        bad("credit-cap", sched,
            f"measured online rate {res.measured_online_rate:.4f} exceeds "
            f"configured {base.online_rate:.4f} + {CAP_TOLERANCE} over "
            f"{res.runtime_cycles // period} accounting periods")


def _check_multi(scenario: Scenario, sched: str, res: MultiVmResult,
                 clean: bool, bad: _Report) -> None:
    base = scenario.base
    names = [name for name, _, _ in base.assignments]
    if res.events_executed <= 0:
        bad("progress", sched, "no simulator events executed")
    if not 0.0 < res.fairness_jains <= 1.0 + 1e-9:
        bad("fairness-bounds", sched,
            f"Jain's index {res.fairness_jains:.4f} outside (0, 1]")
    if sorted(res.labels) != sorted(names):
        bad("vm-accounting", sched,
            f"labels cover {sorted(res.labels)}, expected {sorted(names)}")
    for name, seconds in res.round_seconds.items():
        if seconds <= 0:
            bad("monotone-time", sched,
                f"VM {name} reports non-positive round time {seconds}")
    if not clean:
        return
    if not res.finished:
        bad("liveness", sched,
            f"clean mix missed {res.rounds_measured} rounds before "
            f"the deadline")
        return
    missing = sorted(set(names) - set(res.round_seconds))
    if missing:
        bad("lost-vcpu", sched,
            f"VMs {missing} never completed their measured rounds")
    # The equal-weight fairness floor is only meaningful when every VM
    # demands the same work (a heterogeneous neighbour legitimately
    # idles once its lighter program completes its rounds).
    demands = {(w.family, w.name, w.scale, w.rounds)
               for _, w, _ in base.assignments}
    if len(demands) == 1 and res.fairness_jains < JAIN_FLOOR:
        bad("fairness-floor", sched,
            f"Jain's index {res.fairness_jains:.4f} below equal-weight "
            f"floor {JAIN_FLOOR} on a homogeneous mix")


def _check_differential(scenario: Scenario,
                        results: Mapping[str, object],
                        role: Mapping[str, str], bad: _Report) -> None:
    multi = {s: r for s, r in results.items()
             if isinstance(r, MultiVmResult)}
    single = {s: r for s, r in results.items()
              if isinstance(r, SingleVmResult)}

    # Unanimous completion: on a clean scenario all schedulers finish
    # (each already checked individually); here we catch the *diff* —
    # one scheduler stalling where its peers complete.
    finished = {s: bool(getattr(r, "finished", False))
                for s, r in results.items()}
    if len(set(finished.values())) > 1:
        stalled = sorted(s for s, f in finished.items() if not f)
        bad("cross-agreement", None,
            f"{stalled} stalled while the other scheduler(s) finished")

    if multi:
        labels = {s: tuple(sorted(r.labels.items()))
                  for s, r in multi.items()}
        if len(set(labels.values())) > 1:
            bad("cross-agreement", None,
                f"schedulers disagree on VM labelling: {labels}")

    # Co-online convergence (the paper's Figure 7 claim, fuzzed): on a
    # concurrent scenario the adaptive scheduler must reach at least the
    # plain credit scheduler's co-online fraction.
    if single and scenario.concurrent:
        by_role: Dict[str, List[float]] = {}
        for s, r in single.items():
            if r.finished and r.co_online_fraction is not None:
                by_role.setdefault(role[s], []).append(
                    r.co_online_fraction)
        credit = by_role.get("credit")
        asman = by_role.get("asman")
        if credit and asman and min(asman) < max(credit) - CO_TOLERANCE:
            bad("co-online-convergence", None,
                f"adaptive co-online {min(asman):.4f} fell more than "
                f"{CO_TOLERANCE} below credit's {max(credit):.4f} on a "
                f"concurrent scenario")
