"""Conformance layer: scenario fuzzing, differential oracle, golden traces.

The paper's central claim is *behavioral*: the adaptive scheduler must
converge to coscheduling exactly for concurrent VMs and to proportional
credit scheduling for non-concurrent ones, without violating fairness or
liveness.  The figure experiments check that claim at a handful of
hand-picked points; this package checks it across a fuzzed scenario
space:

* :mod:`repro.conformance.scenarios` — a deterministic scenario fuzzer
  drawing ``CellSpec`` + ``FaultSpec`` scenarios from dedicated named
  RNG streams (``conformance/scenario/<i>``), so generating scenario
  *i* never perturbs scenario *j*, workload draws, or learner draws;
* :mod:`repro.conformance.oracle` — a differential oracle running every
  scenario under the credit / relaxed-co / adaptive schedulers on the
  parallel fabric and checking cross-scheduler invariants plus
  metamorphic relations;
* :mod:`repro.conformance.golden` — golden-trace record/replay: compact
  canonical event traces checked into ``tests/fixtures/golden/`` with
  fingerprint comparison and drift diffing;
* :mod:`repro.conformance.shrink` — an auto-shrinker minimising any
  failing scenario to a reproducible ``--replay`` artifact;
* :mod:`repro.conformance.mutants` — deliberately broken test-only
  schedulers proving the oracle catches seeded invariant violations.

Everything here is host-side tooling (``TOOLING_PACKAGES`` in
:mod:`repro.analysis.simlint`); nothing runs inside the simulated world.

CLI: ``python -m repro conform --scenarios N --jobs auto``.
"""

from repro.conformance.driver import ConformanceReport, conform
from repro.conformance.oracle import ScenarioVerdict, Violation, judge
from repro.conformance.scenarios import (SCHEDULERS_UNDER_TEST, Scenario,
                                         generate, scenario_at)

__all__ = [
    "ConformanceReport",
    "SCHEDULERS_UNDER_TEST",
    "Scenario",
    "ScenarioVerdict",
    "Violation",
    "conform",
    "generate",
    "judge",
    "scenario_at",
]
