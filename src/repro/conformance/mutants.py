"""Deliberately broken schedulers: the oracle's negative controls.

A conformance suite that never fails proves nothing.  Each mutant here
seeds one specific invariant violation into an otherwise-correct
scheduler; the tests then assert the differential oracle *catches* it
and the shrinker minimises the failing scenario to a tiny replayable
artifact.

Mutants are registered under ``mutant-*`` names via
:func:`repro.experiments.setup.register_scheduler`.  Registration is
process-local — parallel-fabric workers are spawned fresh and do not
see it — so mutant cells must run with ``jobs=1`` (the shrinker and the
regression tests do).

These classes are test fixtures, not simulation features: nothing in
the library imports this module; production scheduler names can never
resolve to a mutant.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Type

from repro.config import SchedulerConfig
from repro.hardware.machine import Machine
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.vmm.credit import CreditScheduler
from repro.vmm.scheduler_base import SchedulerBase
from repro.vmm.vm import VCPU, VM

__all__ = ["MUTANT_ROLES", "MUTANT_SCHEDULERS", "install"]


class LostVcpuScheduler(CreditScheduler):
    """Credit scheduler that silently drops wake-ups for the last VCPU
    of every multi-VCPU guest VM.

    The lost VCPU runs until it first blocks and is then never enqueued
    again — the "lost VCPU" liveness bug class.  It bites exactly the
    workloads whose guests genuinely sleep and wake (semaphore pingpong,
    NAS futex barriers); spin-wait synthetic programs never block their
    VCPUs and sail through, which is precisely why a fuzzed corpus beats
    a hand-picked smoke test here.  The oracle reports the stall as a
    ``liveness`` violation on clean scenarios and as ``cross-agreement``
    when run next to a healthy scheduler.
    """

    name = "mutant-lost-vcpu"

    def __init__(self, machine: Machine, sim: Simulator, trace: TraceBus,
                 config: Optional[SchedulerConfig] = None) -> None:
        super().__init__(machine, sim, trace, config)
        self._lost: Set[int] = set()

    def add_vm(self, vm: VM) -> None:
        super().add_vm(vm)
        if vm.name != "Domain-0" and len(vm.vcpus) >= 2:
            self._lost.add(id(vm.vcpus[-1]))

    def on_vcpu_wake(self, vcpu: VCPU) -> None:
        if id(vcpu) in self._lost:
            return  # the seeded bug: the wake-up is dropped on the floor
        super().on_vcpu_wake(vcpu)


MUTANT_SCHEDULERS: Dict[str, Type[SchedulerBase]] = {
    LostVcpuScheduler.name: LostVcpuScheduler,
}

#: The policy role each mutant is judged under (see ``oracle.judge``).
MUTANT_ROLES: Dict[str, str] = {
    LostVcpuScheduler.name: "credit",
}


def install() -> None:
    """Register every mutant scheduler (idempotent, process-local)."""
    from repro.experiments.setup import register_scheduler
    for name, cls in MUTANT_SCHEDULERS.items():
        register_scheduler(name, cls)
