"""Auto-shrinker: minimise a failing scenario to a replayable artifact.

Greedy fixpoint reduction, the delta-debugging idiom: apply one
structural simplification at a time — zero the faults, drop VMs,
substitute simpler workloads, halve the machine, halve the scale and
deadline — and keep a candidate only if the oracle still reports
*exactly* the original violation signature (the same ``(check,
scheduler)`` pairs, and no new ones).  The signature guard matters: a
naive "still fails somehow" predicate happily shrinks the deadline
until *every* scheduler times out, which is a different bug.

All probes run serially in-process (``jobs=1`` semantics): mutant
schedulers are process-local registrations that spawn workers cannot
see, and a shrink probe is a single small cell anyway.

The result serialises to a JSON artifact (``save_artifact``) built on
``CellSpec.canonical()``; ``replay_artifact`` reconstructs the cell via
:func:`repro.parallel.cells.from_canonical`, re-runs it and confirms
the violation signature reproduces — the CLI exposes this as
``python -m repro conform --replay artifact.json``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, Iterator, List, Mapping, Optional, Sequence,
                    Set, Tuple, Union)

from repro import units
from repro.conformance.oracle import Violation, judge
from repro.conformance.scenarios import SCALES, Scenario
from repro.errors import ConfigurationError
from repro.parallel.cells import (CellSpec, WorkloadSpec, execute_cell,
                                  from_canonical)
from repro.workloads.synthetic import SYNTH_PROFILES

__all__ = [
    "ARTIFACT_SCHEMA",
    "ReplayOutcome",
    "ShrinkResult",
    "replay_artifact",
    "save_artifact",
    "shrink",
]

#: Version stamp of the artifact JSON layout.
ARTIFACT_SCHEMA = 1

#: A violation signature: the set of (check, scheduler-or-None) pairs.
_Signature = Set[Tuple[str, Optional[str]]]

#: Deadlines are never shrunk below this (replay must stay meaningful).
_MIN_DEADLINE = units.seconds(2)

#: Simpler workloads tried as drop-in replacements, most-preferred
#: first: (family, profile, scale, concurrent).  pingpong2 genuinely
#: blocks/wakes its VCPUs, so liveness bugs in the wake path keep
#: reproducing after substitution; compute1 is the smallest program of
#: all for bugs that don't need synchronisation.
_SIMPLER_WORKLOADS: Tuple[Tuple[str, str, float, bool], ...] = (
    ("synthetic", "pingpong2", 0.3, True),
    ("synthetic", "compute1", 0.3, False),
)


@dataclass
class ShrinkResult:
    """What the shrinker produced for one failing scenario."""

    original: Scenario
    minimized: Scenario
    schedulers: Tuple[str, ...]
    roles: Dict[str, str]
    signature: _Signature
    violations: List[Violation] = field(default_factory=list)
    steps: int = 0
    probes: int = 0

    def render(self) -> str:
        o, m = self.original.base, self.minimized.base
        lines = [
            f"shrunk scenario #{self.original.index} in {self.steps} "
            f"step(s) / {self.probes} probe(s):",
            f"  from: {self.original.describe()}",
            f"  to:   {self.minimized.describe()}",
            f"  machine: {o.num_vcpus}v/{o.num_pcpus}p -> "
            f"{m.num_vcpus}v/{m.num_pcpus}p",
        ]
        for v in self.violations:
            lines.append(f"  {v.render()}")
        return "\n".join(lines)


@dataclass
class ReplayOutcome:
    """Result of re-running a shrink artifact."""

    scenario: Scenario
    expected: _Signature
    violations: List[Violation]

    @property
    def reproduced(self) -> bool:
        got = {(v.check, v.scheduler) for v in self.violations}
        return got == self.expected

    def render(self) -> str:
        lines = [f"replay {self.scenario.describe()}"]
        for v in self.violations:
            lines.append(f"  {v.render()}")
        lines.append("violation signature reproduced"
                     if self.reproduced else
                     f"signature MISMATCH: expected {sorted(self.expected)}")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
def shrink(scenario: Scenario,
           schedulers: Sequence[str],
           roles: Optional[Mapping[str, str]] = None,
           max_probes: int = 200) -> ShrinkResult:
    """Minimise ``scenario`` while its violation signature is preserved."""
    roles_d = dict(roles or {})
    signature = _signature_of(_judge_cell(scenario, schedulers, roles_d))
    if not signature:
        raise ConfigurationError(
            f"scenario #{scenario.index} does not violate the oracle — "
            f"nothing to shrink")
    result = ShrinkResult(original=scenario, minimized=scenario,
                          schedulers=tuple(schedulers), roles=roles_d,
                          signature=signature)
    current = scenario
    improved = True
    while improved and result.probes < max_probes:
        improved = False
        for candidate in _candidates(current):
            if result.probes >= max_probes:
                break
            result.probes += 1
            violations = _judge_cell(candidate, schedulers, roles_d)
            if _signature_of(violations) == signature:
                current = candidate
                result.steps += 1
                improved = True
                break  # restart the ladder from the smallest transform
    result.minimized = current
    result.violations = _judge_cell(current, schedulers, roles_d)
    return result


def _signature_of(violations: Sequence[Violation]) -> _Signature:
    return {(v.check, v.scheduler) for v in violations}


def _judge_cell(scenario: Scenario, schedulers: Sequence[str],
                roles: Mapping[str, str]) -> List[Violation]:
    results = {sched: execute_cell(scenario.cell(sched))
               for sched in schedulers}
    return judge(scenario, results, roles=roles)


# --------------------------------------------------------------------- #
def _candidates(sc: Scenario) -> Iterator[Scenario]:
    """Structurally smaller variants of ``sc``, smallest step first."""
    base = sc.base

    def derived(spec: CellSpec) -> Scenario:
        return dataclasses.replace(sc, base=spec)

    # 1. Zero the faults: does the bug reproduce on a clean machine?
    if base.faults is not None:
        yield derived(dataclasses.replace(base, faults=None))

    # 2. Drop one VM at a time from a mix.
    if base.kind == "multi_vm" and len(base.assignments) > 1:
        for i in range(len(base.assignments)):
            kept = base.assignments[:i] + base.assignments[i + 1:]
            yield derived(dataclasses.replace(base, assignments=kept))

    # 3. Substitute each workload with a structurally simpler one.
    for fam, prof, scale, conc in _SIMPLER_WORKLOADS:
        simple = WorkloadSpec(fam, prof, scale=scale)
        if base.kind == "single_vm":
            assert base.workload is not None
            if (base.workload.family, base.workload.name) != (fam, prof) \
                    and _min_vcpus(simple) <= base.num_vcpus:
                yield derived(dataclasses.replace(base, workload=simple))
                # Also try shrinking the guest to the substitute's
                # natural size in the same step: a thread-placement-
                # sensitive bug (e.g. a lost *last* VCPU) often only
                # reproduces when the small program fills the guest.
                if _min_vcpus(simple) < base.num_vcpus:
                    yield derived(dataclasses.replace(
                        base, workload=simple,
                        num_vcpus=_min_vcpus(simple)))
        else:
            for i, (name, w, _conc) in enumerate(base.assignments):
                if (w.family, w.name) == (fam, prof) \
                        or _min_vcpus(simple) > base.num_vcpus:
                    continue
                swapped = dataclasses.replace(simple, rounds=w.rounds)
                new = (base.assignments[:i]
                       + ((name, swapped, conc),)
                       + base.assignments[i + 1:])
                yield derived(dataclasses.replace(base, assignments=new))

    # 4. Fewer measured rounds.
    if base.kind == "multi_vm" and base.measure_rounds > 1:
        trimmed = tuple(
            (n, dataclasses.replace(w, rounds=2), c)
            for n, w, c in base.assignments)
        yield derived(dataclasses.replace(
            base, measure_rounds=1, assignments=trimmed))

    # 5. Halve the guest, then the machine (rate kept feasible).
    floor = max((_min_vcpus(w) for w in _workloads(base)), default=1)
    if base.num_vcpus // 2 >= floor:
        yield derived(dataclasses.replace(
            base, num_vcpus=base.num_vcpus // 2))
    if base.num_pcpus // 2 >= base.num_vcpus \
            and _rate_feasible(base, base.num_pcpus // 2):
        yield derived(dataclasses.replace(
            base, num_pcpus=base.num_pcpus // 2))

    # 6. Lighter programs: the family's smallest corpus scale.
    for spec in _scaled_down(base):
        yield derived(spec)

    # 7. A tighter deadline (cheaper replay of stalls).
    if base.deadline_cycles is not None \
            and base.deadline_cycles // 2 >= _MIN_DEADLINE:
        yield derived(dataclasses.replace(
            base, deadline_cycles=base.deadline_cycles // 2))


def _workloads(base: CellSpec) -> List[WorkloadSpec]:
    if base.kind == "single_vm":
        assert base.workload is not None
        return [base.workload]
    return [w for _, w, _ in base.assignments]


def _min_vcpus(w: WorkloadSpec) -> int:
    """Smallest guest the workload can run on (thread placement floor)."""
    if w.family == "nas":
        return 4
    if w.family == "synthetic":
        return SYNTH_PROFILES[w.name][0]
    return 1


def _rate_feasible(base: CellSpec, num_pcpus: int) -> bool:
    if base.kind != "single_vm":
        return True
    return base.online_rate * base.num_vcpus / num_pcpus <= 0.9


def _scaled_down(base: CellSpec) -> Iterator[CellSpec]:
    floors = {fam: min(scales) for fam, scales in SCALES.items()}
    if base.kind == "single_vm":
        assert base.workload is not None
        w = base.workload
        lo = floors.get(w.family, w.scale)
        if w.scale > lo:
            yield dataclasses.replace(
                base, workload=dataclasses.replace(w, scale=lo))
    else:
        for i, (name, w, conc) in enumerate(base.assignments):
            lo = floors.get(w.family, w.scale)
            if w.scale > lo:
                new = (base.assignments[:i]
                       + ((name, dataclasses.replace(w, scale=lo), conc),)
                       + base.assignments[i + 1:])
                yield dataclasses.replace(base, assignments=new)


# --------------------------------------------------------------------- #
def save_artifact(result: ShrinkResult,
                  path: Union[str, Path]) -> Path:
    """Write the shrink result as a self-contained replay artifact."""
    doc = {
        "schema": ARTIFACT_SCHEMA,
        "kind": "conformance-shrink",
        "seed": result.original.seed,
        "index": result.original.index,
        "concurrent": result.original.concurrent,
        "schedulers": list(result.schedulers),
        "roles": dict(result.roles),
        "signature": sorted(([c, s] for c, s in result.signature),
                            key=lambda p: (p[0], p[1] or "")),
        "original": result.original.base.canonical(),
        "minimized": result.minimized.base.canonical(),
        "violations": [v.render() for v in result.violations],
        "probes": result.probes,
        "steps": result.steps,
    }
    out = Path(path)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


def replay_artifact(path: Union[str, Path]) -> ReplayOutcome:
    """Re-run a shrink artifact and check its signature reproduces."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable artifact {path}: {exc}")
    if doc.get("kind") != "conformance-shrink":
        raise ConfigurationError(
            f"{path} is not a conformance shrink artifact")
    if doc.get("schema") != ARTIFACT_SCHEMA:
        raise ConfigurationError(
            f"artifact schema {doc.get('schema')!r} unsupported "
            f"(expected {ARTIFACT_SCHEMA})")
    schedulers = tuple(doc["schedulers"])
    if any(s.startswith("mutant-") for s in schedulers):
        from repro.conformance.mutants import install
        install()
    scenario = Scenario(
        index=int(doc["index"]), seed=int(doc["seed"]),
        concurrent=bool(doc["concurrent"]),
        base=from_canonical(doc["minimized"]))
    expected: _Signature = {(c, s) for c, s in doc["signature"]}
    violations = _judge_cell(scenario, schedulers, doc.get("roles") or {})
    return ReplayOutcome(scenario=scenario, expected=expected,
                        violations=violations)
