"""Conformance driver: fuzz, fan out, judge, fingerprint.

One :func:`conform` call is one corpus run: generate N scenarios, build
every (scenario x scheduler) cell — plus the metamorphic twin cells for
a strided subset — submit them as a *single* parallel-fabric batch
(maximum pool utilisation, content-addressed caching), then judge each
scenario from the merged results.

Determinism contract: the corpus is a pure function of (seed, count,
schedulers, metamorphic stride).  Per-scenario fingerprints — and the
combined corpus fingerprint — are bit-identical at any ``--jobs`` level
and across warm-cache reruns; the CI conformance job gates on exactly
that.

Metamorphic relations (checked on every ``metamorphic_every``-th
scenario, under the credit scheduler to bound cost):

* **faults-off ≡ baseline** — a clean scenario rerun with an armed but
  *no-op* :class:`~repro.faults.FaultSpec` must be fingerprint-identical
  to the bare run (the PR 6 faults-off guarantee, fuzzed);
* **degraded slowdown** — the same single-VM scenario on a uniformly
  slower machine (every PCPU at speed 0.7) must not finish earlier
  (small tolerance for concurrent mixes, whose interleavings may shift);
* **fuzzer addressability** — ``scenario_at(i)`` must equal
  ``generate(n)[i]`` (seed-stream isolation / permutation invariance of
  the generator itself; no simulation cost).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, List, Mapping, Optional,
                    Sequence, Tuple, Union)

if TYPE_CHECKING:  # pragma: no cover
    from repro.parallel.cache import ResultCache
    from repro.parallel.executor import CellResults

from repro.conformance.oracle import ScenarioVerdict, Violation, judge
from repro.conformance.scenarios import (DEFAULT_SEED,
                                         SCHEDULERS_UNDER_TEST, Scenario,
                                         generate, scenario_at)
from repro.errors import ConfigurationError
from repro.experiments.runner import SingleVmResult, run_cells
from repro.faults.spec import FaultSpec
from repro.parallel.cells import CellSpec, result_fingerprint

__all__ = ["ConformanceReport", "conform"]

#: Tolerance on the degraded-slowdown relation for concurrent scenarios:
#: a uniformly slower machine may reshuffle lock interleavings slightly,
#: but must not speed the run up beyond this factor.
SLOWDOWN_TOLERANCE = 0.98

#: Speed of every PCPU in the degraded metamorphic twin.
TWIN_SPEED = 0.7


@dataclass
class ConformanceReport:
    """Everything one corpus run produced."""

    seed: int
    count: int
    schedulers: Tuple[str, ...]
    verdicts: List[ScenarioVerdict] = field(default_factory=list)
    cells_run: int = 0
    cache_hits: int = 0

    @property
    def violations(self) -> List[Violation]:
        return [v for verdict in self.verdicts for v in verdict.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def fingerprints(self) -> Dict[str, Dict[str, str]]:
        """scenario index (str) -> scheduler -> 64-bit hex fingerprint."""
        return {str(v.scenario.index): dict(v.fingerprints)
                for v in self.verdicts}

    def combined_fingerprint(self) -> str:
        """One digest over every per-scenario fingerprint (sorted)."""
        digest = hashlib.sha256()
        digest.update(json.dumps(self.fingerprints(), sort_keys=True,
                                 separators=(",", ":")).encode("utf-8"))
        return digest.hexdigest()[:16]

    def render(self, max_violations: int = 20) -> str:
        lines = [
            f"conformance corpus: {self.count} scenario(s), seed "
            f"{self.seed}, schedulers {'/'.join(self.schedulers)}",
            f"cells: {self.cells_run} run, {self.cache_hits} cache hit(s)",
            f"fingerprint: {self.combined_fingerprint()}",
        ]
        bad = self.violations
        if not bad:
            lines.append("all invariants held")
        else:
            lines.append(f"{len(bad)} violation(s):")
            for v in bad[:max_violations]:
                lines.append(f"  {v.render()}")
            if len(bad) > max_violations:
                lines.append(f"  ... and {len(bad) - max_violations} more")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
def conform(scenarios: int = 200,
            seed: int = DEFAULT_SEED,
            schedulers: Sequence[str] = SCHEDULERS_UNDER_TEST,
            jobs: Optional[Union[int, str]] = None,
            cache: Optional["ResultCache"] = None,
            metamorphic_every: int = 10,
            roles: Optional[Mapping[str, str]] = None,
            progress: Optional[Callable[[str], None]] = None
            ) -> ConformanceReport:
    """Run one conformance corpus and return the judged report."""
    if scenarios < 1:
        raise ConfigurationError("need at least one scenario")
    if not schedulers:
        raise ConfigurationError("need at least one scheduler")
    corpus = generate(scenarios, seed)
    report = ConformanceReport(seed=seed, count=scenarios,
                               schedulers=tuple(schedulers))

    # Fuzzer addressability: O(1) indexing must agree with enumeration.
    for i in sorted({0, scenarios // 2, scenarios - 1}):
        if scenario_at(i, seed) != corpus[i]:
            report.verdicts.append(ScenarioVerdict(
                scenario=corpus[i],
                violations=[Violation(
                    i, "fuzzer-addressability", None,
                    "scenario_at(i) differs from generate(n)[i] — "
                    "per-index stream isolation is broken")]))
            return report

    # One batch: every scheduler cell plus the metamorphic twins.
    specs: List[CellSpec] = []
    twins: Dict[int, Dict[str, CellSpec]] = {}
    for sc in corpus:
        for sched in schedulers:
            specs.append(sc.cell(sched))
        if metamorphic_every and sc.index % metamorphic_every == 0:
            twins[sc.index] = _twin_cells(sc)
            specs.extend(twins[sc.index].values())

    results = run_cells(specs, jobs=jobs, cache=cache, progress=progress)
    # Conformance verdicts need a real result for every cell; a batch
    # that degraded into structured supervision failures cannot be
    # judged and must fail loudly, not mis-judge CellFailure values.
    results.raise_if_failed()
    report.cells_run = len(results)
    report.cache_hits = results.cache_hits

    for sc in corpus:
        by_sched = {sched: results.value(sc.cell(sched))
                    for sched in schedulers}
        verdict = ScenarioVerdict(scenario=sc)
        for sched, res in by_sched.items():
            verdict.fingerprints[sched] = \
                f"{result_fingerprint(res):016x}"
        verdict.violations.extend(judge(sc, by_sched, roles=roles))
        verdict.violations.extend(
            _judge_twins(sc, twins.get(sc.index), results, schedulers))
        report.verdicts.append(verdict)
    return report


# --------------------------------------------------------------------- #
def _twin_cells(sc: Scenario) -> Dict[str, CellSpec]:
    """The metamorphic twin cells for one scenario (credit runs only)."""
    cells: Dict[str, CellSpec] = {}
    base = sc.cell("credit")
    if sc.fault_free:
        # Armed-but-no-op fault spec: must be bit-identical to bare.
        cells["noop-faults"] = dataclasses.replace(
            base, faults=FaultSpec(seed=sc.index))
        if base.kind == "single_vm":
            # Uniformly degraded machine: strictly less capacity.
            cells["degraded"] = dataclasses.replace(
                base, faults=FaultSpec(
                    seed=sc.index,
                    degraded_pcpus=tuple(range(base.num_pcpus)),
                    degraded_speed=TWIN_SPEED))
    return cells


def _judge_twins(sc: Scenario, twins: Optional[Dict[str, CellSpec]],
                 results: "CellResults",
                 schedulers: Sequence[str]) -> List[Violation]:
    out: List[Violation] = []
    if not twins or "credit" not in schedulers:
        return out
    base_res = results.value(sc.cell("credit"))
    noop = twins.get("noop-faults")
    if noop is not None:
        noop_res = results.value(noop)
        if result_fingerprint(noop_res) != result_fingerprint(base_res):
            out.append(Violation(
                sc.index, "metamorphic-noop-faults", "credit",
                "a no-op FaultSpec changed the result fingerprint — "
                "fault hooks are not invisible when disarmed"))
    degraded = twins.get("degraded")
    if degraded is not None and isinstance(base_res, SingleVmResult):
        deg_res = results.value(degraded)
        assert isinstance(deg_res, SingleVmResult)
        if base_res.finished and deg_res.finished:
            tolerance = SLOWDOWN_TOLERANCE if sc.concurrent else 1.0
            if deg_res.runtime_cycles < base_res.runtime_cycles * tolerance:
                out.append(Violation(
                    sc.index, "metamorphic-slowdown", "credit",
                    f"uniformly degraded machine (speed {TWIN_SPEED}) "
                    f"finished in {deg_res.runtime_cycles} cycles, faster "
                    f"than the healthy machine's "
                    f"{base_res.runtime_cycles}"))
    return out
