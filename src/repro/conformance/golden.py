"""Golden-trace record/replay: canonical event traces as fixtures.

The oracle checks *invariants*; golden traces pin down *behaviour*.  For
a few canonical scenarios the full scheduler-level event trace (credit
assignments, VCRD transitions, coscheduling decisions, workload
completion) is recorded once, canonicalised to JSON, and checked into
``tests/fixtures/golden/``.  CI re-runs the scenarios and compares
fingerprints: any drift — an intentional policy change or an accidental
regression — shows up as a failing check with a structural diff (first
diverging event plus per-category count deltas), and is acknowledged by
regenerating the fixture (``python -m repro conform --golden update``).

The three scenarios cover the paper's behavioural regimes:

* ``concurrent_mix`` — two concurrent NAS guests under the adaptive
  scheduler: the learner must raise VCRD and gang-schedule (the trace
  contains ``vcrd.change`` and ``sched.cosched`` events);
* ``noncurrent_mix`` — two SPEC CPU guests: the adaptive scheduler must
  behave like plain credit (no coscheduling events);
* ``faulted_degraded`` — a single concurrent guest on a machine with
  one degraded PCPU: adaptation under asymmetric capacity, exercising
  the fault layer's determinism end to end.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import units
from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec
from repro.parallel.cells import (CellSpec, WorkloadSpec, execute_cell,
                                  from_canonical)

__all__ = [
    "GOLDEN_CATEGORIES",
    "GOLDEN_SCENARIOS",
    "GoldenDrift",
    "check",
    "default_golden_dir",
    "record",
    "update",
]

#: Trace categories a golden trace captures: the scheduler-policy events
#: (what the paper's figures are made of), not the raw dispatch stream —
#: compact, stable, and meaningful to diff.
GOLDEN_CATEGORIES: Tuple[str, ...] = (
    "credit.assign", "vcrd.change", "sched.cosched", "workload.done",
)

#: One canonical event: (cycle, category, payload) as plain JSON values.
_Event = Tuple[int, str, Dict[str, object]]

#: The pinned scenarios.  Parameters are chosen so each regime's
#: signature events actually fire (the adaptive learner needs enough
#: contention and runtime to act) while staying fast enough for CI.
GOLDEN_SCENARIOS: Dict[str, CellSpec] = {
    "concurrent_mix": CellSpec(
        kind="multi_vm", scheduler="asman", seed=11,
        num_pcpus=4, num_vcpus=4,
        assignments=(
            ("LU", WorkloadSpec("nas", "LU", scale=0.05, rounds=3), True),
            ("SP", WorkloadSpec("nas", "SP", scale=0.05, rounds=3), True),
        ),
        measure_rounds=2, deadline_cycles=units.seconds(120),
        collect_trace=GOLDEN_CATEGORIES),
    "noncurrent_mix": CellSpec(
        kind="multi_vm", scheduler="asman", seed=13,
        num_pcpus=4, num_vcpus=2,
        assignments=(
            ("GCC", WorkloadSpec("speccpu", "176.gcc", scale=0.1,
                                 rounds=3), False),
            ("BZIP", WorkloadSpec("speccpu", "256.bzip2", scale=0.1,
                                  rounds=3), False),
        ),
        measure_rounds=2, deadline_cycles=units.seconds(120),
        collect_trace=GOLDEN_CATEGORIES),
    "faulted_degraded": CellSpec(
        kind="single_vm", scheduler="asman", seed=19,
        num_pcpus=8, num_vcpus=4, online_rate=2.0 / 9.0,
        workload=WorkloadSpec("nas", "LU", scale=0.3),
        faults=FaultSpec(seed=19, degraded_pcpus=(0,),
                         degraded_speed=0.5),
        deadline_cycles=units.seconds(120),
        collect_trace=GOLDEN_CATEGORIES),
}

#: Fixture layout version (bump when the file format changes).
GOLDEN_SCHEMA = 1


def default_golden_dir() -> Path:
    """``tests/fixtures/golden`` relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "fixtures" / "golden"


@dataclass
class GoldenDrift:
    """One golden trace that no longer matches its fixture."""

    name: str
    reason: str
    details: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"golden trace '{self.name}': {self.reason}"]
        lines.extend(f"  {d}" for d in self.details)
        return "\n".join(lines)


# --------------------------------------------------------------------- #
def _events_of(name: str, spec: CellSpec) -> List[_Event]:
    res = execute_cell(spec)
    events = getattr(res, "trace_events", None)
    if events is None:
        raise ConfigurationError(
            f"golden scenario '{name}' produced no trace "
            f"(collect_trace not set?)")
    return [(int(c), str(cat), dict(payload)) for c, cat, payload in events]


def _fingerprint(events: Sequence[_Event]) -> str:
    blob = json.dumps([[c, cat, payload] for c, cat, payload in events],
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def record(name: str) -> Dict[str, object]:
    """Run one golden scenario and build its fixture document."""
    if name not in GOLDEN_SCENARIOS:
        raise ConfigurationError(
            f"unknown golden scenario {name!r}; "
            f"choices: {', '.join(sorted(GOLDEN_SCENARIOS))}")
    spec = GOLDEN_SCENARIOS[name]
    events = _events_of(name, spec)
    return {
        "schema": GOLDEN_SCHEMA,
        "kind": "conformance-golden",
        "name": name,
        "spec": spec.canonical(),
        "categories": list(GOLDEN_CATEGORIES),
        "fingerprint": _fingerprint(events),
        "event_count": len(events),
        "events": [[c, cat, payload] for c, cat, payload in events],
    }


def update(golden_dir: Optional[Union[str, Path]] = None,
           names: Optional[Sequence[str]] = None) -> List[Path]:
    """(Re)write golden fixtures; returns the paths written."""
    out_dir = Path(golden_dir) if golden_dir else default_golden_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name in names or sorted(GOLDEN_SCENARIOS):
        doc = record(name)
        path = out_dir / f"{name}.json"
        path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n",
                        encoding="utf-8")
        written.append(path)
    return written


def check(golden_dir: Optional[Union[str, Path]] = None,
          names: Optional[Sequence[str]] = None) -> List[GoldenDrift]:
    """Re-run every golden scenario and diff against its fixture."""
    in_dir = Path(golden_dir) if golden_dir else default_golden_dir()
    drifts: List[GoldenDrift] = []
    for name in names or sorted(GOLDEN_SCENARIOS):
        path = in_dir / f"{name}.json"
        if not path.exists():
            drifts.append(GoldenDrift(
                name, f"fixture missing at {path} "
                      f"(run --golden update to create it)"))
            continue
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            drifts.append(GoldenDrift(name, f"unreadable fixture: {exc}"))
            continue
        if doc.get("schema") != GOLDEN_SCHEMA \
                or doc.get("kind") != "conformance-golden":
            drifts.append(GoldenDrift(
                name, "fixture has an unknown layout "
                      "(run --golden update to regenerate)"))
            continue
        # The fixture pins the *spec* too: replay exactly what was
        # recorded, even if GOLDEN_SCENARIOS has since been retuned.
        spec = from_canonical(doc["spec"])
        fresh = _events_of(name, spec)
        want = [(int(c), str(cat), dict(p)) for c, cat, p in doc["events"]]
        if _fingerprint(fresh) == doc.get("fingerprint") and fresh == want:
            continue
        drifts.append(GoldenDrift(
            name, "trace drifted from the recorded fixture",
            details=_diff(want, fresh)))
    return drifts


def _diff(want: List[_Event], got: List[_Event]) -> List[str]:
    out = [f"events: {len(want)} recorded vs {len(got)} fresh"]
    for cat in GOLDEN_CATEGORIES:
        a = sum(1 for e in want if e[1] == cat)
        b = sum(1 for e in got if e[1] == cat)
        if a != b:
            out.append(f"{cat}: {a} recorded vs {b} fresh")
    for i, (w, g) in enumerate(zip(want, got)):
        if w != g:
            out.append(f"first divergence at event {i}:")
            out.append(f"  recorded: cycle={w[0]} {w[1]} {w[2]}")
            out.append(f"  fresh:    cycle={g[0]} {g[1]} {g[2]}")
            break
    else:
        if len(want) != len(got):
            i = min(len(want), len(got))
            longer = "recorded" if len(want) > len(got) else "fresh"
            extra = (want if len(want) > len(got) else got)[i]
            out.append(f"traces agree on the first {i} event(s); the "
                       f"{longer} trace continues with cycle={extra[0]} "
                       f"{extra[1]}")
    return out
