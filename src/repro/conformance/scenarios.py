"""Deterministic scenario fuzzer.

Every scenario is a pure function of ``(corpus seed, index)``: scenario
*i* draws all of its randomness from the dedicated named stream
``conformance/scenario/<i>`` (:class:`~repro.sim.rng.RngStreams`), the
same discipline :mod:`repro.faults` uses for fault schedules.  Two
consequences the oracle relies on:

* **O(1) addressability** — ``scenario_at(i)`` equals ``generate(n)[i]``
  without generating the first *i* scenarios, and adding scenarios never
  changes existing ones;
* **seed-stream isolation** — the fuzzer's draws can never perturb the
  workload or learner streams of the simulations it describes (the cell
  sim seed is itself just one draw).

A :class:`Scenario` wraps one scheduler-agnostic base
:class:`~repro.parallel.cells.CellSpec`; the oracle instantiates it per
scheduler with :meth:`Scenario.cell`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import (Iterable, List, Optional, Sequence, Tuple, TypeVar,
                    Union)

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec
from repro.parallel.cells import CellSpec, WorkloadSpec
from repro.sim.rng import RngStreams

__all__ = [
    "DEFAULT_SEED",
    "SCHEDULERS_UNDER_TEST",
    "Scenario",
    "generate",
    "scenario_at",
]

#: Default corpus seed; the CI smoke corpus pins it for reproducibility.
DEFAULT_SEED = 1

#: The three schedulers every scenario is cross-checked under (the CON
#: static coscheduler needs per-VM manual hints and is exercised by the
#: figure experiments instead).
SCHEDULERS_UNDER_TEST: Tuple[str, ...] = ("credit", "relaxed", "asman")

#: Simulated-time budget per cell.  Generous against the largest drawn
#: workloads (< 10 simulated seconds) yet small enough that a livelocked
#: scheduler bug costs bounded wall time (``on_deadline="return"``).
SCENARIO_DEADLINE = units.seconds(60)

#: Single-VM workload pool: (family, profile, vcpus, concurrent).
#: ``concurrent`` marks synchronisation-heavy programs — the ones the
#: adaptive scheduler should learn to coschedule.
SINGLE_POOL: Tuple[Tuple[str, str, int, bool], ...] = (
    ("nas", "LU", 4, True),
    ("nas", "SP", 4, True),
    ("nas", "MG", 4, True),
    ("nas", "CG", 4, True),
    ("synthetic", "barrier2", 2, True),
    ("synthetic", "barrier4", 4, True),
    ("synthetic", "critical2", 2, True),
    ("synthetic", "pingpong2", 2, True),
    ("synthetic", "compute1", 1, False),
    ("synthetic", "compute2", 2, False),
    ("speccpu", "176.gcc", 4, False),
    ("speccpu", "256.bzip2", 2, False),
)

#: Multi-VM pool (same shape); every VM in a mix shares ``num_vcpus``,
#: so NAS entries (fixed 4 threads) only qualify on 4-VCPU mixes.
MULTI_POOL: Tuple[Tuple[str, str, int, bool], ...] = (
    ("nas", "LU", 4, True),
    ("nas", "SP", 4, True),
    ("nas", "MG", 4, True),
    ("synthetic", "barrier2", 2, True),
    ("synthetic", "critical2", 2, True),
    ("synthetic", "compute2", 2, False),
    ("speccpu", "176.gcc", 2, False),
    ("speccpu", "256.bzip2", 2, False),
)

#: Per-family workload scales (kept small: a corpus cell simulates in
#: tens of milliseconds of wall time).
SCALES: "dict[str, Tuple[float, ...]]" = {
    "nas": (0.03, 0.05),
    "synthetic": (0.3, 0.5),
    "speccpu": (0.05, 0.1),
}

#: The paper's online rates (Section 5.2); infeasible combinations
#: (Domain-0 contention makes q = rate*vcpus/pcpus >= 1 unreachable)
#: are filtered per machine shape.
RATES: Tuple[float, ...] = (1.0, 2.0 / 3.0, 0.4, 2.0 / 9.0)

#: Probability a scenario carries a fault spec.
FAULT_PROBABILITY = 0.3

#: Fault classes the fuzzer draws from — the robustness matrix's sites
#: at milder magnitudes, so faulted runs normally still finish and the
#: oracle can check degraded-but-correct behaviour.
FAULT_CLASSES: Tuple[str, ...] = (
    "hypercall_loss", "hypercall_delay", "hypercall_dup",
    "ipi_drop", "ipi_jitter",
    "monitor_stuck_low", "monitor_stuck_high", "monitor_flip",
    "monitor_delay", "degraded_pcpu",
)


@dataclass(frozen=True)
class Scenario:
    """One fuzzed scenario: a scheduler-agnostic cell plus metadata."""

    index: int
    seed: int
    #: True iff the scenario contains at least one synchronisation-heavy
    #: workload (drives the co-online convergence checks).
    concurrent: bool
    #: Base spec; ``scheduler`` is a placeholder replaced per run.
    base: CellSpec

    def cell(self, scheduler: str) -> CellSpec:
        """The concrete cell running this scenario under ``scheduler``."""
        return dataclasses.replace(self.base, scheduler=scheduler)

    @property
    def fault_free(self) -> bool:
        return self.base.faults is None or self.base.faults.is_noop()

    def describe(self) -> str:
        b = self.base
        if b.kind == "single_vm":
            assert b.workload is not None
            what = (f"{b.workload.family}/{b.workload.name}"
                    f"@{b.workload.scale:g} rate={b.online_rate:.2f}")
        else:
            what = "+".join(f"{w.family}/{w.name}"
                            for _, w, _ in b.assignments)
        faults = "clean" if self.fault_free else b.faults.describe()  # type: ignore[union-attr]
        return (f"#{self.index} {b.kind} {what} "
                f"{b.num_vcpus}v/{b.num_pcpus}p [{faults}]")


# --------------------------------------------------------------------- #
def scenario_at(index: int, seed: int = DEFAULT_SEED) -> Scenario:
    """The scenario at ``index`` for corpus ``seed`` (O(1), addressable)."""
    if index < 0:
        raise ConfigurationError("scenario index must be >= 0")
    rng = RngStreams(seed).get(f"conformance/scenario/{index}")
    if rng.random() < 0.4:
        base, concurrent = _draw_multi(rng, index)
    else:
        base, concurrent = _draw_single(rng, index)
    return Scenario(index=index, seed=seed, concurrent=concurrent,
                    base=base)


def generate(count_or_indices: Union[int, Iterable[int]],
             seed: int = DEFAULT_SEED) -> List[Scenario]:
    """Scenarios ``0..n-1`` (an int) or at explicit indices (an iterable)."""
    if isinstance(count_or_indices, int):
        indices: Sequence[int] = range(count_or_indices)
    else:
        indices = list(count_or_indices)
    return [scenario_at(i, seed) for i in indices]


# --------------------------------------------------------------------- #
_T = TypeVar("_T")


def _choice(rng: np.random.Generator, seq: Sequence[_T]) -> _T:
    """Deterministic uniform pick (index draw, not np.choice coercion)."""
    return seq[int(rng.integers(0, len(seq)))]


def _feasible_rates(num_vcpus: int, num_pcpus: int) -> Tuple[float, ...]:
    # q must stay clear of 1.0: weight_for_rate rejects q >= 1 and the
    # online-rate cap check wants headroom from rounding.
    return tuple(r for r in RATES if r * num_vcpus / num_pcpus <= 0.9)


def _draw_faults(rng: np.random.Generator, num_pcpus: int,
                 index: int) -> Optional[FaultSpec]:
    if rng.random() >= FAULT_PROBABILITY:
        return None
    cls = _choice(rng, FAULT_CLASSES)
    seed = 1000 + index
    if cls == "hypercall_loss":
        return FaultSpec(seed=seed, hypercall_loss=0.25)
    if cls == "hypercall_delay":
        return FaultSpec(seed=seed, hypercall_delay=0.5,
                         hypercall_delay_cycles=20_000)
    if cls == "hypercall_dup":
        return FaultSpec(seed=seed, hypercall_duplication=0.5)
    if cls == "ipi_drop":
        return FaultSpec(seed=seed, ipi_drop=0.25)
    if cls == "ipi_jitter":
        return FaultSpec(seed=seed, ipi_jitter_cycles=5_000)
    if cls == "monitor_stuck_low":
        return FaultSpec(seed=seed, monitor_mode="stuck_low")
    if cls == "monitor_stuck_high":
        return FaultSpec(seed=seed, monitor_mode="stuck_high")
    if cls == "monitor_flip":
        return FaultSpec(seed=seed, monitor_flip_period=units.ms(50))
    if cls == "monitor_delay":
        return FaultSpec(seed=seed, monitor_delay_cycles=20_000)
    # degraded_pcpu: one slow PCPU at half speed.
    return FaultSpec(seed=seed,
                     degraded_pcpus=(int(rng.integers(0, num_pcpus)),),
                     degraded_speed=0.5)


def _draw_single(rng: np.random.Generator,
                 index: int) -> Tuple[CellSpec, bool]:
    family, profile, vcpus, concurrent = _choice(rng, SINGLE_POOL)
    scale = _choice(rng, SCALES[family])
    pcpus = _choice(rng, tuple(p for p in (2, 4, 8) if p >= vcpus))
    rate = _choice(rng, _feasible_rates(vcpus, pcpus))
    sim_seed = int(rng.integers(1, 2**31))
    faults = _draw_faults(rng, pcpus, index)
    spec = CellSpec(
        kind="single_vm", scheduler="credit", seed=sim_seed,
        num_pcpus=pcpus, num_vcpus=vcpus, online_rate=rate,
        workload=WorkloadSpec(family, profile, scale=scale),
        deadline_cycles=SCENARIO_DEADLINE, on_deadline="return",
        faults=faults, collect_timeline=True)
    return spec, concurrent


def _draw_multi(rng: np.random.Generator,
                index: int) -> Tuple[CellSpec, bool]:
    n_vms = int(_choice(rng, (2, 3)))
    vcpus = int(_choice(rng, (2, 4)))
    pcpus = int(_choice(rng, tuple(p for p in (4, 8) if p >= vcpus)))
    measure = int(_choice(rng, (1, 2)))
    pool = tuple(e for e in MULTI_POOL if e[2] <= vcpus)
    # Half the mixes are homogeneous (the paper's same-benchmark
    # neighbour setups) — also the only shape where an equal-weight Jain
    # fairness floor is meaningful: heterogeneous neighbours legitimately
    # idle once their lighter programs finish.
    homogeneous = rng.random() < 0.5
    assignments: List[Tuple[str, WorkloadSpec, bool]] = []
    concurrent = False
    pick = _choice(rng, pool)
    scale = _choice(rng, SCALES[pick[0]])
    for i in range(n_vms):
        if not homogeneous:
            pick = _choice(rng, pool)
            scale = _choice(rng, SCALES[pick[0]])
        family, profile, _, conc = pick
        assignments.append((f"V{i + 1}",
                            WorkloadSpec(family, profile, scale=scale,
                                         rounds=measure + 1),
                            conc))
        concurrent = concurrent or conc
    sim_seed = int(rng.integers(1, 2**31))
    faults = _draw_faults(rng, pcpus, index)
    spec = CellSpec(
        kind="multi_vm", scheduler="credit", seed=sim_seed,
        num_pcpus=pcpus, num_vcpus=vcpus,
        assignments=tuple(assignments), measure_rounds=measure,
        deadline_cycles=SCENARIO_DEADLINE, on_deadline="return",
        faults=faults)
    return spec, concurrent
