"""Quiescence fast-forward: the process-wide enable flag.

The fast-forward layer (PR 9) lets hot paths replace fine-grained
stepping with analytically equivalent shortcuts — inline Compute/Critical
dispatch in :mod:`repro.guest.kernel`, quiescent credit-tick early-outs
in :mod:`repro.vmm.scheduler_base`, batched workload RNG draws — all of
which are **bit-identical by construction**: every logical event still
fires at the same cycle with the same sequence number, so figure
fingerprints, golden traces and the conformance corpus digest cannot
move.  See ``docs/perf.md`` for the quiescence model and the proof
obligations each shortcut carries.

Because "bit-identical" is a claim that needs a lever to test, the layer
is switchable:

* ``REPRO_NO_FASTFORWARD=1`` (environment) disables every shortcut and
  restores the original step-wise paths — the escape hatch for
  debugging a suspected fingerprint divergence;
* :func:`set_fastforward` overrides the environment for this process
  (used by the parity tests, which run every scenario both ways and
  assert identical fingerprints).

The flag is sampled when simulation objects are *constructed* (kernels
and schedulers cache it), so flip it before building a testbed, not
mid-run.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["fastforward_enabled", "set_fastforward"]

# The escape hatch is sampled ONCE at import time: it selects behaviour
# for the whole process, and keeping the read out of any function keeps
# sim-scope call graphs free of environment access (the
# transitive-wall-clock rule).  Runtime flips go through
# :func:`set_fastforward`.
_ENV_DISABLED = os.environ.get("REPRO_NO_FASTFORWARD", "").strip().lower() \
    in ("1", "true", "yes", "on")

#: Process-wide override (None = defer to the environment default).
_FASTFORWARD_OVERRIDE: Optional[bool] = None


def set_fastforward(enabled: Optional[bool]) -> None:
    """Force the fast-forward layer on/off for this process (None resets
    to the environment default)."""
    global _FASTFORWARD_OVERRIDE
    _FASTFORWARD_OVERRIDE = enabled


def fastforward_enabled() -> bool:
    """Should newly built simulation objects use the fast-forward paths?

    Priority: :func:`set_fastforward` override, then the
    ``REPRO_NO_FASTFORWARD`` environment variable sampled at process
    start (``1``/``true``/``yes``/``on`` *disable*; fast-forward is on
    by default).
    """
    if _FASTFORWARD_OVERRIDE is not None:
        return _FASTFORWARD_OVERRIDE
    return not _ENV_DISABLED
