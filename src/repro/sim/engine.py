"""The discrete-event engine.

A :class:`Simulator` owns a monotonically advancing integer-cycle clock and a
priority queue of pending :class:`Event` objects.  Components schedule
callbacks with :meth:`Simulator.at` / :meth:`Simulator.after` and may cancel
them via :meth:`Event.cancel` — cancellation is O(1) (lazy deletion; the
heap entry is skipped when popped).

Determinism
-----------
Two events at the same cycle fire in scheduling order (a monotonically
increasing sequence number breaks ties), so a run is a pure function of the
configuration and RNG seeds.  This property is relied on by the regression
and property tests.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.at` / :meth:`Simulator.after`
    and should be treated as opaque handles: the only public operations are
    :meth:`cancel` and reading :attr:`time` / :attr:`fired` / :attr:`cancelled`.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "fired")

    def __init__(self, time: int, seq: int, callback: Callable[[], None],
                 label: str = "") -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired or already
        cancelled event is a harmless no-op (components race to cancel)."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event {self.label or self.callback!r} @ {self.time} ({state})>"


class Simulator:
    """Integer-cycle discrete-event simulator.

    Parameters
    ----------
    start:
        Initial clock value in cycles (default 0).
    """

    def __init__(self, start: int = 0) -> None:
        self._now: int = start
        self._seq: int = 0
        self._queue: list[Event] = []
        self._running = False
        self._stopped = False
        #: Number of events executed so far (observability / perf tests).
        self.events_executed: int = 0

    # ------------------------------------------------------------------ #
    # Clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def at(self, time: int, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to fire at absolute cycle ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past.
        Scheduling *at the current cycle* is allowed: the event fires after
        all callbacks already queued for this cycle.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} (now={self._now})")
        self._seq += 1
        ev = Event(int(time), self._seq, callback, label)
        heapq.heappush(self._queue, ev)
        return ev

    def after(self, delay: int, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + int(delay), callback, label)

    def every(self, period: int, callback: Callable[[], None],
              label: str = "", start_offset: int = 0) -> "PeriodicEvent":
        """Schedule ``callback`` to fire every ``period`` cycles.

        The first firing is at ``now + start_offset + period`` unless
        ``start_offset`` places it earlier.  Returns a handle whose
        :meth:`PeriodicEvent.cancel` stops the repetition.
        """
        if period <= 0:
            raise SimulationError(f"non-positive period {period}")
        return PeriodicEvent(self, period, callback, label, start_offset)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self._now = ev.time
            ev.fired = True
            self.events_executed += 1
            ev.callback()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` fire)."""
        self._stopped = False
        count = 0
        while not self._stopped:
            if max_events is not None and count >= max_events:
                return
            if not self.step():
                return
            count += 1

    def run_until(self, time: int) -> None:
        """Run all events with timestamp <= ``time``, then set now = time.

        The clock always lands exactly on ``time`` so that back-to-back
        ``run_until`` calls partition the timeline cleanly.
        """
        if time < self._now:
            raise SimulationError(f"run_until({time}) is in the past (now={self._now})")
        self._stopped = False
        while not self._stopped and self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            self.step()
        if not self._stopped:
            self._now = time

    def run_until_true(self, predicate: Callable[[], bool],
                       deadline: Optional[int] = None) -> bool:
        """Run until ``predicate()`` becomes true after some event.

        Returns True if the predicate was satisfied, False if the queue
        drained or the ``deadline`` (absolute cycles) passed first.
        """
        if predicate():
            return True
        self._stopped = False
        while not self._stopped:
            if deadline is not None and self._queue:
                head = self._queue[0]
                if not head.cancelled and head.time > deadline:
                    self._now = deadline
                    return predicate()
            if not self.step():
                return predicate()
            if predicate():
                return True
        return predicate()

    def stop(self) -> None:
        """Stop the current ``run*`` call after the in-flight event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for ev in self._queue if not ev.cancelled)


class PeriodicEvent:
    """Handle for a repeating event created by :meth:`Simulator.every`."""

    __slots__ = ("_sim", "period", "callback", "label", "_current", "_cancelled")

    def __init__(self, sim: Simulator, period: int,
                 callback: Callable[[], None], label: str,
                 start_offset: int) -> None:
        self._sim = sim
        self.period = period
        self.callback = callback
        self.label = label
        self._cancelled = False
        first = sim.now + start_offset + period
        self._current = sim.at(first, self._fire, label)

    def _fire(self) -> None:
        if self._cancelled:
            return
        # Re-arm before invoking the callback so the callback may cancel us.
        self._current = self._sim.after(self.period, self._fire, self.label)
        self.callback()

    def cancel(self) -> None:
        self._cancelled = True
        self._current.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled
