"""The discrete-event engine.

A :class:`Simulator` owns a monotonically advancing integer-cycle clock
and two priority queues of pending work:

* a binary heap of one-shot :class:`Event` entries, stored as
  ``(time, seq, event)`` tuples so heap comparisons stay in C (no
  Python-level ``__lt__`` on the hot path);
* a small dedicated heap of :class:`PeriodicEvent` timers (the per-PCPU
  tick/accounting events that dominate long runs).  A periodic firing
  re-arms in place with :func:`heapq.heapreplace` — no allocation, no
  traffic through the big one-shot heap.

Components schedule callbacks with :meth:`Simulator.at` /
:meth:`Simulator.after` and may cancel them via :meth:`Event.cancel` —
cancellation is O(1) (lazy deletion).  Cancelled entries are reclaimed:
the simulator tracks the live count (making :attr:`pending_events` O(1))
and **compacts the heap** when dead entries exceed both a floor and half
the heap, so schedule/cancel churn (guest activities pausing on VCPU
preemption, consolidation scenarios) runs in bounded memory.

Determinism
-----------
The clock advances in **integer cycles only**: ``at``/``after`` reject
non-integer timestamps outright (a float that truncated to an earlier
cycle used to slip past the past-check silently).  Two events at the
same cycle fire in scheduling order — a monotonically increasing
sequence number, shared between both queues, breaks ties — so a run is a
pure function of the configuration and RNG seeds.  Heap compaction
filters dead entries and re-heapifies; because ``(time, seq)`` keys are
unique and totally ordered, compaction can never change firing order.
This property is relied on by the regression and property tests, and by
``repro perf``'s fingerprint gate.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

#: Compaction trigger: at least this many dead (cancelled) entries *and*
#: dead entries outnumbering live ones in the same heap.
COMPACT_MIN_DEAD = 64


class Event:
    """A scheduled one-shot callback.

    Instances are returned by :meth:`Simulator.at` / :meth:`Simulator.after`
    and should be treated as opaque handles: the only public operations are
    :meth:`cancel` and reading :attr:`time` / :attr:`fired` / :attr:`cancelled`.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "fired",
                 "_sim")

    def __init__(self, time: int, seq: int, callback: Callable[[], None],
                 label: str = "", sim: Optional["Simulator"] = None) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired or already
        cancelled event is a harmless no-op (components race to cancel)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event {self.label or self.callback!r} @ {self.time} ({state})>"


class Simulator:
    """Integer-cycle discrete-event simulator.

    Parameters
    ----------
    start:
        Initial clock value in cycles (default 0).
    """

    __slots__ = ("_now", "_seq", "_queue", "_live", "_timers", "_timers_live",
                 "_stopped", "events_executed", "peak_heap_entries")

    def __init__(self, start: int = 0) -> None:
        self._now: int = start
        self._seq: int = 0
        #: One-shot heap of (time, seq, Event); may contain dead entries.
        self._queue: List[Tuple[int, int, Event]] = []
        #: Live (uncancelled, unfired) entries in :attr:`_queue`.
        self._live: int = 0
        #: Periodic heap of (next_time, seq, PeriodicEvent).
        self._timers: List[Tuple[int, int, "PeriodicEvent"]] = []
        self._timers_live: int = 0
        self._stopped = False
        #: Number of events executed so far (observability / perf tests).
        self.events_executed: int = 0
        #: High-water mark of total queued entries, dead ones included
        #: (the perf harness reports this; unbounded growth here was the
        #: cancelled-entry leak).
        self.peak_heap_entries: int = 0

    # ------------------------------------------------------------------ #
    # Clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def at(self, time: int, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to fire at absolute cycle ``time``.

        ``time`` must be an integer number of cycles (integral floats and
        numpy integers are accepted and converted; fractional timestamps
        raise :class:`SimulationError` — the clock cannot land between
        cycles, and silently truncating used to break the determinism
        contract).  Raises :class:`SimulationError` if ``time`` is in the
        past.  Scheduling *at the current cycle* is allowed: the event
        fires after all callbacks already queued for this cycle.
        """
        if time.__class__ is not int:
            time = _as_cycles(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} (now={self._now})")
        self._seq = seq = self._seq + 1
        # Inline Event construction (this is the hottest allocation in
        # the simulator; skipping the __init__ frame is measurable).
        ev = Event.__new__(Event)
        ev.time = time
        ev.seq = seq
        ev.callback = callback
        ev.label = label
        ev.cancelled = False
        ev.fired = False
        ev._sim = self
        q = self._queue
        heapq.heappush(q, (time, seq, ev))
        self._live += 1
        depth = len(q) + len(self._timers)
        if depth > self.peak_heap_entries:
            self.peak_heap_entries = depth
        return ev

    def after(self, delay: int, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay.__class__ is not int:
            delay = _as_cycles(delay)
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self._now + delay, callback, label)

    def every(self, period: int, callback: Callable[[], None],
              label: str = "", start_offset: int = 0) -> "PeriodicEvent":
        """Schedule ``callback`` to fire every ``period`` cycles.

        The first firing is at ``now + start_offset + period``; the
        ``start_offset`` phase-staggers timers sharing a period (the
        per-PCPU accounting ticks rely on this).  Subsequent firings are
        exactly ``period`` cycles apart, measured from the previous
        firing's timestamp — a callback that runs long (or raises) never
        drifts the schedule, because the timer is re-armed *before* the
        callback is invoked.  Returns a handle whose
        :meth:`PeriodicEvent.cancel` stops the repetition.
        """
        if period.__class__ is not int:
            period = _as_cycles(period)
        if start_offset.__class__ is not int:
            start_offset = _as_cycles(start_offset)
        if period <= 0:
            raise SimulationError(f"non-positive period {period}")
        if start_offset < 0:
            raise SimulationError(f"negative start_offset {start_offset}")
        pe = PeriodicEvent(self, period, callback, label)
        self._seq = seq = self._seq + 1
        heapq.heappush(self._timers,
                       (self._now + start_offset + period, seq, pe))
        self._timers_live += 1
        depth = len(self._queue) + len(self._timers)
        if depth > self.peak_heap_entries:
            self.peak_heap_entries = depth
        return pe

    # ------------------------------------------------------------------ #
    # Heap hygiene
    # ------------------------------------------------------------------ #
    def _note_cancel(self) -> None:
        """A live one-shot entry was cancelled: adjust the live count and
        compact the heap when dead entries dominate."""
        self._live -= 1
        dead = len(self._queue) - self._live
        if dead >= COMPACT_MIN_DEAD and dead > self._live:
            self._compact()

    def _note_timer_cancel(self) -> None:
        self._timers_live -= 1
        dead = len(self._timers) - self._timers_live
        if dead >= 8 and dead > self._timers_live:
            tq = self._timers
            tq[:] = [e for e in tq if not e[2]._cancelled]
            heapq.heapify(tq)

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place (run loops hold
        aliases to the list).  ``(time, seq)`` keys are unique, so the
        rebuilt heap pops in exactly the order the old one would have."""
        q = self._queue
        q[:] = [entry for entry in q if not entry[2].cancelled]
        heapq.heapify(q)

    @property
    def queue_depth(self) -> int:
        """Total queued entries including dead (cancelled) ones — the
        quantity bounded by compaction.  Tests and the perf harness use
        this; components should use :attr:`pending_events`."""
        return len(self._queue) + len(self._timers)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _peek_time(self) -> Optional[int]:
        """Timestamp of the next live event (either queue), or None.
        Strips dead heads as a side effect."""
        q = self._queue
        while q and q[0][2].cancelled:
            heapq.heappop(q)
        tq = self._timers
        while tq and tq[0][2]._cancelled:
            heapq.heappop(tq)
        if not q:
            return tq[0][0] if tq else None
        if not tq:
            return q[0][0]
        return q[0][0] if q[0][0] <= tq[0][0] else tq[0][0]

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        q = self._queue
        while q and q[0][2].cancelled:
            heapq.heappop(q)
        tq = self._timers
        while tq and tq[0][2]._cancelled:
            heapq.heappop(tq)
        if tq:
            th, ts, pe = tq[0]
            if not q or th < q[0][0] or (th == q[0][0] and ts < q[0][1]):
                # Periodic fast path: advance the clock, re-arm in place
                # (pre-callback, so a raising callback cannot kill the
                # timer), then invoke.
                self._now = th
                self._seq = seq = self._seq + 1
                heapq.heapreplace(tq, (th + pe.period, seq, pe))
                self.events_executed += 1
                pe.callback()
                return True
        if not q:
            return False
        time, seq, ev = heapq.heappop(q)
        self._now = time
        ev.fired = True
        self._live -= 1
        self.events_executed += 1
        ev.callback()
        return True

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` fire)."""
        self._stopped = False
        count = 0
        while not self._stopped:
            if max_events is not None and count >= max_events:
                return
            if not self.step():
                return
            count += 1

    def run_until(self, time: int) -> None:
        """Run all events with timestamp <= ``time``, then set now = time.

        The clock always lands exactly on ``time`` so that back-to-back
        ``run_until`` calls partition the timeline cleanly; an event
        scheduled exactly at ``time`` fires within this call.
        """
        if time.__class__ is not int:
            time = _as_cycles(time)
        if time < self._now:
            raise SimulationError(f"run_until({time}) is in the past (now={self._now})")
        self._stopped = False
        while not self._stopped:
            nxt = self._peek_time()
            if nxt is None or nxt > time:
                break
            self.step()
        if not self._stopped:
            self._now = time

    def run_until_true(self, predicate: Callable[[], bool],
                       deadline: Optional[int] = None) -> bool:
        """Run until ``predicate()`` becomes true after some event.

        Returns True if the predicate was satisfied, False if the queue
        drained or the ``deadline`` (absolute cycles) passed first.  When
        the deadline strikes, the clock is set to it — a cancelled entry
        beyond the deadline never causes events past the deadline to fire
        (dead heads are stripped before the deadline check).
        """
        if predicate():
            return True
        self._stopped = False
        while not self._stopped:
            if deadline is not None:
                nxt = self._peek_time()
                if nxt is None:
                    return predicate()
                if nxt > deadline:
                    self._now = deadline
                    return predicate()
            if not self.step():
                return predicate()
            if predicate():
                return True
        return predicate()

    def run_until_stopped(self, deadline: Optional[int] = None) -> bool:
        """Run until :meth:`stop` is called from inside an event callback.

        The fast-forward twin of :meth:`run_until_true` for drivers that
        can push completion instead of polling it: a completion callback
        (e.g. :meth:`repro.guest.kernel.GuestKernel.on_all_done`) calls
        ``stop()`` and this loop exits after that event, leaving the
        clock on the stopping event's timestamp — the exact stop point a
        predicate poll would have produced, with the per-event predicate
        call and the duplicated dead-head stripping of the peek+step
        pair fused away.

        Returns True if stopped, False if the queue drained or the
        ``deadline`` (absolute cycles) passed first; on a deadline the
        clock is set to it, exactly as :meth:`run_until_true` does.
        """
        if deadline is not None and deadline.__class__ is not int:
            deadline = _as_cycles(deadline)
        self._stopped = False
        q = self._queue
        tq = self._timers
        pop = heapq.heappop
        replace = heapq.heapreplace
        # No deadline compares as +inf: every int is below it, so the
        # deadline branches stay dead without a per-event None test.
        dl = float("inf") if deadline is None else deadline
        # Executed-count batching: no callback reads events_executed
        # mid-run (it is consumed after the run by the perf/conformance
        # layers), so count locally and write back on every exit path.
        executed = self.events_executed
        try:
            while not self._stopped:
                while q and q[0][2].cancelled:
                    pop(q)
                while tq and tq[0][2]._cancelled:
                    pop(tq)
                if tq:
                    th, ts, pe = tq[0]
                    if not q or th < q[0][0] \
                            or (th == q[0][0] and ts < q[0][1]):
                        if th > dl:
                            self._now = deadline
                            return False
                        # Periodic fast path, as in step(): advance,
                        # re-arm in place, then invoke.
                        self._now = th
                        self._seq = seq = self._seq + 1
                        replace(tq, (th + pe.period, seq, pe))
                        executed += 1
                        pe.callback()
                        continue
                if not q:
                    return False
                time, _seq_, ev = q[0]
                if time > dl:
                    self._now = deadline
                    return False
                pop(q)
                self._now = time
                ev.fired = True
                self._live -= 1
                executed += 1
                ev.callback()
            return True
        finally:
            self.events_executed = executed

    def stop(self) -> None:
        """Stop the current ``run*`` call after the in-flight event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued — O(1), kept
        as live counters rather than a heap scan."""
        return self._live + self._timers_live


class PeriodicEvent:
    """Handle for a repeating event created by :meth:`Simulator.every`.

    Periodic timers live in the simulator's dedicated timer heap; firing
    re-arms the same object in place (no per-firing allocation).  The
    shared sequence counter keeps same-cycle ordering against one-shot
    events exactly as if each firing had been scheduled with ``at``.
    """

    __slots__ = ("_sim", "period", "callback", "label", "_cancelled")

    def __init__(self, sim: Simulator, period: int,
                 callback: Callable[[], None], label: str = "") -> None:
        self._sim = sim
        self.period = period
        self.callback = callback
        self.label = label
        self._cancelled = False

    def cancel(self) -> None:
        """Stop the repetition.  Safe to call from the timer's own
        callback (the already re-armed next firing is reclaimed lazily)."""
        if self._cancelled:
            return
        self._cancelled = True
        self._sim._note_timer_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "armed"
        return f"<PeriodicEvent {self.label or self.callback!r} /{self.period} ({state})>"


def _as_cycles(value: Any) -> int:
    """Slow-path timestamp coercion: accept integral floats and numpy
    integers, reject anything fractional (the clock is integer cycles)."""
    try:
        as_int = int(value)
    except (TypeError, ValueError):
        raise SimulationError(f"timestamp {value!r} is not a number of cycles")
    if as_int != value:
        raise SimulationError(
            f"non-integer timestamp {value!r}: the simulator clock advances "
            f"in whole cycles (use repro.units helpers to convert)")
    return as_int
