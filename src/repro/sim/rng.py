"""Deterministic random-number streams.

Every stochastic component (each workload thread, the learning algorithm,
the guest scheduler's tie-breaks, ...) draws from its *own* named stream so
that adding a consumer never perturbs the draws seen by another — the
classical trick for reproducible parallel simulations.  Streams are derived
from a single root seed with :class:`numpy.random.SeedSequence` spawning
keyed by a stable hash of the stream name.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _name_to_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer key.

    ``hash()`` is salted per-process, so we use blake2b for stability
    across runs and machines.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngStreams:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    Examples
    --------
    >>> streams = RngStreams(seed=42)
    >>> a = streams.get("workload/lu/thread0")
    >>> b = streams.get("workload/lu/thread1")
    >>> a is streams.get("workload/lu/thread0")   # cached
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (and cache) the generator for ``name``."""
        gen = self._cache.get(name)
        if gen is None:
            ss = np.random.SeedSequence(entropy=self.seed,
                                        spawn_key=(_name_to_key(name),))
            gen = np.random.Generator(np.random.PCG64(ss))
            self._cache[name] = gen
        return gen

    def fork(self, salt: int) -> "RngStreams":
        """Return a new independent stream family (e.g. per repetition)."""
        return RngStreams(seed=(self.seed * 1_000_003 + salt) & 0xFFFFFFFFFFFF)

    def __contains__(self, name: str) -> bool:
        return name in self._cache
