"""Trace bus: the simulator's observability backbone.

Components *emit* :class:`TraceRecord` objects onto a :class:`TraceBus`;
metrics collectors *subscribe* by category.  Emission is cheap when nobody
is listening (a dict lookup and a truth test), so instrumentation points can
stay in hot paths unconditionally.

Categories used across the library (each documents its payload fields):

``spinlock.wait``     guest spinlock acquired after a measurable wait
``spinlock.acquire``  every acquisition (only when verbose tracing enabled)
``vcrd.change``       Monitoring Module flipped a VM's VCRD
``sched.switch``      a PCPU switched VCPUs
``sched.cosched``     an IPI coscheduling fan-out was launched
``vcpu.state``        VCPU state transition
``task.done``         a workload thread finished its program
``workload.done``     a whole workload completed
``credit.assign``     credit assignment event
``sem.wait``          semaphore blocking wait completed
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace event: a timestamp, category and free-form payload."""

    time: int
    category: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]


Subscriber = Callable[[TraceRecord], None]


class TraceBus:
    """Pub/sub hub for trace records.

    Subscription is per-category; a subscriber registered under ``"*"``
    receives everything.  Records are also optionally retained in
    :attr:`records` when :attr:`retain` categories match — retention is
    opt-in because long experiments can emit millions of records.
    """

    __slots__ = ("_subs", "_retain", "records")

    def __init__(self) -> None:
        self._subs: Dict[str, List[Subscriber]] = {}
        self._retain: set[str] = set()
        self.records: List[TraceRecord] = []

    def subscribe(self, category: str, fn: Subscriber) -> None:
        """Register ``fn`` for ``category`` (or ``"*"`` for all)."""
        self._subs.setdefault(category, []).append(fn)

    def unsubscribe(self, category: str, fn: Subscriber) -> None:
        subs = self._subs.get(category)
        if subs and fn in subs:
            subs.remove(fn)

    def retain(self, *categories: str) -> None:
        """Keep emitted records of these categories in :attr:`records`."""
        self._retain.update(categories)

    def emit(self, time: int, category: str, **payload: Any) -> None:
        """Publish a record.  No-op when nobody listens and nothing retained."""
        subs = self._subs.get(category)
        star = self._subs.get("*")
        keep = category in self._retain or "*" in self._retain
        if not subs and not star and not keep:
            return
        rec = TraceRecord(time, category, payload)
        if keep:
            self.records.append(rec)
        if subs:
            for fn in subs:
                fn(rec)
        if star:
            for fn in star:
                fn(rec)

    def of(self, category: str) -> List[TraceRecord]:
        """Retained records of one category, in emission order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()
