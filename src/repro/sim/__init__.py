"""Discrete-event simulation kernel.

This package is the substrate everything else runs on: an integer-cycle
event engine (:mod:`repro.sim.engine`), deterministic per-component random
streams (:mod:`repro.sim.rng`), and a lightweight trace bus
(:mod:`repro.sim.tracing`) that the metrics layer subscribes to.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngStreams
from repro.sim.tracing import TraceBus, TraceRecord

__all__ = ["Event", "Simulator", "RngStreams", "TraceBus", "TraceRecord"]
