"""Time and frequency units for the simulated machine.

Everything in the simulator is denominated in **integer CPU cycles** of the
reference machine (a 2.33 GHz Xeon X5410, the CPU used in the paper's Dell
Precision T5400 testbed).  Integer cycles keep the discrete-event engine
exact and reproducible: there is no floating-point drift between runs, and
two events can never be "almost simultaneous".

The helpers below convert between wall-clock units and cycles.  Conversions
*to* cycles truncate deterministically toward zero and reject NaN, infinite
and negative inputs — a poisoned duration must fail at the conversion
boundary, not propagate into the event heap as a nonsensical timestamp.
Conversions *from* cycles return floats.
"""

from __future__ import annotations

#: Clock frequency of the simulated PCPUs (Xeon X5410, 2.33 GHz).
CPU_HZ: int = 2_330_000_000

#: Cycles per microsecond / millisecond / second on the reference machine.
CYCLES_PER_US: int = CPU_HZ // 1_000_000
CYCLES_PER_MS: int = CPU_HZ // 1_000
CYCLES_PER_S: int = CPU_HZ


def _to_cycles(value: float, scale: int, unit: str) -> int:
    """Shared producer: validate, then truncate toward zero.

    Truncation (not bankers' rounding) is the deterministic choice every
    caller has relied on since the seed; validation is new — ``NaN``
    comparisons are always false, so without the explicit check a NaN
    would silently become a bogus ``int(nan * scale)`` ValueError deep
    inside the event engine instead of a clear message here.
    """
    if value != value:  # NaN: the only value unequal to itself
        raise ValueError(f"cannot convert NaN {unit} to cycles")
    if value in (float("inf"), float("-inf")):
        raise ValueError(f"cannot convert infinite {unit} to cycles")
    if value < 0:
        raise ValueError(
            f"negative durations are invalid: {value!r} {unit}")
    return int(value * scale)


def ms(value: float) -> int:
    """Convert milliseconds to integer cycles (truncating)."""
    return _to_cycles(value, CYCLES_PER_MS, "ms")


def us(value: float) -> int:
    """Convert microseconds to integer cycles (truncating)."""
    return _to_cycles(value, CYCLES_PER_US, "us")


def seconds(value: float) -> int:
    """Convert seconds to integer cycles (truncating)."""
    return _to_cycles(value, CYCLES_PER_S, "s")


def to_ms(cycles: int) -> float:
    """Convert cycles to milliseconds."""
    return cycles / CYCLES_PER_MS


def to_seconds(cycles: int) -> float:
    """Convert cycles to seconds."""
    return cycles / CYCLES_PER_S


def log2_cycles(cycles: int) -> float:
    """Return log2 of a cycle count (the paper reports waits as 2^k cycles).

    ``cycles`` must be positive; a wait of 0 cycles is reported as 0.0
    rather than -inf so histograms stay finite.
    """
    if cycles <= 0:
        return 0.0
    return cycles.bit_length() - 1 + ((cycles / (1 << (cycles.bit_length() - 1))) - 1)


#: The paper's over-threshold spinlock boundary: waits longer than
#: 2**DELTA_EXP cycles trigger a VCRD adjusting event (Section 4.2, delta=20).
DELTA_EXP: int = 20
OVER_THRESHOLD_CYCLES: int = 1 << DELTA_EXP

#: The paper's measurement floor: only spinlocks with waits above 2**10
#: cycles are recorded by the Monitoring Module instrumentation (Section 2.2).
MEASURE_FLOOR_CYCLES: int = 1 << 10
