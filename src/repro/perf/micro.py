"""Micro-benchmarks: the event engine (and its nearest consumers) alone.

Every benchmark here is deterministic — no RNG, fixed iteration counts —
so its ``fingerprint`` (final clock + event count) is bit-identical
across hosts and runs.  ``quick`` mode shrinks iteration counts ~4x for
the CI smoke gate.
"""

from __future__ import annotations

from repro.config import MachineConfig, SchedulerConfig, VMConfig
from repro.guest.kernel import GuestKernel
from repro.guest.ops import Compute, Critical
from repro.hardware.machine import Machine
from repro.perf.harness import (BenchResult, bench, fingerprint_of,
                                result_from_sim, timed)
from repro.sim.engine import Simulator
from repro.sim.tracing import TraceBus
from repro.vmm.credit import CreditScheduler
from repro.vmm.vm import VM


@bench("event_throughput")
def event_throughput(quick: bool = False) -> BenchResult:
    """Raw schedule/fire throughput: a heap of self-rescheduling chains.

    ``width`` chains keep the heap populated (realistic depth for the
    testbeds) while each firing schedules its successor — the dominant
    pattern of compute-activity events in real runs.
    """
    width = 64
    hops = 2_500 if quick else 10_000
    sim = Simulator()
    remaining = [hops] * width

    def make_chain(i: int):
        def fire() -> None:
            remaining[i] -= 1
            if remaining[i] > 0:
                sim.at(sim.now + 17 + i, fire)
        return fire

    for i in range(width):
        sim.at(i + 1, make_chain(i))

    wall, _ = timed(lambda: sim.run() or sim.events_executed)
    return result_from_sim(
        "event_throughput", sim, wall,
        fingerprint=fingerprint_of(sim.now, sim.events_executed))


@bench("schedule_cancel_churn")
def schedule_cancel_churn(quick: bool = False) -> BenchResult:
    """Schedule/cancel churn: the Activity pause/resume pattern.

    Each round schedules a batch of far-future events and immediately
    cancels most of them — exactly what guest compute activities do when
    their VCPU is descheduled.  Without heap compaction the cancelled
    entries accumulate for the life of the run (the pre-fix behaviour);
    ``peak_heap_entries`` is the regression witness.
    """
    rounds = 2_000 if quick else 8_000
    batch = 20
    cancel_frac = 19  # cancel 19 of every 20
    sim = Simulator()
    scheduled = 0

    def round_fn(r: int):
        def fire() -> None:
            nonlocal scheduled
            horizon = sim.now + 1_000_000
            batch_events = [sim.at(horizon + j, _noop) for j in range(batch)]
            scheduled += batch
            for ev in batch_events[:cancel_frac]:
                ev.cancel()
            if r + 1 < rounds:
                sim.at(sim.now + 1, round_fn(r + 1))
        return fire

    sim.at(1, round_fn(0))
    wall, _ = timed(lambda: sim.run() or sim.events_executed)
    return result_from_sim(
        "schedule_cancel_churn", sim, wall,
        fingerprint=fingerprint_of(sim.now, sim.events_executed),
        scheduled=float(scheduled))


def _noop() -> None:
    pass


@bench("periodic_storm")
def periodic_storm(quick: bool = False) -> BenchResult:
    """Periodic-timer storm: the per-PCPU tick/accounting pattern.

    64 timers with staggered near-coprime periods — the engine's
    bucketed periodic fast path is on trial here (re-arm without
    allocation, small dedicated heap).
    """
    timers = 64
    horizon = 250_000 if quick else 1_000_000
    sim = Simulator()
    fired = [0] * timers
    for i in range(timers):
        def cb(i: int = i) -> None:
            fired[i] += 1
        sim.every(89 + 2 * i, cb, start_offset=i)
    wall, _ = timed(lambda: sim.run_until(horizon) or sim.events_executed)
    return result_from_sim(
        "periodic_storm", sim, wall,
        fingerprint=fingerprint_of(sim.now, sim.events_executed, sum(fired)))


@bench("compute_chain")
def compute_chain(quick: bool = False) -> BenchResult:
    """Pure-Compute dispatch: the coalesced-segment fast path.

    A 4-PCPU machine runs one 4-VCPU VM whose 4 tasks are long chains of
    Compute segments with zero synchronisation.  Every op takes the
    guest kernel's inline Compute dispatch — one Activity event per
    segment, credit burned in closed form at the tick boundaries in
    between — so this isolates the fast-forward compute-coalescing win
    (and, with ``REPRO_NO_FASTFORWARD=1``, the step-wise cost it
    replaces) from lock/barrier traffic.
    """
    from repro.config import GuestConfig

    ops_per_task = 4_000 if quick else 16_000
    sim = Simulator()
    trace = TraceBus()
    machine = Machine(MachineConfig(num_pcpus=4, sockets=1), sim)
    sched = CreditScheduler(machine, sim, trace,
                            SchedulerConfig(work_conserving=True))
    gcfg = GuestConfig(irq_interval_cycles=0)
    vm = VM(0, VMConfig(name="chain", num_vcpus=4, guest=gcfg), sim, trace)
    sched.add_vm(vm)
    kernel = GuestKernel(vm, sim, trace, gcfg)

    def program(seed: int):
        for i in range(ops_per_task):
            yield Compute(2_000 + 500 * ((seed + i) % 7))

    for t in range(4):
        kernel.spawn(f"c{t}", program(t), vcpu_index=t)
    sched.start()

    def drive() -> int:
        sim.run_until_true(lambda: kernel.finished,
                           deadline=10_000_000_000)
        return sim.events_executed

    wall, _ = timed(drive)
    return result_from_sim(
        "compute_chain", sim, wall,
        fingerprint=fingerprint_of(sim.now, sim.events_executed,
                                   kernel.finished_at or 0))


@bench("spinlock_storm")
def spinlock_storm(quick: bool = False) -> BenchResult:
    """Guest spinlock contention storm through the full stack.

    A 4-PCPU machine under the Credit scheduler runs one 4-VCPU VM whose
    8 tasks hammer a single kernel spinlock — scheduler ticks, guest
    dispatch, lock-holder preemption and trace emission all on the hot
    path, with zero randomness.
    """
    from repro.config import GuestConfig

    ops_per_task = 1_000 if quick else 4_000
    sim = Simulator()
    trace = TraceBus()
    machine = Machine(MachineConfig(num_pcpus=4, sockets=1), sim)
    sched = CreditScheduler(machine, sim, trace,
                            SchedulerConfig(work_conserving=True))
    gcfg = GuestConfig(irq_interval_cycles=0)
    vm = VM(0, VMConfig(name="storm", num_vcpus=4, guest=gcfg), sim, trace)
    sched.add_vm(vm)
    kernel = GuestKernel(vm, sim, trace, gcfg)

    def program(seed: int):
        for i in range(ops_per_task):
            yield Compute(3_000 + 700 * ((seed + i) % 5))
            yield Critical("hot", 9_000)

    for t in range(8):
        kernel.spawn(f"t{t}", program(t), vcpu_index=t % 4)
    sched.start()

    def drive() -> int:
        sim.run_until_true(lambda: kernel.finished,
                           deadline=10_000_000_000)
        return sim.events_executed

    wall, _ = timed(drive)
    lock = kernel.lock("hot")
    return result_from_sim(
        "spinlock_storm", sim, wall,
        fingerprint=fingerprint_of(sim.now, sim.events_executed,
                                   kernel.finished_at or 0,
                                   lock.acquisitions, lock.total_wait),
        contended=float(lock.contended_acquisitions))
