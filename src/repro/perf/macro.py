"""Macro-benchmarks: timed runs of real paper testbeds.

These measure the engine *as the figures use it* — full guest kernels,
schedulers, monitors and trace collectors.  Each reports the simulator's
events/second over the wall-clock run plus a fingerprint of the
simulated outcome (completion cycle, event count, spinlock statistics),
so the perf gate doubles as a same-seed determinism gate.

Timings here are only comparable between runs with the same
determinism-relevant configuration: a sanitizer-on run re-validates
every scheduling pass and a fast-forward-off run takes the step-wise
dispatch paths, so both are deliberately slower while producing the
same fingerprints.  Baselines are therefore stamped with
:func:`repro.perf.harness.run_config` and
:func:`~repro.perf.harness.check_against_baseline` refuses a stamp
mismatch instead of comparing incompatible configs.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import units
from repro.config import SchedulerConfig
from repro.experiments.setup import Testbed, weight_for_rate
from repro.perf.harness import (BenchResult, bench, fingerprint_of,
                                result_from_sim, timed)
from repro.workloads.nas import NasBenchmark
from repro.workloads.speccpu import SpecCpuRateWorkload


@bench("fig07_lu_testbed")
def fig07_lu_testbed(quick: bool = False) -> BenchResult:
    """The Figure 7 scenario: LU in a 4-VCPU VM at a 40% online rate
    (plus idle Domain-0, non-work-conserving), under Credit and ASMan."""
    scale = 0.2 if quick else 0.4
    fp_parts = []
    events = 0
    peak = 0
    total_wall = 0.0
    last_sim = None
    for scheduler in ("credit", "asman"):
        tb = Testbed(scheduler=scheduler, num_pcpus=8, seed=1,
                     sched_config=SchedulerConfig(work_conserving=False))
        tb.add_domain0()
        tb.add_vm("V1", num_vcpus=4,
                  weight=weight_for_rate(0.4),
                  workload=NasBenchmark.by_name("LU", scale=scale),
                  concurrent_hint=True)

        def drive(tb: Testbed = tb) -> int:
            ok = tb.run_until_workloads_done(
                ["V1"], deadline_cycles=units.seconds(240))
            assert ok, "fig07 testbed did not finish"
            return tb.sim.events_executed

        wall, _ = timed(drive)
        total_wall += wall
        events += tb.sim.events_executed
        peak = max(peak, getattr(tb.sim, "peak_heap_entries", 0))
        stats = tb.spin_stats("V1").summary()
        fp_parts += [tb.guests["V1"].finished_at, tb.sim.events_executed,
                     int(stats["recorded"]), int(stats["over_2^20"])]
        last_sim = tb.sim
    result = result_from_sim(
        "fig07_lu_testbed", last_sim, total_wall,
        fingerprint=fingerprint_of(*fp_parts))
    result.events = events
    result.events_per_s = events / total_wall
    result.peak_heap_entries = peak
    return result


@bench("parallel_scaling")
def parallel_scaling(quick: bool = False) -> BenchResult:
    """The parallel experiment fabric under load: a fixed Fig-7-style
    batch of single-VM LU cells run at increasing ``--jobs`` levels, plus
    the content-addressed cache's cold/warm round-trip.

    ``extra`` records ``speedup_j<N>`` (serial wall over N-way wall — on
    a 1-core host these sit below 1.0 from spawn overhead, on an 8-core
    host ``speedup_j8`` should exceed 3.0) and ``cache_cold_s`` /
    ``cache_warm_s`` (a warm rerun must cost <10% of cold).  Speedups are
    host-dependent, so this bench is deliberately *not* in the committed
    events/sec baseline; the fingerprint, which every jobs level must
    reproduce identically, is the portable part.
    """
    import shutil
    import tempfile

    from repro.experiments.runner import SingleVmResult
    from repro.parallel import (ResultCache, WorkloadSpec, get_default_cache,
                                run_cells, set_default_cache, single_vm_cell)

    scale = 0.05 if quick else 0.15
    wl = WorkloadSpec("nas", "LU", scale=scale)
    cells = [single_vm_cell(wl, scheduler=sched, online_rate=rate, seed=seed)
             for sched in ("credit", "asman")
             for rate in (1.0, 0.4)
             for seed in (1, 2)]
    levels = (1, 2) if quick else (1, 2, 4, 8)

    saved = get_default_cache()
    set_default_cache(None)  # cold timings must never touch a real cache
    tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        walls: Dict[int, float] = {}
        fingerprint_hex: Optional[str] = None
        events = 0
        for jobs in levels:
            def drive(jobs: int = jobs) -> int:
                results = run_cells(cells, jobs=jobs)
                nonlocal fingerprint_hex
                combined = results.combined_fingerprint()
                assert fingerprint_hex in (None, combined), \
                    "parallel run diverged from the serial reference"
                fingerprint_hex = combined
                total = 0
                for outcome in results:
                    value = outcome.value
                    assert isinstance(value, SingleVmResult)
                    total += value.events_executed
                return total

            walls[jobs], events = timed(drive)

        cache = ResultCache(tmp)
        cold, _ = timed(lambda: run_cells(cells, jobs=1, cache=cache)
                        and events)
        warm, _ = timed(lambda: run_cells(cells, jobs=1, cache=cache)
                        and events)
        assert cache.hits == len(cells), "warm rerun was not all-hit"

        extra = {f"speedup_j{j}": walls[levels[0]] / walls[j]
                 for j in levels[1:]}
        extra["cache_cold_s"] = cold
        extra["cache_warm_s"] = warm
        assert fingerprint_hex is not None
        return BenchResult(
            name="parallel_scaling",
            wall_s=walls[levels[0]],
            events=events,
            events_per_s=events / walls[levels[0]],
            peak_heap_entries=0,
            fingerprint=int(fingerprint_hex, 16),
            extra=extra,
        )
    finally:
        set_default_cache(saved)
        shutil.rmtree(tmp, ignore_errors=True)


@bench("fig11a_mix_testbed")
def fig11a_mix_testbed(quick: bool = False) -> BenchResult:
    """The Figure 11(a) scenario: bzip2 + gcc + SP + LU on four VMs plus
    Domain-0, work-conserving, under the Credit scheduler, run until every
    VM completes one measured round."""
    scale = 0.12 if quick else 0.25
    rounds = 8
    tb = Testbed(scheduler="credit", num_pcpus=8, seed=1,
                 sched_config=SchedulerConfig(work_conserving=True))
    tb.add_domain0()
    combo = [
        ("V1", SpecCpuRateWorkload.by_name("256.bzip2", scale=scale,
                                           rounds=rounds), False),
        ("V2", SpecCpuRateWorkload.by_name("176.gcc", scale=scale,
                                           rounds=rounds), False),
        ("V3", NasBenchmark.by_name("SP", scale=scale, rounds=rounds), True),
        ("V4", NasBenchmark.by_name("LU", scale=scale, rounds=rounds), True),
    ]
    for name, wl, concurrent in combo:
        tb.add_vm(name, num_vcpus=4, weight=256, workload=wl,
                  concurrent_hint=concurrent)
    tb.start()

    def drive() -> int:
        done = tb.sim.run_until_true(
            lambda: all(w.rounds_completed() >= 1
                        for w in tb.workloads.values()),
            deadline=units.seconds(240))
        assert done, "fig11a testbed did not reach a full round"
        return tb.sim.events_executed

    wall, _ = timed(drive)
    fp_parts = [tb.sim.now, tb.sim.events_executed]
    for name, wl, _ in combo:
        fp_parts.append(wl.rounds_completed())
        fp_parts.append(int(wl.mean_round_cycles(1)))
    return result_from_sim(
        "fig11a_mix_testbed", tb.sim, wall,
        fingerprint=fingerprint_of(*fp_parts))
