"""Performance regression harness for the simulation core.

The hot path of every figure in the reproduction is
:class:`repro.sim.engine.Simulator`; this package measures it so that a
change to the engine (or the scheduler/guest layers it drives) can prove
it did not regress raw throughput.

Two benchmark tiers:

* **micro** (:mod:`repro.perf.micro`) — the engine in isolation: raw
  event throughput, schedule/cancel churn (exercises heap compaction),
  a periodic-timer storm (the bucketed tick fast path), and a guest
  spinlock contention storm driving the full kernel/VMM stack;
* **macro** (:mod:`repro.perf.macro`) — timed runs of the Figure 7 and
  Figure 11(a) testbeds, reporting simulator events/second plus a
  deterministic *fingerprint* of the simulated outcome, so a perf change
  that silently alters simulation behaviour is caught too.

Each benchmark emits ``BENCH_<name>.json`` with
``{wall_s, events, events_per_s, peak_heap_entries}`` (see
:class:`repro.perf.harness.BenchResult`).  ``python -m repro perf``
runs the suite; ``--check BASELINE`` gates events/sec against a
committed baseline (``benchmarks/perf_baseline.json``), normalising for
host speed with a pure-Python calibration loop.
"""

from repro.perf.harness import (BenchResult, calibrate, check_against_baseline,
                                load_baseline, registry, run_benchmarks,
                                run_config, write_baseline, write_result)
from repro.perf import macro, micro  # noqa: F401  (register benchmarks)

__all__ = [
    "BenchResult",
    "calibrate",
    "check_against_baseline",
    "load_baseline",
    "registry",
    "run_benchmarks",
    "run_config",
    "write_baseline",
    "write_result",
]
