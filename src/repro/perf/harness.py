"""Benchmark plumbing: results, registry, baselines, regression checks.

A benchmark is a callable ``fn(quick: bool) -> BenchResult`` registered
via :func:`bench`.  Results serialise to ``BENCH_<name>.json``; a
*baseline* file aggregates one run's results (plus a host-speed
calibration figure) so later runs can be gated against it.

Cross-host comparability
------------------------
Raw events/sec depends on the machine running the benchmark.  Each run
therefore also times a fixed pure-Python **calibration loop** that does
not touch the simulator; a baseline check scales the expected events/sec
by ``current_calibration / baseline_calibration`` before applying the
regression threshold, so a slower CI runner does not read as an engine
regression.  Simulation *fingerprints* (deterministic integer outcomes)
are compared exactly — they are hardware independent by construction.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

#: Registered benchmarks, in registration order: name -> fn(quick) -> BenchResult.
registry: Dict[str, Callable[[bool], "BenchResult"]] = {}


def bench(name: str) -> Callable:
    """Decorator: register a benchmark under ``name``."""

    def register(fn: Callable[[bool], "BenchResult"]) -> Callable:
        if name in registry:
            raise ConfigurationError(f"duplicate benchmark name {name!r}")
        registry[name] = fn
        return fn

    return register


@dataclass
class BenchResult:
    """Outcome of one benchmark run.

    ``fingerprint`` is an integer digest of the *simulated* outcome
    (e.g. final clock value mixed with counters).  It must be identical
    across hosts and runs for the same code — a mismatch against the
    baseline means the simulation behaved differently, which a pure
    performance change must never do.
    """

    name: str
    wall_s: float
    events: int
    events_per_s: float
    peak_heap_entries: int
    fingerprint: Optional[int] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        d = {
            "name": self.name,
            "wall_s": round(self.wall_s, 6),
            "events": self.events,
            "events_per_s": round(self.events_per_s, 1),
            "peak_heap_entries": self.peak_heap_entries,
        }
        if self.fingerprint is not None:
            d["fingerprint"] = self.fingerprint
        if self.extra:
            d["extra"] = {k: round(v, 6) for k, v in self.extra.items()}
        return d


def fingerprint_of(*values: int) -> int:
    """Mix integer outcomes into one 64-bit FNV-1a-style digest.

    Used for determinism gating: fingerprints of a simulated run are pure
    functions of the configuration and seeds, never of the host.
    """
    acc = 0xCBF29CE484222325
    for v in values:
        acc ^= int(v) & 0xFFFFFFFFFFFFFFFF
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


def run_config() -> Dict[str, bool]:
    """The determinism-relevant configuration of this process.

    Sanitizer-on runs execute extra validation work (slower) and
    fast-forward-off runs take the step-wise paths (also slower); both
    still produce identical fingerprints, but their events/sec are not
    comparable to a differently-configured baseline.  Every baseline is
    stamped with this dict and :func:`check_against_baseline` refuses to
    compare across differing stamps instead of reporting a phantom
    regression (or masking a real one).
    """
    from repro import analysis
    from repro.sim.fastforward import fastforward_enabled

    return {"sanitize": analysis.sanitize_enabled(),
            "fastforward": fastforward_enabled()}


def timed(fn: Callable[[], int]) -> tuple:
    """Run ``fn`` (returning an event count) under a wall-clock timer;
    return ``(wall_s, events)``."""
    t0 = time.perf_counter()
    events = fn()
    wall = time.perf_counter() - t0
    return max(wall, 1e-9), events


def result_from_sim(name: str, sim, wall_s: float,
                    fingerprint: Optional[int] = None,
                    **extra: float) -> BenchResult:
    """Build a BenchResult from a finished :class:`Simulator`."""
    events = sim.events_executed
    return BenchResult(
        name=name,
        wall_s=wall_s,
        events=events,
        events_per_s=events / wall_s,
        peak_heap_entries=getattr(sim, "peak_heap_entries", 0),
        fingerprint=fingerprint,
        extra=dict(extra),
    )


# --------------------------------------------------------------------- #
# Calibration
# --------------------------------------------------------------------- #
def calibrate(rounds: int = 3) -> float:
    """Host-speed figure: iterations/second of a fixed pure-Python loop
    (integer arithmetic + dict traffic, roughly the engine's mix).  Takes
    the best of ``rounds`` to shed scheduling noise."""
    n = 200_000
    best = float("inf")
    for _ in range(rounds):
        d: Dict[int, int] = {}
        t0 = time.perf_counter()
        acc = 0
        for i in range(n):
            acc += i * i & 1023
            d[i & 255] = acc
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
    return n / best


# --------------------------------------------------------------------- #
# Running and persistence
# --------------------------------------------------------------------- #
def run_benchmarks(names: Optional[Sequence[str]] = None,
                   quick: bool = False,
                   progress: Optional[Callable[[str], None]] = None
                   ) -> List[BenchResult]:
    """Run the selected (default: all) registered benchmarks."""
    selected = list(names) if names else list(registry)
    unknown = [n for n in selected if n not in registry]
    if unknown:
        raise ConfigurationError(
            f"unknown benchmark(s) {unknown}; available: {sorted(registry)}")
    results = []
    for name in selected:
        if progress:
            progress(name)
        results.append(registry[name](quick))
    return results


def write_result(result: BenchResult, out_dir: Path) -> Path:
    """Write ``BENCH_<name>.json`` under ``out_dir``."""
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{result.name}.json"
    path.write_text(json.dumps(result.to_dict(), indent=2) + "\n")
    return path


def write_baseline(results: Sequence[BenchResult], path: Path,
                   quick: bool, calibration: float) -> None:
    """Persist one run as the regression baseline."""
    doc = {
        "meta": {
            "mode": "quick" if quick else "full",
            "config": run_config(),
            "calibration_events_per_s": round(calibration, 1),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "benches": {r.name: r.to_dict() for r in results},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")


def load_baseline(path: Path) -> Dict:
    """Read a baseline document written by :func:`write_baseline`."""
    return json.loads(Path(path).read_text())


def check_against_baseline(results: Sequence[BenchResult], baseline: Dict,
                           calibration: float,
                           threshold: float = 0.30) -> List[str]:
    """Compare a run against a baseline.  Returns a list of human-readable
    failures (empty = pass).

    * the baseline's config stamp (sanitize / fast-forward state) must
      match this process exactly — differently-configured runs are not
      performance-comparable and the check refuses them loudly;
    * events/sec may not drop more than ``threshold`` below the baseline
      after host-speed normalisation;
    * fingerprints must match exactly (determinism gate);
    * benchmarks present in the baseline but not in the run are reported,
      so a gate cannot silently shrink its coverage.
    """
    failures: List[str] = []
    meta = baseline.get("meta", {})
    base_config = meta.get("config")
    config = run_config()
    if base_config is None:
        failures.append(
            "baseline has no config stamp (pre-quiescence-fast-forward "
            "schema); regenerate it with --update-baseline")
        return failures
    if base_config != config:
        failures.append(
            f"config mismatch: baseline recorded with {base_config} but "
            f"this run is {config} — events/sec across sanitizer or "
            f"fast-forward settings are not comparable; rerun with a "
            f"matching configuration or regenerate the baseline")
        return failures
    base_cal = float(meta.get("calibration_events_per_s", 0.0))
    scale = (calibration / base_cal) if base_cal > 0 else 1.0
    by_name = {r.name: r for r in results}
    for name, base in baseline.get("benches", {}).items():
        got = by_name.get(name)
        if got is None:
            failures.append(f"{name}: present in baseline but not run")
            continue
        expected = float(base["events_per_s"]) * scale
        floor = expected * (1.0 - threshold)
        if got.events_per_s < floor:
            failures.append(
                f"{name}: {got.events_per_s:,.0f} events/s < floor "
                f"{floor:,.0f} (baseline {base['events_per_s']:,.0f} "
                f"x host-scale {scale:.2f}, threshold {threshold:.0%})")
        base_fp = base.get("fingerprint")
        if base_fp is not None and got.fingerprint is not None \
                and got.fingerprint != base_fp:
            failures.append(
                f"{name}: fingerprint {got.fingerprint} != baseline "
                f"{base_fp} — the simulation behaved differently; if "
                f"intended, regenerate the baseline with --update-baseline")
    return failures
