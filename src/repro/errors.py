"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch the
whole family with one clause.  Each subsystem raises its own subclass; this
keeps error handling in the experiment drivers explicit about *which* layer
misbehaved (a scheduling invariant violation is a bug, a configuration error
is user input).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """Invalid user-supplied configuration (bad weights, VCPU counts, ...)."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. scheduling an
    event in the past, or running a finished simulation)."""


class SchedulerInvariantError(ReproError):
    """A VMM scheduler invariant was violated.

    These indicate bugs in scheduler implementations, not user error:
    e.g. a VCPU appearing in two run queues at once, or a PCPU running a
    VCPU that is not in RUNNING state.
    """


class GuestStateError(ReproError):
    """Guest OS state machine misuse (e.g. releasing a lock not held,
    a task resuming while blocked)."""


class WorkloadError(ReproError):
    """A workload program emitted an invalid operation sequence."""


class ExecutionError(ReproError):
    """A supervised batch could not complete every cell successfully.

    Raised by :meth:`~repro.parallel.executor.CellResults.raise_if_failed`
    when a batch carries structured
    :class:`~repro.parallel.supervisor.CellFailure` outcomes (a poison
    cell that exhausted its retry budget, a batch whose deadline budget
    ran out, ...).  Maps to CLI exit code 3.
    """


class CellTimeoutError(ExecutionError):
    """One or more supervised cells exceeded their wall-clock timeout
    (per-cell ``cell_timeout_s`` or the batch deadline budget) and were
    recorded as timeout failures.  Maps to CLI exit code 4."""


class CacheIntegrityError(ReproError):
    """A result-cache entry failed its content checksum (bit rot, torn
    write, tampering).  Read paths quarantine and degrade to a miss;
    this error is raised only by strict verification
    (:meth:`~repro.parallel.cache.ResultCache.verify`).  Maps to CLI
    exit code 5."""
