"""``python -m repro`` entry point.

Exit codes (also in ``repro --help``): 0 success; 1 run failure
(violations, regressions, drift); 2 usage/configuration error; 3
:class:`~repro.errors.ExecutionError` (supervised cells failed); 4
:class:`~repro.errors.CellTimeoutError` (wall-clock budgets exceeded);
5 :class:`~repro.errors.CacheIntegrityError` (cache checksum
verification failed).  The mapping lives in :func:`repro.cli.main`.
"""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
