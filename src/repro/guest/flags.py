"""Userspace spin flags — point-to-point pipeline synchronisation.

NPB-LU's wavefront pipelining synchronises neighbour threads through
shared flag arrays and busy-wait loops (``while (flag[t-1] < k) ;`` plus
flushes) — *pure userspace spinning*, no kernel entry, no blocking.  Under
virtualization this is the harshest primitive of all: a successor whose
predecessor's VCPU is descheduled burns its entire online window spinning,
wasting its own credit, which desynchronises the VM's VCPUs further (spin
waste, unlike futex sleeping, has no self-correcting feedback).

These waits are invisible to the in-kernel Monitoring Module (they never
enter the kernel) — faithful to the paper, whose monitor sees only kernel
spinlocks; ASMan still catches the episodes through the kernel-lock
over-threshold waits that accompany them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.task import Task


class FlagVar:
    """A monotonically increasing shared integer with spin-waiters."""

    __slots__ = ("name", "value", "waiters", "sets", "spin_waits",
                 "total_spin_wait", "max_spin_wait")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        #: (task, target_value, wait_start_cycle); tasks spin here.
        self.waiters: List[Tuple["Task", int, int]] = []
        self.sets = 0
        self.spin_waits = 0
        self.total_spin_wait = 0
        self.max_spin_wait = 0

    def satisfied(self, target: int) -> bool:
        return self.value >= target

    def advance(self, value: int) -> List[Tuple["Task", int, int]]:
        """Raise the flag (monotone) and return the now-satisfied waiters
        for the kernel to resume."""
        self.sets += 1
        if value > self.value:
            self.value = value
        ready = [w for w in self.waiters if w[1] <= self.value]
        if ready:
            self.waiters = [w for w in self.waiters if w[1] > self.value]
        return ready

    def add_waiter(self, task: "Task", target: int, now: int) -> None:
        self.waiters.append((task, target, now))

    def record_wait(self, wait: int) -> None:
        self.spin_waits += 1
        self.total_spin_wait += wait
        if wait > self.max_spin_wait:
            self.max_spin_wait = wait

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FlagVar {self.name}={self.value} waiters={len(self.waiters)}>"
