"""Guest kernel introspection: summary tables of a running guest.

The simulator equivalent of peeking at ``/proc``: task states, lock
contention tables, futex/barrier counters and flag-spin totals for one
:class:`~repro.guest.kernel.GuestKernel`.  Used by the CLI's verbose
mode, the examples, and by tests that want a one-call health check of a
guest's synchronisation behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from repro import units
from repro.guest.task import TaskState
from repro.metrics.report import Table

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.kernel import GuestKernel


@dataclass(frozen=True)
class LockStats:
    name: str
    acquisitions: int
    contended: int
    max_wait: int
    mean_wait: float
    #: log2 wait histogram buckets, ``{bit_length(wait): count}`` — the
    #: populated buckets of :attr:`SpinLock.wait_hist`.  A parity anchor
    #: for the fast-forward paths: skipped spin intervals must land in
    #: exactly the buckets per-quantum stepping would fill.
    wait_hist: Dict[int, int] = field(default_factory=dict)

    @property
    def contention_ratio(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.contended / self.acquisitions


@dataclass(frozen=True)
class TaskStats:
    name: str
    state: str
    daemon: bool
    ops_completed: int
    compute_seconds: float


class GuestSnapshot:
    """Point-in-time summary of one guest kernel."""

    def __init__(self, kernel: "GuestKernel") -> None:
        self.vm_name = kernel.vm.name
        self.time = kernel.sim.now
        self.tasks: List[TaskStats] = [
            TaskStats(t.name, t.state.value, t.daemon, t.ops_completed,
                      units.to_seconds(t.compute_cycles_done))
            for t in kernel.tasks]
        self.locks: List[LockStats] = [
            LockStats(lk.name, lk.acquisitions, lk.contended_acquisitions,
                      lk.max_wait, lk.mean_wait(), lk.wait_hist_nonzero())
            for lk in kernel.locks.values()]
        self.sem_waits = {s.name: s.blocked_waits
                          for s in kernel.semaphores.values()}
        self.barrier_crossings = {b.name: b.crossings
                                  for b in kernel.barriers.values()}
        self.futex_blocks = sum(b.futex.blocks
                                for b in kernel.barriers.values())
        self.futex_spin_successes = sum(b.futex.spin_successes
                                        for b in kernel.barriers.values())
        self.flag_spin_seconds = units.to_seconds(
            sum(f.total_spin_wait for f in kernel.flags.values()))
        self.irq_count = kernel.irq_count
        self.guest_switches = kernel.guest_switches

    # ------------------------------------------------------------------ #
    def runnable_tasks(self) -> int:
        return sum(1 for t in self.tasks
                   if t.state in ("running", "ready", "spinning"))

    def total_acquisitions(self) -> int:
        return sum(l.acquisitions for l in self.locks)

    def hottest_locks(self, n: int = 5) -> List[LockStats]:
        return sorted(self.locks, key=lambda l: l.contended,
                      reverse=True)[:n]

    def worst_wait(self) -> int:
        return max((l.max_wait for l in self.locks), default=0)

    # ------------------------------------------------------------------ #
    def render(self, max_rows: int = 12) -> str:
        parts = [f"guest snapshot: {self.vm_name} at "
                 f"{units.to_seconds(self.time):.3f}s"]
        tt = Table(["task", "state", "ops", "compute_s"], title="tasks")
        for t in self.tasks[:max_rows]:
            label = t.name + (" [d]" if t.daemon else "")
            tt.add_row(label, t.state, t.ops_completed, t.compute_seconds)
        parts.append(tt.render())
        lt = Table(["lock", "acq", "contended", "max_wait_log2"],
                   title="hottest locks")
        for l in self.hottest_locks():
            lt.add_row(l.name, l.acquisitions, l.contended,
                       units.log2_cycles(l.max_wait))
        parts.append(lt.render())
        parts.append(
            f"futex: {self.futex_blocks} blocks, "
            f"{self.futex_spin_successes} spin-successes; "
            f"flag-spin: {self.flag_spin_seconds:.3f}s; "
            f"irqs: {self.irq_count}; "
            f"guest switches: {self.guest_switches}")
        return "\n".join(parts)


def snapshot(kernel: "GuestKernel") -> GuestSnapshot:
    """Take a summary snapshot of a guest kernel."""
    return GuestSnapshot(kernel)
