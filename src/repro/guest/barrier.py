"""OpenMP-style barriers built from a futex and its bucket spinlock.

The dominant synchronisation construct in the NAS benchmarks.  Crossing a
barrier costs each arriving task one bucket-lock critical section (counter
update); non-last arrivals then spin on the generation word for the futex
spin budget and, failing that, take the bucket lock *again* to enqueue and
sleep (the futex slow path).  The last arrival resets the counter, bumps
the generation and wakes everyone **while holding the bucket lock**, just
like ``futex_wake`` walking the bucket's list.

All the timing/sequencing lives in the guest kernel; this class is the
barrier's state plus pure decision helpers, which keeps it independently
unit-testable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import GuestStateError
from repro.guest.futex import FutexQueue
from repro.guest.spinlock import SpinLock

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.task import Task


class Barrier:
    """A reusable (generation-counted) barrier for ``parties`` tasks."""

    __slots__ = ("name", "parties", "count", "futex", "bucket", "crossings")

    def __init__(self, name: str, parties: int) -> None:
        if parties < 1:
            raise GuestStateError(f"barrier {name}: parties must be >= 1")
        self.name = name
        self.parties = parties
        self.count = 0
        #: The futex the waiters sleep on.
        self.futex = FutexQueue(f"{name}.futex")
        #: The futex hash-bucket spinlock serialising arrivals and wakes.
        self.bucket = SpinLock(f"{name}.bucket")
        #: Completed barrier episodes (all parties crossed).
        self.crossings = 0

    def arrive(self) -> bool:
        """Register one arrival (caller holds the bucket lock).

        Returns True when this arrival is the last one — the caller must
        then :meth:`reset_and_wake`.
        """
        if self.count >= self.parties:
            raise GuestStateError(
                f"barrier {self.name}: more arrivals than parties")
        self.count += 1
        return self.count == self.parties

    def reset_and_wake(self):
        """Last arrival: reset the counter, bump the generation, return the
        blocked tasks to wake (caller holds the bucket lock)."""
        if self.count != self.parties:
            raise GuestStateError(
                f"barrier {self.name}: reset with {self.count}/{self.parties}")
        self.count = 0
        self.crossings += 1
        return self.futex.wake_all()

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Barrier {self.name} {self.count}/{self.parties} "
                f"gen={self.futex.generation}>")
