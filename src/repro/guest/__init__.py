"""The guest operating system model.

Each VM runs a :class:`~repro.guest.kernel.GuestKernel`: an SMP kernel with
per-VCPU task scheduling and the two synchronisation primitive families the
paper contrasts — busy-waiting **spinlocks** (whose waits virtualization
inflates) and blocking **semaphores** (which virtualization leaves mostly
alone).  Application-level synchronisation (OpenMP barriers, JVM monitors)
is mapped onto futexes whose hash-bucket spinlocks are where over-threshold
waits arise, mirroring the paper's argument in Section 2.2.
"""

from repro.guest.kernel import GuestKernel
from repro.guest.task import Task, TaskState
from repro.guest.ops import (Compute, Critical, BarrierOp, SemDown, SemUp,
                             FlagSet, FlagWait, Sleep, Program, Op)
from repro.guest.spinlock import SpinLock
from repro.guest.semaphore import Semaphore
from repro.guest.barrier import Barrier
from repro.guest.flags import FlagVar
from repro.guest.futex import FutexQueue
from repro.guest.hrtimer import Hrtimer
from repro.guest.stats import GuestSnapshot, snapshot

__all__ = [
    "GuestKernel", "Task", "TaskState",
    "Compute", "Critical", "BarrierOp", "SemDown", "SemUp",
    "FlagSet", "FlagWait", "Sleep", "Program", "Op",
    "SpinLock", "Semaphore", "Barrier", "FlagVar", "FutexQueue", "Hrtimer",
    "GuestSnapshot", "snapshot",
]
