"""The guest's high-resolution timer.

The paper measures spinlock waiting times "by the high-resolution timer
provided by Linux" (Section 2.2).  In the simulator that timer is simply a
read of the global cycle clock — a paravirtualised guest's clocksource is
the host TSC, so guest hrtimer readings and VMM time agree, which is why
wall-clock spinlock waits (including time the VCPU spent offline) are what
the Monitoring Module sees.

Wrapping the read in a class keeps the measurement point explicit and lets
tests substitute a skewed timer to check the Monitoring Module's robustness
to clock granularity.
"""

from __future__ import annotations

from repro.sim.engine import Simulator


class Hrtimer:
    """Cycle-granularity guest clock."""

    __slots__ = ("_sim", "granularity")

    def __init__(self, sim: Simulator, granularity: int = 1) -> None:
        if granularity < 1:
            raise ValueError("granularity must be >= 1 cycle")
        self._sim = sim
        #: Reading quantum in cycles (1 = perfect TSC).
        self.granularity = granularity

    def read(self) -> int:
        """Current time in cycles, quantised to the timer granularity."""
        now = self._sim._now
        if self.granularity == 1:
            return now
        return now - (now % self.granularity)

    def elapsed(self, since: int) -> int:
        """Cycles elapsed since a previous :meth:`read` value."""
        return max(0, self.read() - since)
