"""Blocking semaphores.

The non-busy-waiting primitive (paper Section 2.2): a task that cannot take
the semaphore is *descheduled inside the guest*, freeing the VCPU; the VMM
notices the idle VCPU and keeps proportional-share fairness.  The paper's
measurements show all semaphore waits stay under 2^16 cycles even at a
22.2% online rate — our tests assert the analogue, namely that blocking
waits consume no CPU and cause no over-threshold spin waits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import GuestStateError

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.task import Task


class Semaphore:
    """Counting semaphore with a FIFO wait queue."""

    __slots__ = ("name", "count", "waiters", "downs", "ups",
                 "blocked_waits", "total_block_wait", "max_block_wait")

    def __init__(self, name: str, initial: int = 0) -> None:
        if initial < 0:
            raise GuestStateError(f"semaphore {name}: negative initial count")
        self.name = name
        self.count = initial
        #: FIFO of (task, block_cycle).
        self.waiters: List[Tuple["Task", int]] = []
        self.downs = 0
        self.ups = 0
        self.blocked_waits = 0
        self.total_block_wait = 0
        self.max_block_wait = 0

    def try_down(self, task: "Task") -> bool:
        """P(): take a unit if available; returns False when the caller
        must block."""
        self.downs += 1
        if self.count > 0:
            self.count -= 1
            return True
        return False

    def enqueue_waiter(self, task: "Task", now: int) -> None:
        self.waiters.append((task, now))

    def remove_waiter(self, task: "Task") -> int:
        for i, (t, since) in enumerate(self.waiters):
            if t is task:
                del self.waiters[i]
                return since
        raise GuestStateError(
            f"task {task.name} not waiting on semaphore {self.name}")

    def up(self, now: int) -> Optional[Tuple["Task", int]]:
        """V(): wake the oldest waiter, returning ``(task, wait_cycles)``
        for the kernel to make READY, or bank the unit when nobody waits."""
        self.ups += 1
        if self.waiters:
            task, since = self.waiters.pop(0)
            wait = now - since
            self.blocked_waits += 1
            self.total_block_wait += wait
            if wait > self.max_block_wait:
                self.max_block_wait = wait
            return task, wait
        self.count += 1
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Semaphore {self.name} count={self.count} "
                f"waiters={len(self.waiters)}>")
