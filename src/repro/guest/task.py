"""Guest tasks (threads/processes) and their execution state.

A :class:`Task` carries its program iterator, a queue of pending micro-steps
(the kernel's expansion of the current op), and at most one in-flight timed
:class:`Activity` (a compute burst or a futex spin phase).  Activities are
pausable: when the VMM deschedules the VCPU, the kernel cancels the
completion event and banks the consumed cycles; when the VCPU comes back
online the activity is re-armed with the remainder.  A *spinning* task has
no activity — it burns whatever CPU its VCPU gets until the lock is granted,
which is exactly the pathology the paper measures.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.errors import GuestStateError
from repro.sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.ops import Program
    from repro.guest.spinlock import SpinLock
    from repro.vmm.vm import VCPU

MicroStep = Callable[["Task"], str]
"""A micro-step: runs one primitive and returns an ExecStatus constant."""

#: ExecStatus values returned by micro-steps.
CONTINUE = "continue"   # step finished synchronously; run the next one
WAIT = "wait"           # task is waiting (spinning / blocked / timed)


class TaskState(enum.Enum):
    """Guest-visible task states (see module docstring)."""

    READY = "ready"          # runnable, waiting for its VCPU slot
    RUNNING = "running"      # current task of its VCPU
    SPINNING = "spinning"    # busy-waiting on a spinlock (occupies the VCPU)
    BLOCKED = "blocked"      # descheduled inside the guest (sem/futex)
    DONE = "done"            # program exhausted


class Activity:
    """A pausable timed burst of CPU work.

    ``on_complete`` fires when the full ``remaining`` budget has been
    consumed while online; pausing/resuming preserves the budget.
    """

    __slots__ = ("remaining", "total", "on_complete", "started_at", "event")

    def __init__(self, cycles: int, on_complete: Callable[[], None]) -> None:
        self.remaining = int(cycles)
        self.total = int(cycles)
        self.on_complete = on_complete
        self.started_at: Optional[int] = None
        self.event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self.event is not None and self.event.pending

    def pause(self, now: int) -> None:
        if self.started_at is None:
            return
        consumed = now - self.started_at
        self.remaining = max(0, self.remaining - consumed)
        self.started_at = None
        if self.event is not None:
            self.event.cancel()
            self.event = None


class Task:
    """One guest thread/process."""

    __slots__ = ("name", "program", "vcpu", "daemon", "state", "micro",
                 "activity", "spin_lock", "spin_since", "spin_flag",
                 "locks_held", "ran_since_dispatch", "ops_completed",
                 "compute_cycles_done", "finished_at", "compute_label",
                 "on_compute_done", "act_spare", "mpop", "pnext", "runq")

    def __init__(self, name: str, program: "Program", vcpu: "VCPU",
                 daemon: bool = False) -> None:
        self.name = name
        self.program = program
        #: Home VCPU; tasks are pinned (OpenMP-style affinity).
        self.vcpu = vcpu
        #: Daemon (kernel housekeeping) tasks run with priority, never
        #: count toward workload completion, and typically never finish.
        self.daemon = daemon
        self.state = TaskState.READY
        self.micro: Deque[MicroStep] = deque()
        #: Hot-dispatch aliases: micro and program are fixed for the
        #: task's lifetime (only mutated in place), so their bound
        #: methods are hoisted here once instead of per dispatch.
        self.mpop = self.micro.popleft
        self.pnext = program.__next__
        #: Home run queue, assigned by the kernel at spawn (the VCPU
        #: pinning makes it constant too).
        self.runq: Optional[Deque["Task"]] = None
        self.activity: Optional[Activity] = None
        #: The spinlock this task is currently spinning on, if any.
        self.spin_lock: Optional["SpinLock"] = None
        #: Cycle at which the current spinlock wait began.
        self.spin_since: Optional[int] = None
        #: Userspace flag spin: (FlagVar, target value) while flag-waiting.
        self.spin_flag = None
        #: Number of spinlocks currently held (preemption-disable depth).
        self.locks_held = 0
        #: Online cycles consumed since last guest dispatch (for rotation).
        self.ran_since_dispatch = 0
        #: Statistics.
        self.ops_completed = 0
        self.compute_cycles_done = 0
        self.finished_at: Optional[int] = None
        #: Event label for this task's compute bursts, built once — the
        #: kernel arms one event per burst, so per-arm formatting adds up.
        self.compute_label = "compute:" + name
        #: Default activity-completion callback, installed by the kernel
        #: on first use (one closure per task, not per burst).
        self.on_compute_done: Optional[Callable[[], None]] = None
        #: Retired Activity available for reuse.  A task runs at most one
        #: activity at a time and nothing retains one past completion, so
        #: the kernel's fast dispatch recycles the object (fully re-
        #: initialised) instead of allocating per burst.
        self.act_spare: Optional[Activity] = None

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        return self.state is TaskState.DONE

    @property
    def at_op_boundary(self) -> bool:
        """True when the task sits between program ops (safe guest
        preemption point: no micro-steps pending, no locks held)."""
        return not self.micro and self.locks_held == 0

    def push_micro(self, *steps: MicroStep) -> None:
        """Queue micro-steps to run next (in the given order)."""
        if len(steps) == 1:  # the dominant case: a single compute step
            self.micro.appendleft(steps[0])
            return
        for step in reversed(steps):
            self.micro.appendleft(step)

    def next_micro(self) -> Optional[MicroStep]:
        return self.micro.popleft() if self.micro else None

    def require_state(self, *allowed: TaskState) -> None:
        if self.state not in allowed:
            raise GuestStateError(
                f"task {self.name} is {self.state}, expected one of "
                f"{[s.value for s in allowed]}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Task {self.name} {self.state.value}>"
