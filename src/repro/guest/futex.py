"""Futex-style wait queues.

Application synchronisation libraries (libgomp for OpenMP, the JVM for
SPECjbb's monitors) implement waits as *spin-then-block* on a futex: spin in
userspace for a bounded budget, then enter the kernel and sleep.  The
kernel side serialises enqueue/wake through a **hash-bucket spinlock** —
and that lock is precisely where application-level synchronisation turns
into kernel spinlock traffic under contention, the mechanism the paper
names in Section 2.2 ("synchronization APIs are implemented using atomic
instructions and futex system calls ... synchronization in parallel
applications may involve spinlocks or semaphores in kernel").

:class:`FutexQueue` is the bookkeeping part: the waiting list and the
generation counter whose bump signals waiters.  The guest kernel owns the
bucket :class:`~repro.guest.spinlock.SpinLock` and the execution sequencing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.errors import GuestStateError

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.task import Task


class FutexQueue:
    """One futex word's wait queue plus its generation counter."""

    __slots__ = ("name", "generation", "blocked", "spinning",
                 "wakes", "blocks", "spin_successes")

    def __init__(self, name: str) -> None:
        self.name = name
        #: Incremented by each wake-all; waiters compare against the value
        #: they sampled before waiting (prevents lost wakeups).
        self.generation = 0
        #: Tasks asleep in the kernel: (task, block_cycle).
        self.blocked: List[Tuple["Task", int]] = []
        #: Tasks in the userspace spin phase: task -> sampled generation.
        self.spinning: Dict["Task", int] = {}
        self.wakes = 0
        self.blocks = 0
        self.spin_successes = 0

    # ------------------------------------------------------------------ #
    def sample(self) -> int:
        """Read the generation (the futex word) before deciding to wait."""
        return self.generation

    def start_spin(self, task: "Task", expected: int) -> None:
        self.spinning[task] = expected

    def end_spin(self, task: "Task") -> None:
        self.spinning.pop(task, None)

    def spin_satisfied(self, task: "Task") -> bool:
        """Has the generation moved past what this spinner sampled?"""
        expected = self.spinning.get(task)
        if expected is None:
            raise GuestStateError(
                f"task {task.name} not spinning on futex {self.name}")
        return self.generation != expected

    def block(self, task: "Task", expected: int, now: int) -> bool:
        """Kernel-side wait: enqueue unless the generation already moved
        (the futex's compare-and-block).  Returns True if enqueued."""
        if self.generation != expected:
            return False
        self.blocked.append((task, now))
        self.blocks += 1
        return True

    def wake_all(self) -> List[Tuple["Task", int]]:
        """Bump the generation and drain the blocked list.  The caller (the
        kernel, holding the bucket lock) makes the tasks READY."""
        self.generation += 1
        self.wakes += 1
        woken, self.blocked = self.blocked, []
        return woken

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<FutexQueue {self.name} gen={self.generation} "
                f"blocked={len(self.blocked)} spinning={len(self.spinning)}>")
