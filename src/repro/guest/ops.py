"""The guest's "instruction set": operations a workload program may emit.

A workload thread is an iterator of :class:`Op` values (a *program*).  The
guest kernel expands each op into micro-steps (lock acquisitions, timed
compute, blocking) and executes them against the simulated VCPU.  This tiny
vocabulary is sufficient to express all of the paper's workloads:

* ``Compute``   — burn CPU (the bulk of every benchmark);
* ``Critical``  — a kernel-spinlock-protected critical section, the paper's
  focus (point-to-point synchronisation in LU maps to these);
* ``BarrierOp`` — an OpenMP-style barrier: futex bucket lock + counter +
  spin-then-block wait (BT/CG/FT/MG/SP's dominant primitive);
* ``SemDown`` / ``SemUp`` — blocking semaphore ops (the primitive the paper
  shows virtualization does *not* hurt).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.errors import WorkloadError


@dataclass(frozen=True, slots=True)
class Compute:
    """Burn ``cycles`` of CPU time."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise WorkloadError(f"negative compute {self.cycles}")


@dataclass(frozen=True, slots=True)
class Critical:
    """Acquire spinlock ``lock``, compute for ``hold`` cycles, release.

    The acquisition wait is measured by the guest's hrtimer and fed to the
    Monitoring Module — this is where over-threshold spinlocks appear.
    """

    lock: str
    hold: int

    def __post_init__(self) -> None:
        if self.hold < 0:
            raise WorkloadError(f"negative hold {self.hold}")
        if not self.lock:
            raise WorkloadError("Critical needs a lock name")


@dataclass(frozen=True, slots=True)
class BarrierOp:
    """Arrive at barrier ``barrier`` and wait for all parties."""

    barrier: str

    def __post_init__(self) -> None:
        if not self.barrier:
            raise WorkloadError("BarrierOp needs a barrier name")


@dataclass(frozen=True, slots=True)
class Sleep:
    """Block for ``cycles`` of wall-clock time (a kernel timer sleep).

    Used by daemon tasks (IRQ/housekeeping models) and by workloads with
    think time.  The VCPU is released while sleeping.
    """

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise WorkloadError(f"non-positive sleep {self.cycles}")


@dataclass(frozen=True, slots=True)
class FlagSet:
    """Raise shared flag ``flag`` to at least ``value`` (userspace store +
    flush; effectively free)."""

    flag: str
    value: int

    def __post_init__(self) -> None:
        if not self.flag:
            raise WorkloadError("FlagSet needs a flag name")


@dataclass(frozen=True, slots=True)
class FlagWait:
    """Busy-wait (userspace spin, burning CPU) until flag >= ``value``.

    Models NPB-LU's pipeline handoffs.  Never enters the kernel: the wait
    is invisible to the Monitoring Module and unpreemptable by the guest.
    """

    flag: str
    value: int

    def __post_init__(self) -> None:
        if not self.flag:
            raise WorkloadError("FlagWait needs a flag name")


@dataclass(frozen=True, slots=True)
class SemDown:
    """P() on semaphore ``sem``: blocks when the count is zero."""

    sem: str

    def __post_init__(self) -> None:
        if not self.sem:
            raise WorkloadError("SemDown needs a semaphore name")


@dataclass(frozen=True, slots=True)
class SemUp:
    """V() on semaphore ``sem``: wakes one blocked waiter if any."""

    sem: str

    def __post_init__(self) -> None:
        if not self.sem:
            raise WorkloadError("SemUp needs a semaphore name")


Op = Union[Compute, Critical, BarrierOp, SemDown, SemUp, FlagSet, FlagWait,
           Sleep]
Program = Iterator[Op]
