"""The guest SMP kernel: task dispatch, synchronisation, VMM interaction.

One :class:`GuestKernel` runs inside each VM.  It implements:

* **per-VCPU task scheduling** — tasks are pinned to a home VCPU
  (OpenMP-style affinity); when several tasks share a VCPU they rotate at
  op boundaries after a guest timeslice, and a VCPU with nothing runnable
  blocks to the VMM (which is why semaphore-heavy workloads behave well
  under virtualization, Section 2.2);
* **spinlock execution** — contended acquisitions put the task in a
  SPINNING state that *occupies the VCPU*, burning real scheduled time; on
  release the lock is granted to the oldest waiter that is online right
  now; waiters whose VCPU is offline keep accruing wall-clock wait and
  retry when they come back online (the lock-holder-preemption mechanics);
* **futex / barrier execution** — spin-then-block waits whose kernel side
  serialises through the futex bucket spinlock;
* **instrumentation** — every spinlock acquisition's wall-clock wait (as
  the guest hrtimer measures it) is recorded and handed to the Monitoring
  Module when one is installed (the paper's in-kernel probe).

Execution model
---------------
Each op from the workload program expands into *micro-steps* (callables).
A dispatch loop runs micro-steps until one of them starts a timed activity
(compute / futex spin), starts spinning on a lock, or blocks the task.
Timed activities are pausable across VCPU preemption.  All the waiting
logic lives here rather than in the primitive objects so that the
primitives stay simple, independently testable state machines.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from heapq import heappush
from typing import Callable, Deque, Dict, List, Optional

from repro.config import GuestConfig
from repro.errors import GuestStateError, WorkloadError
from repro.guest.barrier import Barrier
from repro.guest.flags import FlagVar
from repro.guest.futex import FutexQueue
from repro.guest.hrtimer import Hrtimer
from repro.guest.ops import (BarrierOp, Compute, Critical, FlagSet, FlagWait,
                             Op, Program, SemDown, SemUp, Sleep)
from repro.guest.semaphore import Semaphore
from repro.guest.spinlock import SpinLock
from repro.guest.task import (CONTINUE, WAIT, Activity, MicroStep, Task,
                              TaskState)
from repro.sim.engine import Event, Simulator
from repro.sim.fastforward import fastforward_enabled
from repro.sim.tracing import TraceBus
from repro.vmm.vm import VCPU, VM

#: Cap on the constant-hold micro-step cache: holds are config constants
#: (critical sections, futex buckets), so a workload drawing *varying*
#: holds must not grow the cache without bound.
_HOLD_CACHE_MAX = 64


class GuestKernel:
    """The guest operating system of one VM."""

    def __init__(self, vm: VM, sim: Simulator, trace: TraceBus,
                 config: Optional[GuestConfig] = None,
                 rng=None) -> None:
        self.vm = vm
        self.sim = sim
        self.trace = trace
        self.config = config or vm.config.guest
        self.hrtimer = Hrtimer(sim)
        self._rng = rng
        vm.guest = self

        self.tasks: List[Task] = []
        #: vcpu index -> task currently installed on that VCPU (or None).
        self.current: Dict[int, Optional[Task]] = {
            v.index: None for v in vm.vcpus}
        #: vcpu index -> READY tasks waiting for that VCPU.
        self.runqs: Dict[int, Deque[Task]] = {
            v.index: deque() for v in vm.vcpus}

        self.locks: Dict[str, SpinLock] = {}
        self.semaphores: Dict[str, Semaphore] = {}
        self.barriers: Dict[str, Barrier] = {}
        self.flags: Dict[str, FlagVar] = {}

        #: The ASMan Monitoring Module, when installed (see repro.asman).
        self.monitor = None
        #: Runtime invariant checker, when attached (repro.analysis);
        #: observes completed spinlock waits for LHP provenance.
        self.sanitizer = None
        self._done_callbacks: List[Callable[[], None]] = []
        self._spawn_rr = 0
        # Workload-completion counters: ``finished`` is polled once per
        # simulated event by run_until_true drivers, so it must not scan
        # the task list.
        self._workload_total = 0
        self._workload_done = 0
        self.guest_switches = 0
        self.finished_at: Optional[int] = None
        self.irq_count = 0
        # Quiescence fast-forward (sampled at construction): the inline
        # dispatch fast paths reproduce the step-wise expansion's state
        # shapes exactly (see docs/perf.md).  The caches below hold
        # config constants (frozen dataclasses) and per-lock micro-steps
        # so the hot loop does no repeated closure allocation.
        self._ff = fastforward_enabled()
        self._acq_wait = self.config.spinlock_acquire_cycles
        self._measure_floor = 1 << self.vm.config.monitor.measure_floor_exp
        self._hold_steps: Dict[int, MicroStep] = {}
        self._tail_steps: Dict[str, MicroStep] = {}
        self._decide_steps: Dict[str, MicroStep] = {}
        if self.config.irq_interval_cycles > 0:
            self._spawn_irq_daemon()

    # ------------------------------------------------------------------ #
    # Object registry
    # ------------------------------------------------------------------ #
    def lock(self, name: str) -> SpinLock:
        """Get-or-create a named kernel spinlock."""
        lk = self.locks.get(name)
        if lk is None:
            lk = SpinLock(name)
            self.locks[name] = lk
        return lk

    def flag(self, name: str) -> FlagVar:
        """Get-or-create a named userspace spin flag."""
        fl = self.flags.get(name)
        if fl is None:
            fl = FlagVar(name)
            self.flags[name] = fl
        return fl

    def semaphore(self, name: str, initial: int = 0) -> Semaphore:
        sem = self.semaphores.get(name)
        if sem is None:
            sem = Semaphore(name, initial)
            self.semaphores[name] = sem
        return sem

    def barrier(self, name: str, parties: int) -> Barrier:
        bar = self.barriers.get(name)
        if bar is None:
            bar = Barrier(name, parties)
            self.barriers[name] = bar
            # The bucket lock participates in the named-lock registry so
            # the metrics layer sees it like any other kernel spinlock.
            self.locks[bar.bucket.name] = bar.bucket
        elif bar.parties != parties:
            raise GuestStateError(
                f"barrier {name} exists with {bar.parties} parties")
        return bar

    def install_monitor(self, monitor) -> None:
        """Attach the ASMan Monitoring Module to this kernel."""
        self.monitor = monitor

    def on_all_done(self, callback: Callable[[], None]) -> None:
        """Register a callback fired when every task finishes."""
        self._done_callbacks.append(callback)

    # ------------------------------------------------------------------ #
    # Task lifecycle
    # ------------------------------------------------------------------ #
    def spawn(self, name: str, program: Program,
              vcpu_index: Optional[int] = None,
              daemon: bool = False) -> Task:
        """Create a task pinned to ``vcpu_index`` (round-robin default).

        Daemon tasks model kernel housekeeping: dispatched with priority,
        excluded from workload completion.
        """
        if vcpu_index is None:
            vcpu_index = self._spawn_rr % len(self.vm.vcpus)
            self._spawn_rr += 1
        if not 0 <= vcpu_index < len(self.vm.vcpus):
            raise WorkloadError(f"vcpu index {vcpu_index} out of range")
        task = Task(name, program, self.vm.vcpus[vcpu_index], daemon=daemon)
        task.runq = self.runqs[vcpu_index]
        self.tasks.append(task)
        if not daemon:
            self._workload_total += 1
        self._make_ready(task)
        return task

    def _spawn_irq_daemon(self) -> None:
        """VCPU0's interrupt-servicing load (see GuestConfig.irq_*)."""
        cfg = self.config
        lock_name = "kernel.irq"
        self.lock(lock_name)

        def program() -> Program:
            n = 0
            while True:
                n += 1
                jitter = 1.0 + 0.2 * ((n * 2654435761 % 1000) / 1000 - 0.5)
                yield Sleep(max(1, int(cfg.irq_interval_cycles * jitter)))
                self.irq_count += 1
                yield Compute(cfg.irq_work_cycles)
                if n % cfg.irq_lock_period == 0:
                    yield Critical(lock_name, cfg.irq_lock_hold_cycles)

        self.spawn("kernel.irqd", program(), vcpu_index=0, daemon=True)

    @property
    def finished(self) -> bool:
        return self._workload_total > 0 \
            and self._workload_done == self._workload_total

    def unfinished_tasks(self) -> List[Task]:
        return [t for t in self.tasks if not t.done and not t.daemon]

    # ------------------------------------------------------------------ #
    # VMM hooks (GuestClient protocol)
    # ------------------------------------------------------------------ #
    def on_online(self, vcpu: VCPU) -> None:
        """Our VCPU just got a PCPU: resume whatever it was doing."""
        task = self.current[vcpu.index]
        if task is None:
            task = self._pick_next(vcpu.index)
            if task is None:
                vcpu.block()
                return
            self._install(vcpu.index, task)
            self._dispatch(task)
            return
        if task.state is TaskState.SPINNING:
            if task.spin_flag is not None:
                flag, target, since = task.spin_flag
                if flag.satisfied(target):
                    self._flag_resume(task, flag, since)
                # else: keep burning CPU on the userspace spin.
            else:
                # A spinner that was offline past the threshold reports the
                # crossing as soon as its probe code runs again.
                if (self.monitor is not None and task.spin_since is not None
                        and self.sim.now - task.spin_since
                        > self.vm.config.monitor.over_threshold_cycles):
                    self.monitor.on_wait_in_progress(
                        task.spin_lock, self.sim.now - task.spin_since)
                self._try_spin_acquire(task)
            return
        if task.activity is not None:
            self._arm(task)
        else:
            self._dispatch(task)

    def on_offline(self, vcpu: VCPU) -> None:
        """Our VCPU lost its PCPU: pause the current task's timed work.
        A SPINNING task needs nothing — its wall-clock wait keeps running,
        which is exactly the virtualization pathology."""
        task = self.current[vcpu.index]
        if task is None:
            return
        if task.activity is not None:
            task.activity.pause(self.sim.now)

    # ------------------------------------------------------------------ #
    # Dispatch engine
    # ------------------------------------------------------------------ #
    def _dispatch(self, task: Task) -> None:
        """Run micro-steps until the task waits, blocks, or finishes.

        With fast-forward enabled the three hottest ops (Compute,
        Critical, BarrierOp entry) are executed inline instead of being
        expanded into micro-step closures first.  The inline paths are
        *state-shape identical* to the expansion: same counters bumped in
        the same order, same residual micro deque, same events armed at
        the same cycle with the same labels — which is why every
        fingerprint stays bit-identical (asserted by
        tests/test_fastforward.py against ``REPRO_NO_FASTFORWARD=1``).
        """
        if not self._ff:
            self._dispatch_slow(task)
            return
        sim = self.sim
        # micro / program / the home runq are bound once per Task and
        # never rebound (only mutated in place), so the Task-hoisted
        # aliases (mpop/pnext/runq) hold for its whole lifetime.
        micro = task.micro
        mpop = task.mpop
        pnext = task.pnext
        runq = task.runq
        while True:
            if micro:
                if mpop()(task) == WAIT:
                    return
                continue
            # Op boundary: safe preemption point for guest rotation
            # (cheap preconditions inlined: rotation needs a non-empty
            # runq and no held locks; _maybe_rotate re-checks the rest).
            if runq and not task.locks_held and self._maybe_rotate(task):
                return
            try:
                op = pnext()
            except StopIteration:
                self._task_done(task)
                return
            cls = op.__class__
            if cls is Compute:
                # Coalesced compute: one armed activity, no
                # _expand/_m_compute/_start_compute indirection.
                task.ops_completed += 1
                cycles = op.cycles
                if cycles <= 0:
                    continue
                cb = task.on_compute_done
                if cb is None:
                    cb = partial(self._activity_done, task)
                    task.on_compute_done = cb
                if cycles.__class__ is not int:
                    cycles = int(cycles)
                act = task.act_spare
                if act is None:
                    act = Activity(cycles, cb)
                else:
                    # Recycled: re-initialise every field Activity's
                    # constructor would set (on_complete included — the
                    # retired object may come from a slow-path burst
                    # with a custom completion callback).
                    task.act_spare = None
                    act.remaining = act.total = cycles
                    act.on_complete = cb
                task.activity = act
                act.started_at = now = sim._now
                # Scheduling inlined from Simulator.at: cycles is a
                # positive int, so time = now + cycles is an int in the
                # future and at()'s validation is provably redundant;
                # every side effect (seq, heap entry, live/peak counts)
                # is replicated exactly.
                sim._seq = seq = sim._seq + 1
                ev = Event.__new__(Event)
                ev.time = time = now + cycles
                ev.seq = seq
                ev.callback = cb
                ev.label = task.compute_label
                ev.cancelled = False
                ev.fired = False
                ev._sim = sim
                q = sim._queue
                heappush(q, (time, seq, ev))
                sim._live += 1
                depth = len(q) + len(sim._timers)
                if depth > sim.peak_heap_entries:
                    sim.peak_heap_entries = depth
                act.event = ev
                return
            if cls is Critical:
                task.ops_completed += 1
                lock = self.lock(op.lock)
                if self._fast_lock_hold(task, lock, op.hold,
                                        self._release_step(lock)):
                    continue
                return
            if cls is BarrierOp:
                bar = self.barriers.get(op.barrier)
                if bar is None:
                    raise WorkloadError(
                        f"barrier {op.barrier} was never declared")
                task.ops_completed += 1
                if self._fast_lock_hold(
                        task, bar.bucket,
                        self.config.futex_bucket_hold_cycles,
                        self._decide_step(bar)):
                    continue
                return
            self._expand(task, op)
            task.ops_completed += 1

    def _dispatch_slow(self, task: Task) -> None:
        """The original step-wise dispatch loop (``REPRO_NO_FASTFORWARD``)."""
        while True:
            step = task.next_micro()
            if step is None:
                # Op boundary: safe preemption point for guest rotation.
                if self._maybe_rotate(task):
                    return
                op = next(task.program, None)
                if op is None:
                    self._task_done(task)
                    return
                self._expand(task, op)
                task.ops_completed += 1
                continue
            if step(task) == WAIT:
                return

    def _fast_lock_hold(self, task: Task, lock: SpinLock, hold: int,
                        tail: MicroStep) -> bool:
        """Inline acquire → hold → ``tail`` (the fast-forward expansion of
        Critical and the BarrierOp bucket entry).

        Returns True when the dispatch loop should continue immediately
        (uncontended, zero-length hold), False when the task now waits.
        Equivalence with the step-wise path, case by case:

        * uncontended, hold > 0 — lock fields set as ``try_acquire``
          does, wait recorded through the same ``_record_wait``, then the
          hold is armed exactly as ``_start_compute``/``_arm`` would
          with the micro deque left as ``[tail]``;
        * uncontended, hold <= 0 — ``_start_compute`` returns CONTINUE,
          so only ``tail`` is queued and dispatch proceeds;
        * contended — identical bookkeeping to ``_spin_acquire``'s miss
          branch, with the deque left as ``[hold, tail]`` so the later
          ``_grant`` replays the same steps.
        """
        now = self.hrtimer.read()
        if lock.holder is None:
            lock.holder = task
            lock.held_since = now
            task.locks_held += 1
            self._record_wait(lock, self._acq_wait)
            if hold <= 0:
                task.micro.appendleft(tail)
                return True
            cb = task.on_compute_done
            if cb is None:
                cb = partial(self._activity_done, task)
                task.on_compute_done = cb
            if hold.__class__ is not int:
                hold = int(hold)
            act = task.act_spare
            if act is None:
                act = Activity(hold, cb)
            else:
                task.act_spare = None
                act.remaining = act.total = hold
                act.on_complete = cb
            task.activity = act
            task.micro.appendleft(tail)
            sim = self.sim
            act.started_at = snow = sim._now
            # Scheduling inlined from Simulator.at, exactly as in the
            # _dispatch Compute branch (hold is a positive int here).
            sim._seq = seq = sim._seq + 1
            ev = Event.__new__(Event)
            ev.time = time = snow + hold
            ev.seq = seq
            ev.callback = cb
            ev.label = task.compute_label
            ev.cancelled = False
            ev.fired = False
            ev._sim = sim
            q = sim._queue
            heappush(q, (time, seq, ev))
            sim._live += 1
            depth = len(q) + len(sim._timers)
            if depth > sim.peak_heap_entries:
                sim.peak_heap_entries = depth
            act.event = ev
            return False
        lock.record_contended()
        lock.enqueue_waiter(task, now)
        task.state = TaskState.SPINNING
        task.spin_lock = lock
        task.spin_since = now
        task.micro.appendleft(tail)
        task.micro.appendleft(self._hold_step(hold))
        self._arm_over_threshold_check(task, lock, now)
        return False

    def _release_step(self, lock: SpinLock) -> MicroStep:
        step = self._tail_steps.get(lock.name)
        if step is None:
            step = self._m_spin_release(lock)
            self._tail_steps[lock.name] = step
        return step

    def _decide_step(self, bar: Barrier) -> MicroStep:
        step = self._decide_steps.get(bar.name)
        if step is None:
            step = self._m_barrier_decide(bar)
            self._decide_steps[bar.name] = step
        return step

    def _hold_step(self, cycles: int) -> MicroStep:
        step = self._hold_steps.get(cycles)
        if step is None:
            step = self._m_compute(cycles)
            if len(self._hold_steps) < _HOLD_CACHE_MAX:
                self._hold_steps[cycles] = step
        return step

    def _expand(self, task: Task, op: Op) -> None:
        if isinstance(op, Compute):
            task.push_micro(self._m_compute(op.cycles))
        elif isinstance(op, Critical):
            lock = self.lock(op.lock)
            task.push_micro(self._m_spin_acquire(lock),
                            self._m_compute(op.hold),
                            self._m_spin_release(lock))
        elif isinstance(op, BarrierOp):
            bar = self.barriers.get(op.barrier)
            if bar is None:
                raise WorkloadError(
                    f"barrier {op.barrier} was never declared")
            task.push_micro(self._m_spin_acquire(bar.bucket),
                            self._m_compute(self.config.futex_bucket_hold_cycles),
                            self._m_barrier_decide(bar))
        elif isinstance(op, Sleep):
            task.push_micro(self._m_timed_sleep(op.cycles))
        elif isinstance(op, FlagSet):
            task.push_micro(self._m_flag_set(self.flag(op.flag), op.value))
        elif isinstance(op, FlagWait):
            task.push_micro(self._m_flag_wait(self.flag(op.flag), op.value))
        elif isinstance(op, SemDown):
            sem = self.semaphore(op.sem)
            task.push_micro(self._m_sem_down(sem))
        elif isinstance(op, SemUp):
            sem = self.semaphore(op.sem)
            task.push_micro(self._m_sem_up(sem))
        else:
            raise WorkloadError(f"unknown op {op!r}")

    # -- timed compute --------------------------------------------------- #
    def _m_compute(self, cycles: int):
        def step(task: Task) -> str:
            return self._start_compute(task, cycles)
        return step

    def _start_compute(self, task: Task, cycles: int,
                       on_complete: Optional[Callable[[], None]] = None) -> str:
        if cycles <= 0:
            return CONTINUE
        cb = on_complete
        if cb is None:
            cb = task.on_compute_done
            if cb is None:
                def cb() -> None:
                    self._activity_done(task)
                task.on_compute_done = cb
        act = Activity(cycles, cb)
        task.activity = act
        self._arm(task)
        return WAIT

    def _arm(self, task: Task) -> None:
        act = task.activity
        if act is None or act.armed:
            return
        act.started_at = self.sim.now
        act.event = self.sim.at(self.sim.now + act.remaining,
                                act.on_complete,
                                label=task.compute_label)

    def _activity_done(self, task: Task) -> None:
        act = task.activity
        if act is None:
            return
        task.activity = None
        task.ran_since_dispatch += act.total
        task.compute_cycles_done += act.total
        # Retire the object for the fast paths to recycle: a task runs at
        # most one activity at a time and nothing keeps a reference past
        # this point (the fired Event references the callback, not act).
        task.act_spare = act
        self._dispatch(task)

    # -- spinlocks --------------------------------------------------------#
    def _m_spin_acquire(self, lock: SpinLock):
        def step(task: Task) -> str:
            return self._spin_acquire(task, lock)
        return step

    def _m_spin_release(self, lock: SpinLock):
        grant_next = self._grant_next

        def step(task: Task) -> str:
            # _spin_release's body, inlined: this closure is the tail of
            # every Critical/Barrier hold, hot enough that the extra
            # delegation frame was measurable.
            lock.release(task)
            task.locks_held -= 1
            grant_next(lock)
            return CONTINUE
        return step

    def _spin_acquire(self, task: Task, lock: SpinLock) -> str:
        now = self.hrtimer.read()
        if lock.try_acquire(task, now):
            task.locks_held += 1
            self._record_wait(lock, self.config.spinlock_acquire_cycles)
            return CONTINUE
        lock.record_contended()
        lock.enqueue_waiter(task, now)
        task.state = TaskState.SPINNING
        task.spin_lock = lock
        task.spin_since = now
        self._arm_over_threshold_check(task, lock, now)
        return WAIT

    def _arm_over_threshold_check(self, task: Task, lock: SpinLock,
                                  since: int) -> None:
        """The Monitoring Module's probe sits *inside* the spin loop: it
        notices the wait crossing 2^delta while still spinning, not at
        acquisition.  Model: an event at the crossing point that fires the
        monitor if the task is still spinning and online (an offline
        spinner reports on its next online resume instead — the probe
        code cannot run while the VCPU is descheduled)."""
        if self.monitor is None:
            return
        threshold = self.vm.config.monitor.over_threshold_cycles

        def check() -> None:
            if (task.state is TaskState.SPINNING and task.spin_lock is lock
                    and task.spin_since == since and task.vcpu.is_online):
                self.monitor.on_wait_in_progress(lock,
                                                 self.sim.now - since)

        self.sim.at(since + threshold + 1, check,
                    label=f"ot-check:{task.name}")

    def _grant_next(self, lock: SpinLock) -> None:
        """Hand a freed lock to the oldest waiter that is spinning on an
        online VCPU right now.  Offline spinners stay queued (they race
        again when their VCPU resumes — the real lock's unfairness)."""
        if not lock.waiters:
            return
        # Iterating the live list is safe: the first grant removes its
        # entry and returns immediately, so no mutation-while-iterating.
        for waiter, since in lock.waiters:
            vcpu = waiter.vcpu
            if (waiter.state is TaskState.SPINNING and vcpu.is_online
                    and self.current[vcpu.index] is waiter):
                lock.remove_waiter(waiter)
                self._grant(waiter, lock, since)
                return

    def _try_spin_acquire(self, task: Task) -> None:
        """An online-again VCPU finds its task spinning: grab the lock if
        it has become free meanwhile, else keep spinning."""
        lock = task.spin_lock
        if lock is None:
            raise GuestStateError(f"{task.name} SPINNING with no lock")
        if lock.holder is None:
            since = lock.remove_waiter(task)
            self._grant(task, lock, since)
        # else: remain SPINNING; the VCPU burns cycles until release.

    def _grant(self, task: Task, lock: SpinLock, since: int) -> None:
        now = self.hrtimer.read()
        if not lock.try_acquire(task, now):
            raise GuestStateError(f"granting held lock {lock.name}")
        task.state = TaskState.RUNNING
        task.spin_lock = None
        task.spin_since = None
        task.locks_held += 1
        self._record_wait(lock, now - since)
        self._dispatch(task)

    def _record_wait(self, lock: SpinLock, wait: int) -> None:
        lock.record_acquisition(wait)
        if wait >= self._measure_floor:
            self.trace.emit(self.sim.now, "spinlock.wait",
                            vm=self.vm.name, lock=lock.name, wait=wait)
        if self.monitor is not None:
            self.monitor.on_spinlock_wait(lock, wait)
        if self.sanitizer is not None:
            self.sanitizer.note_spin_wait(self.vm, lock, wait)

    # -- timed sleep ------------------------------------------------------#
    def _m_timed_sleep(self, cycles: int):
        def step(task: Task) -> str:
            self.sim.after(cycles, partial(self._make_ready, task),
                           label=f"sleep:{task.name}")
            self._block_current(task)
            return WAIT
        return step

    # -- userspace spin flags -------------------------------------------- #
    def _m_flag_set(self, flag: FlagVar, value: int):
        def step(task: Task) -> str:
            for wtask, target, since in flag.advance(value):
                # Resume satisfied waiters that are executing right now;
                # offline ones resume from on_online.
                if wtask.vcpu.is_online and \
                        self.current[wtask.vcpu.index] is wtask:
                    self._flag_resume(wtask, flag, since)
                else:
                    # Satisfied but descheduled: convert to a resumable
                    # state so on_online continues the program.
                    wtask.spin_flag = None
                    wtask.state = TaskState.RUNNING
                    flag.record_wait(self.sim.now - since)
            return CONTINUE
        return step

    def _m_flag_wait(self, flag: FlagVar, value: int):
        def step(task: Task) -> str:
            if flag.satisfied(value):
                return CONTINUE
            flag.add_waiter(task, value, self.sim.now)
            task.state = TaskState.SPINNING
            task.spin_flag = (flag, value, self.sim.now)
            return WAIT
        return step

    def _flag_resume(self, task: Task, flag: FlagVar, since: int) -> None:
        """An online flag-spinner observed its flag: continue the program."""
        flag.record_wait(self.sim.now - since)
        task.spin_flag = None
        task.state = TaskState.RUNNING
        self._dispatch(task)

    # -- semaphores ------------------------------------------------------ #
    def _m_sem_down(self, sem: Semaphore):
        def step(task: Task) -> str:
            if sem.try_down(task):
                return CONTINUE
            sem.enqueue_waiter(task, self.sim.now)
            self._block_current(task)
            return WAIT
        return step

    def _m_sem_up(self, sem: Semaphore):
        def step(task: Task) -> str:
            woken = sem.up(self.sim.now)
            if woken is not None:
                wtask, wait = woken
                self.trace.emit(self.sim.now, "sem.wait",
                                vm=self.vm.name, sem=sem.name, wait=wait)
                self._make_ready(wtask)
            return CONTINUE
        return step

    # -- barriers / futexes ----------------------------------------------#
    def _m_barrier_decide(self, bar: Barrier):
        def step(task: Task) -> str:
            # Runs while holding the bucket lock.
            if bar.arrive():
                woken = bar.reset_and_wake()
                # Userspace spinners see the generation bump immediately.
                for spinner in list(bar.futex.spinning):
                    self._spin_phase_satisfied(spinner, bar.futex)
                wake_cost = self.config.futex_bucket_hold_cycles * max(1, len(woken))
                for wtask, since in woken:
                    self._make_ready(wtask)
                task.push_micro(self._m_compute(wake_cost),
                                self._m_spin_release(bar.bucket))
            else:
                my_gen = bar.futex.sample()
                task.push_micro(self._m_spin_release(bar.bucket),
                                self._m_futex_spin(bar, my_gen))
            return CONTINUE
        return step

    def _m_futex_spin(self, bar: Barrier, my_gen: int):
        def step(task: Task) -> str:
            futex = bar.futex
            if futex.generation != my_gen:
                return CONTINUE  # released before we even started waiting
            futex.start_spin(task, my_gen)
            budget = self.config.futex_spin_cycles
            if budget <= 0:
                return self._futex_slow_path(task, bar, my_gen)
            act = Activity(
                budget,
                lambda: self._spin_budget_exhausted(task, bar, my_gen))
            task.activity = act
            self._arm(task)
            return WAIT
        return step

    def _spin_phase_satisfied(self, task: Task, futex: FutexQueue) -> None:
        """The generation moved while ``task`` was in its userspace spin
        phase: stop the spin and continue its program."""
        futex.end_spin(task)
        futex.spin_successes += 1
        act = task.activity
        if act is not None:
            act.pause(self.sim.now)
            task.activity = None
        vcpu = task.vcpu
        if vcpu.is_online and self.current[vcpu.index] is task:
            self._dispatch(task)
        # else: on_online will dispatch (activity is None, not SPINNING).

    def _spin_budget_exhausted(self, task: Task, bar: Barrier,
                               my_gen: int) -> None:
        bar.futex.end_spin(task)
        budget = task.activity.total if task.activity else 0
        task.activity = None
        task.ran_since_dispatch += budget
        status = self._futex_slow_path(task, bar, my_gen)
        if status == CONTINUE:
            self._dispatch(task)

    def _futex_slow_path(self, task: Task, bar: Barrier, my_gen: int) -> str:
        """Enter the kernel: bucket lock, compare-and-block, release."""
        task.push_micro(
            self._m_spin_acquire(bar.bucket),
            self._m_compute(self.config.futex_bucket_hold_cycles),
            self._m_futex_block(bar, my_gen))
        return CONTINUE

    def _m_futex_block(self, bar: Barrier, my_gen: int):
        def step(task: Task) -> str:
            # Holding the bucket lock: the compare-and-block.
            enqueued = bar.futex.block(task, my_gen, self.sim.now)
            if enqueued:
                task.push_micro(self._m_spin_release(bar.bucket),
                                self._m_sleep())
            else:
                task.push_micro(self._m_spin_release(bar.bucket))
            return CONTINUE
        return step

    def _m_sleep(self):
        def step(task: Task) -> str:
            self._block_current(task)
            return WAIT
        return step

    # ------------------------------------------------------------------ #
    # Guest-level scheduling
    # ------------------------------------------------------------------ #
    def _install(self, vcpu_index: int, task: Task) -> None:
        task.require_state(TaskState.READY)
        self.current[vcpu_index] = task
        task.state = TaskState.RUNNING
        task.ran_since_dispatch = 0

    def _pick_next(self, vcpu_index: int) -> Optional[Task]:
        runq = self.runqs[vcpu_index]
        return runq.popleft() if runq else None

    def _block_current(self, task: Task) -> None:
        """The current task blocked (sem/futex): switch or idle the VCPU."""
        task.state = TaskState.BLOCKED
        self._vacate_and_switch(task.vcpu)

    def _task_done(self, task: Task) -> None:
        task.state = TaskState.DONE
        task.finished_at = self.sim.now
        if not task.daemon:
            self._workload_done += 1
        self.trace.emit(self.sim.now, "task.done",
                        vm=self.vm.name, task=task.name)
        if self.finished:
            self.finished_at = self.sim.now
            self.trace.emit(self.sim.now, "workload.done", vm=self.vm.name)
            for cb in self._done_callbacks:
                cb()
        self._vacate_and_switch(task.vcpu)

    def _vacate_and_switch(self, vcpu: VCPU) -> None:
        idx = vcpu.index
        self.current[idx] = None
        nxt = self._pick_next(idx)
        if nxt is None:
            vcpu.block()
            return
        self.guest_switches += 1
        self._install(idx, nxt)
        self._dispatch(nxt)

    def _make_ready(self, task: Task) -> None:
        """A task became runnable (spawned, sem-up'd, futex-woken)."""
        task.state = TaskState.READY
        vcpu = task.vcpu
        idx = vcpu.index
        if self.current[idx] is None:
            self._install(idx, task)
            if vcpu.is_online:
                # Transient: the VCPU is on a PCPU between tasks.
                self._dispatch(task)
            else:
                # wake() may cause the VMM to place the VCPU *immediately*
                # (idle PCPU), in which case on_online has already run the
                # dispatch — so no dispatch here, or micro-steps would be
                # consumed twice.
                vcpu.wake()
        elif task.daemon:
            # Interrupt semantics: kernel work goes to the queue front and
            # preempts the current task at its next op boundary.
            self.runqs[idx].appendleft(task)
        else:
            self.runqs[idx].append(task)

    def _maybe_rotate(self, task: Task) -> bool:
        """Guest timeslice rotation at op boundaries (only relevant when
        several tasks share a VCPU, e.g. SPECjbb warehouses)."""
        if task.locks_held:
            return False
        idx = task.vcpu.index
        runq = self.runqs[idx]
        if not runq:
            return False
        if (not runq[0].daemon
                and task.ran_since_dispatch < self.config.timeslice_cycles):
            return False
        task.state = TaskState.READY
        task.ran_since_dispatch = 0
        runq.append(task)
        nxt = runq.popleft()
        self.guest_switches += 1
        self.current[idx] = None
        self._install(idx, nxt)
        self._dispatch(nxt)
        return True
