"""Kernel spinlocks with wait-time instrumentation.

This models the Linux 2.6.18-era spinlock (a plain test-and-set race, *not*
a ticket lock): on release, the lock is handed to the **oldest waiter that
is actively spinning right now**, i.e. whose task currently occupies an
online VCPU.  Waiters whose VCPU has been descheduled keep "spinning" in
wall-clock terms — their wait continues to accrue — and only get a chance
to grab the lock when their VCPU comes back online and finds it free.

Two pathologies emerge exactly as in the paper:

* **Lock-holder preemption** — the holder's VCPU is descheduled mid
  critical section; every online waiter burns its whole slice spinning, and
  the measured wait reaches 2^24–2^30 cycles.
* **Preempted-waiter starvation** — a waiter that was offline when the lock
  was released loses the race to newer online arrivals (the real lock's
  unfairness), stretching its wait further.

Every acquisition's wait time (as the guest's hrtimer would measure it) is
reported to the kernel's instrumentation hook — this is the paper's
"insert code into the spinlock code in the kernel" (Section 3.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.errors import GuestStateError

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.task import Task


class SpinLock:
    """A named guest-kernel spinlock."""

    __slots__ = ("name", "holder", "waiters", "acquisitions",
                 "contended_acquisitions", "max_wait", "total_wait",
                 "wait_hist", "held_since")

    def __init__(self, name: str) -> None:
        self.name = name
        self.holder: Optional["Task"] = None
        #: FIFO of (task, request_cycle); tasks stay here while spinning,
        #: online or not.
        self.waiters: List[Tuple["Task", int]] = []
        self.acquisitions = 0
        self.contended_acquisitions = 0
        self.max_wait = 0
        self.total_wait = 0
        #: log2 wait histogram: ``wait_hist[wait.bit_length()] += 1`` per
        #: acquisition (bucket 0 = zero wait, bucket k = [2^(k-1), 2^k)).
        #: Lives here — the single accounting point — so the fast-forward
        #: paths, which account a whole skipped spin interval in one
        #: arithmetic step, produce bit-identical histograms to per-
        #: quantum stepping (the paper's Figure 2/3-style distributions).
        self.wait_hist: List[int] = [0] * 67
        self.held_since: Optional[int] = None

    # ------------------------------------------------------------------ #
    @property
    def is_held(self) -> bool:
        return self.holder is not None

    def try_acquire(self, task: "Task", now: int) -> bool:
        """Attempt an immediate acquisition (the fast path, or an online
        spinner noticing a free lock).  Returns True on success."""
        if self.holder is not None:
            return False
        self.holder = task
        self.held_since = now
        return True

    def enqueue_waiter(self, task: "Task", now: int) -> None:
        """Register ``task`` as a spinner; its wait clock starts now."""
        self.waiters.append((task, now))

    def remove_waiter(self, task: "Task") -> int:
        """Remove ``task`` from the waiter list, returning its request
        cycle.  Raises if it was not waiting."""
        for i, (t, since) in enumerate(self.waiters):
            if t is task:
                del self.waiters[i]
                return since
        raise GuestStateError(
            f"task {task.name} not waiting on spinlock {self.name}")

    def release(self, task: "Task") -> None:
        """Drop the lock.  The *kernel* decides who acquires next (it knows
        which waiters are online); the lock just validates ownership."""
        if self.holder is not task:
            holder = self.holder.name if self.holder else None
            raise GuestStateError(
                f"task {task.name} releasing spinlock {self.name} "
                f"held by {holder}")
        self.holder = None
        self.held_since = None

    def record_acquisition(self, wait: int) -> None:
        """Bookkeeping for one completed acquisition with ``wait`` cycles."""
        self.acquisitions += 1
        self.total_wait += wait
        self.wait_hist[wait.bit_length()] += 1
        if wait > self.max_wait:
            self.max_wait = wait

    def wait_hist_nonzero(self) -> dict:
        """``{log2 bucket: count}`` for the populated histogram buckets."""
        return {i: c for i, c in enumerate(self.wait_hist) if c}

    def record_contended(self) -> None:
        self.contended_acquisitions += 1

    def mean_wait(self) -> float:
        return self.total_wait / self.acquisitions if self.acquisitions else 0.0

    def __repr__(self) -> str:  # pragma: no cover
        holder = self.holder.name if self.holder else "-"
        return (f"<SpinLock {self.name} holder={holder} "
                f"waiters={len(self.waiters)}>")
