"""repro.parallel — the parallel experiment fabric.

Fans independent scenario cells out over a spawn-safe process pool and
merges results deterministically, with a content-addressed on-disk result
cache underneath.  Three ways in:

* **Library**: build :class:`CellSpec` batches and call :func:`run_cells`
  (the figure drivers and ``Sweep`` do this internally)::

      from repro.parallel import WorkloadSpec, run_cells, single_vm_cell

      cells = [single_vm_cell(WorkloadSpec("nas", "LU", scale=0.2),
                              online_rate=r, seed=s)
               for r in (1.0, 0.4) for s in (1, 2)]
      results = run_cells(cells, jobs=8)

* **CLI**: every simulation-running ``repro`` subcommand takes
  ``--jobs N|auto`` and ``--no-cache`` (see :mod:`repro.cli`); the
  ``REPRO_JOBS`` environment variable sets a default.

* **pytest plugin**: ``pytest benchmarks/ -p repro.parallel --jobs auto``
  loads this module as a plugin, adding ``--jobs`` / ``--no-cache`` /
  ``--repro-cache-dir`` options that configure the fabric for the whole
  session and write cache statistics at session end.

Determinism is the design constraint throughout: a serial run and an
8-way run of the same batch produce bit-identical figure series and
fingerprints (see :mod:`repro.parallel.executor` and docs/parallel.md).
"""

from __future__ import annotations

from repro.parallel.cache import (DEFAULT_CACHE_DIR, CacheIntegrityWarning,
                                  ResultCache, default_salt)
from repro.parallel.cells import (CellSpec, WorkloadSpec, canonical_value,
                                  execute_cell, multi_vm_cell,
                                  result_fingerprint, single_vm_cell,
                                  specjbb_cell)
from repro.parallel.chaos import ChaosSpec
from repro.parallel.executor import (CellOutcome, CellResults,
                                     get_default_cache, get_default_jobs,
                                     pool_map, resolve_jobs, run_cells,
                                     set_default_cache, set_default_jobs)
from repro.parallel.supervisor import (BatchJournal, CellFailure,
                                       SupervisorDegradedWarning,
                                       SupervisorPolicy, SupervisorReport,
                                       get_default_chaos,
                                       get_default_policy,
                                       get_default_resume, get_last_report,
                                       run_supervised, set_default_chaos,
                                       set_default_policy,
                                       set_default_resume)

__all__ = [
    "BatchJournal",
    "CacheIntegrityWarning",
    "CellFailure",
    "CellOutcome",
    "CellResults",
    "CellSpec",
    "ChaosSpec",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "SupervisorDegradedWarning",
    "SupervisorPolicy",
    "SupervisorReport",
    "WorkloadSpec",
    "canonical_value",
    "default_salt",
    "execute_cell",
    "get_default_cache",
    "get_default_chaos",
    "get_default_jobs",
    "get_default_policy",
    "get_default_resume",
    "get_last_report",
    "multi_vm_cell",
    "pool_map",
    "resolve_jobs",
    "result_fingerprint",
    "run_cells",
    "run_supervised",
    "set_default_cache",
    "set_default_chaos",
    "set_default_jobs",
    "set_default_policy",
    "set_default_resume",
    "single_vm_cell",
    "specjbb_cell",
]


# --------------------------------------------------------------------- #
# pytest plugin surface (`pytest -p repro.parallel ...`)
#
# Hook functions only — pytest is never imported here, so loading this
# package as a library costs nothing extra.
# --------------------------------------------------------------------- #
def pytest_addoption(parser) -> None:
    """pytest hook: register the fabric's ``--jobs``/cache options."""
    group = parser.getgroup(
        "repro-parallel", "repro parallel experiment fabric")
    group.addoption(
        "--jobs", action="store", default=None, metavar="N|auto",
        help="fan simulation cells out over N worker processes "
             "(auto = one per CPU)")
    group.addoption(
        "--no-cache", action="store_true", dest="repro_no_cache",
        help="disable the content-addressed result cache")
    group.addoption(
        "--repro-cache-dir", action="store", default=None, metavar="DIR",
        help=f"result cache directory (default {DEFAULT_CACHE_DIR!r} "
             f"or $REPRO_CACHE_DIR)")


def pytest_configure(config) -> None:
    """pytest hook: install fabric defaults from the session options."""
    jobs = config.getoption("--jobs", default=None)
    if jobs is not None:
        set_default_jobs(jobs)
    if config.getoption("repro_no_cache", default=False):
        set_default_cache(None)
    elif get_default_cache() is None:
        cache_dir = config.getoption("--repro-cache-dir", default=None)
        set_default_cache(ResultCache(cache_dir))


def pytest_unconfigure(config) -> None:
    """pytest hook: persist cache stats and reset the fabric defaults."""
    cache = get_default_cache()
    if cache is not None:
        cache.write_stats(cache.root / "stats.json")
    set_default_cache(None)
    set_default_jobs(None)
