"""Supervised execution: crash-recovery, retry, timeouts, journaled resume.

:func:`run_supervised` wraps the plain fan-out of
:func:`repro.parallel.executor.run_cells` in a supervision loop that makes
a multi-cell batch *survivable* without perturbing its results:

* **Timeouts** — a per-cell wall-clock budget (``cell_timeout_s``) and a
  whole-batch deadline (``batch_deadline_s``).  A cell that overruns is
  recorded as a structured :class:`CellFailure` outcome, never an
  exception that loses the batch.  (Per-cell timeouts are enforceable
  only in pool mode — a serial in-process cell cannot be interrupted.)
* **Crash recovery** — a dead worker (OOM kill, segfault, injected
  ``os._exit``) breaks the :class:`~concurrent.futures.ProcessPoolExecutor`;
  the supervisor rebuilds the pool and re-dispatches only the cells whose
  results were lost.  Pool-break re-dispatches are governed by the
  *pool-level* ``max_pool_rebuilds`` budget, not the per-cell retry
  budget: a worker death does not identify a guilty cell, so innocent
  in-flight cells are never charged for it.
* **Deterministic retry** — error and timeout retries are bounded by
  ``max_retries`` per cell, with backoff delays derived from the cell key
  through the :mod:`repro.sim.rng` named-stream discipline
  (``supervisor/backoff/<cell>/<attempt>``) — no wall-clock randomness,
  so ``simlint --interprocedural`` stays clean.
* **Journaled resume** — every completed cell is appended (atomically,
  ``fsync`` per line) to ``<cache>/journal/<batch-key>.jsonl``; an
  interrupted sweep re-run with ``resume=True`` re-executes only the
  cells that never completed.  Torn trailing lines (the writer died
  mid-append) are skipped on replay.
* **Graceful degradation** — once the rebuild budget is exhausted the
  supervisor falls back to in-process serial execution with a loud
  :class:`SupervisorDegradedWarning`, so a batch always runs to
  completion and reports structured failures instead of dying.

The determinism contract of the fabric is unchanged: supervision decides
*when and where* a cell runs, never *what it computes* — a supervised run
under injected kills/stalls/corruption merges results bit-identical to a
clean serial run (the ``repro chaos`` gate).
"""

from __future__ import annotations

import contextlib
import hashlib
import heapq
import json
import os
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Deque, Dict, Iterable, List, Optional,
                    Tuple, Union)

from repro.errors import ConfigurationError
from repro.parallel import chaos as chaos_mod
from repro.parallel.cache import ResultCache
from repro.parallel.cells import CellSpec, execute_cell, result_fingerprint
from repro.parallel.chaos import ChaosKill, ChaosSpec
from repro.parallel.executor import (CellOutcome, CellResults,
                                     get_default_cache, resolve_jobs)
from repro.sim.rng import RngStreams

__all__ = [
    "BatchJournal",
    "CellFailure",
    "SupervisorDegradedWarning",
    "SupervisorPolicy",
    "SupervisorReport",
    "backoff_ms",
    "batch_key",
    "get_default_chaos",
    "get_default_policy",
    "get_default_resume",
    "get_last_report",
    "run_supervised",
    "set_default_chaos",
    "set_default_policy",
    "set_default_resume",
]

#: Subdirectory (under the cache root) holding batch journals.
JOURNAL_DIR = "journal"

#: Patchable sleep so tests can fast-forward backoff waits.
_sleep = time.sleep


class SupervisorDegradedWarning(UserWarning):
    """The pool-rebuild budget ran out; the batch fell back to serial."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Supervision parameters for one batch (all deterministic inputs).

    The default policy supervises *lightly*: no timeouts, two retries,
    three pool rebuilds.  ``None`` timeouts mean unlimited — explicitly
    setting a timeout of zero (or negative) is rejected rather than
    silently meaning "fail everything instantly".
    """

    #: Wall-clock budget for one cell attempt (pool mode only).
    cell_timeout_s: Optional[float] = None
    #: Wall-clock budget for the whole batch; cells that cannot start or
    #: finish inside it become structured timeout failures.
    batch_deadline_s: Optional[float] = None
    #: Failed attempts (errors, timeouts) allowed per cell *beyond* the
    #: first: a cell runs at most ``max_retries + 1`` times.
    max_retries: int = 2
    #: Pool reconstructions after worker deaths before degrading to
    #: in-process serial execution.
    max_pool_rebuilds: int = 3
    #: Retry backoff: base delay, doubled per failed attempt, jittered
    #: by a deterministic per-cell draw, capped.
    backoff_base_ms: float = 25.0
    backoff_cap_ms: float = 1000.0
    #: Seed of the ``supervisor/...`` stream family (backoff jitter).
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("cell_timeout_s", "batch_deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{name} must be > 0 when set, got {value!r} "
                    f"(use None for unlimited)")
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_pool_rebuilds < 0:
            raise ConfigurationError(
                f"max_pool_rebuilds must be >= 0, "
                f"got {self.max_pool_rebuilds}")
        if self.backoff_base_ms < 0 or self.backoff_cap_ms < 0:
            raise ConfigurationError("backoff delays must be >= 0")


@dataclass(frozen=True)
class CellFailure:
    """A cell that could not produce a result within its budgets.

    Stored as the outcome *value* of the failed cell, so a batch with
    failures still merges, fingerprints, and renders — callers that
    need all cells to succeed call
    :meth:`~repro.parallel.executor.CellResults.raise_if_failed`.
    """

    key: str
    #: ``timeout`` (cell or batch deadline), ``crash`` (worker death /
    #: injected kill), or ``error`` (the cell raised).
    kind: str
    attempts: int
    detail: str


@dataclass
class SupervisorReport:
    """What supervision did to one batch (the CLI's stderr summary)."""

    total: int = 0
    cached: int = 0
    resumed: int = 0
    executed: int = 0
    retried: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded: bool = False
    corrupt_injected: int = 0
    failures: List[CellFailure] = field(default_factory=list)

    def describe(self) -> str:
        text = (f"supervisor: {self.total} cell(s), {self.cached} cached, "
                f"{self.executed} executed, {self.retried} retried, "
                f"{self.timeouts} timeout(s), "
                f"{self.pool_rebuilds} pool rebuild(s), "
                f"{len(self.failures)} failure(s)")
        if self.resumed:
            text += f", {self.resumed} resumed"
        if self.degraded:
            text += ", DEGRADED to serial"
        return text


# --------------------------------------------------------------------- #
# Fabric-wide supervision defaults (set by the CLI front-end)
# --------------------------------------------------------------------- #
_default_policy: Optional[SupervisorPolicy] = None
_default_resume: bool = False
_default_chaos: Optional[ChaosSpec] = None
_last_report: Optional[SupervisorReport] = None


def set_default_policy(policy: Optional[SupervisorPolicy]) -> None:
    """Install (or clear) the fabric-wide supervision policy."""
    global _default_policy
    _default_policy = policy


def get_default_policy() -> Optional[SupervisorPolicy]:
    """The installed fabric-wide policy (``None`` = light default)."""
    return _default_policy


def set_default_resume(resume: bool) -> None:
    """Make every supervised batch attempt a journal resume."""
    global _default_resume
    _default_resume = resume


def get_default_resume() -> bool:
    """Is fabric-wide journal resume requested (the CLI's ``--resume``)?"""
    return _default_resume


def set_default_chaos(chaos: Optional[ChaosSpec]) -> None:
    """Install (or clear) a fabric-wide chaos injection spec."""
    global _default_chaos
    _default_chaos = chaos


def get_default_chaos() -> Optional[ChaosSpec]:
    """The installed fabric-wide chaos spec (``None`` = no injection)."""
    return _default_chaos


def get_last_report() -> Optional[SupervisorReport]:
    """The report of the most recent supervised batch in this process."""
    return _last_report


def supervision_requested() -> bool:
    """Do the installed fabric defaults ask for the supervised path?"""
    return (_default_policy is not None or _default_resume
            or (_default_chaos is not None
                and not _default_chaos.is_noop()))


# --------------------------------------------------------------------- #
# Deterministic backoff
# --------------------------------------------------------------------- #
def _cell_digest(key: str) -> str:
    return hashlib.blake2b(key.encode("utf-8"), digest_size=8).hexdigest()


def backoff_ms(policy: SupervisorPolicy, key: str, attempt: int) -> float:
    """Delay before retry ``attempt`` (1-based) of a cell, in ms.

    Exponential with a deterministic jitter factor in ``[0.5, 1.5)``
    drawn from the ``supervisor/backoff/<cell>/<attempt>`` stream — a
    pure function of ``(policy.seed, key, attempt)``, so retry schedules
    are reproducible and lint-clean.
    """
    if policy.backoff_base_ms == 0:
        return 0.0
    stream = RngStreams(seed=policy.seed).get(
        f"supervisor/backoff/{_cell_digest(key)}/{attempt}")
    jitter = 0.5 + float(stream.random())
    raw = policy.backoff_base_ms * (2.0 ** max(0, attempt - 1)) * jitter
    return min(raw, policy.backoff_cap_ms)


# --------------------------------------------------------------------- #
# Journal
# --------------------------------------------------------------------- #
def batch_key(keys: Iterable[str], salt: str) -> str:
    """Stable identifier of a batch: digest of its sorted cell keys."""
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(b"\x00")
    for key in sorted(keys):
        digest.update(key.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


class BatchJournal:
    """Append-only JSONL record of completed cells for one batch.

    One line per completed (or definitively failed) cell, flushed and
    ``fsync``\\ ed per append so a crash loses at most the line being
    written — and :meth:`replay` skips such torn trailing lines rather
    than refusing to resume.
    """

    def __init__(self, root: Union[str, Path], key: str) -> None:
        self.root = Path(root)
        self.key = key
        self.path = self.root / f"{key}.jsonl"

    def reset(self) -> None:
        """Drop any previous journal for this batch (fresh, non-resume
        runs must not inherit stale completion records)."""
        with contextlib.suppress(OSError):
            self.path.unlink()

    def append(self, record: Dict[str, object]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())

    def replay(self) -> Dict[str, Dict[str, object]]:
        """Completed-cell records by cell key; torn lines are skipped.

        Later records win (a cell that failed and then succeeded on a
        resumed run is counted by its latest status).
        """
        records: Dict[str, Dict[str, object]] = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn append from a killed writer
            if isinstance(doc, dict) and isinstance(doc.get("key"), str):
                records[doc["key"]] = doc
        return records


# --------------------------------------------------------------------- #
# Worker-side dispatch (module-level: must pickle under spawn)
# --------------------------------------------------------------------- #
def _dispatch(spec: CellSpec, key: str, chaos: Optional[ChaosSpec],
              seq: int, final: bool) -> object:
    """One supervised cell attempt inside a pool worker."""
    if chaos is not None:
        chaos_mod.apply_worker_chaos(chaos, key, seq, final,
                                     in_process=False)
    return execute_cell(spec)


# --------------------------------------------------------------------- #
# The supervision loop
# --------------------------------------------------------------------- #
class _Supervisor:
    """State machine for one supervised batch (pool or serial)."""

    def __init__(self, unique: Dict[str, CellSpec], workers: int,
                 cache: Optional[ResultCache],
                 policy: SupervisorPolicy,
                 chaos: Optional[ChaosSpec],
                 journal: Optional[BatchJournal],
                 report: SupervisorReport,
                 progress: Optional[Callable[[str], None]]) -> None:
        self.unique = unique
        self.workers = workers
        self.cache = cache
        self.policy = policy
        self.chaos = chaos
        self.journal = journal
        self.report = report
        self.progress = progress
        self.outcomes: Dict[str, CellOutcome] = {}
        #: Failed attempts per cell (errors + timeouts; NOT pool breaks).
        self.attempts: Dict[str, int] = {}
        #: Total dispatches per cell (chaos/backoff draw index).
        self.seq: Dict[str, int] = {}
        self.deadline: Optional[float] = (
            time.monotonic() + policy.batch_deadline_s
            if policy.batch_deadline_s is not None else None)

    # -- shared bookkeeping --------------------------------------------- #
    def _note(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _succeed(self, key: str, value: object) -> None:
        if self.cache is not None:
            self.cache.put(self.unique[key], value)
        fingerprint = result_fingerprint(value)
        self.outcomes[key] = CellOutcome(key=key, value=value,
                                         fingerprint=fingerprint,
                                         cached=False)
        self.report.executed += 1
        if self.journal is not None:
            record: Dict[str, object] = {
                "key": key, "status": "done", "fingerprint": fingerprint,
                "attempts": self.attempts.get(key, 0) + 1}
            if self.cache is not None:
                record["cache_key"] = self.cache.key_for(self.unique[key])
                record["salt"] = self.cache.salt
            self.journal.append(record)

    def _fail(self, key: str, kind: str, detail: str) -> None:
        failure = CellFailure(key=key, kind=kind,
                              attempts=self.attempts.get(key, 0),
                              detail=detail)
        self.outcomes[key] = CellOutcome(
            key=key, value=failure,
            fingerprint=result_fingerprint(failure), cached=False)
        self.report.failures.append(failure)
        if kind == "timeout":
            self.report.timeouts += 1
        if self.journal is not None:
            self.journal.append({"key": key, "status": "failed",
                                 "kind": kind, "detail": detail,
                                 "attempts": failure.attempts})
        self._note(f"cell failed ({kind}, "
                   f"{failure.attempts} attempt(s)): {detail}")

    def _next_seq(self, key: str) -> int:
        seq = self.seq.get(key, 0)
        self.seq[key] = seq + 1
        return seq

    def _is_final(self, key: str) -> bool:
        return self.attempts.get(key, 0) >= self.policy.max_retries

    def _out_of_time(self) -> bool:
        return (self.deadline is not None
                and time.monotonic() >= self.deadline)

    def _classify(self, exc: BaseException) -> Tuple[str, str]:
        kind = "crash" if isinstance(exc, ChaosKill) else "error"
        return kind, f"{type(exc).__name__}: {exc}"

    # -- serial supervised execution ------------------------------------ #
    def run_serial(self, keys: Iterable[str]) -> None:
        """In-process execution with retry (and in-process chaos).

        Used for ``jobs == 1`` batches and as the degraded fallback;
        per-cell timeouts are not enforceable here (nothing can
        interrupt an in-process cell), but the batch deadline still is —
        it is checked between attempts.
        """
        for key in keys:
            if key in self.outcomes:
                continue
            if self._out_of_time():
                self._fail(key, "timeout", "batch deadline exhausted")
                continue
            last = "unknown"
            while True:
                final = self._is_final(key)
                seq = self._next_seq(key)
                try:
                    if self.chaos is not None:
                        chaos_mod.apply_worker_chaos(
                            self.chaos, key, seq, final, in_process=True)
                    value = execute_cell(self.unique[key])
                except Exception as exc:
                    kind, last = self._classify(exc)
                    self.attempts[key] = self.attempts.get(key, 0) + 1
                    if final or self._out_of_time():
                        self._fail(key, kind, last)
                        break
                    self.report.retried += 1
                    _sleep(backoff_ms(self.policy, key,
                                      self.attempts[key]) / 1000.0)
                else:
                    self._succeed(key, value)
                    break

    # -- pool supervised execution -------------------------------------- #
    def run_pool(self, keys: List[str],
                 make_pool: Callable[[int], ProcessPoolExecutor]) -> None:
        queue: Deque[str] = deque(keys)
        waiting: List[Tuple[float, str]] = []  # (ready_at, key) heap
        inflight: Dict[Future[object], Tuple[str, Optional[float]]] = {}
        pool = make_pool(self.workers)
        try:
            while queue or waiting or inflight:
                if self._out_of_time():
                    self._drain_deadline(queue, waiting, inflight)
                    return
                now = time.monotonic()
                while waiting and waiting[0][0] <= now:
                    queue.append(heapq.heappop(waiting)[1])
                submit_broke = False
                while queue and len(inflight) < self.workers:
                    key = queue.popleft()
                    seq = self._next_seq(key)
                    try:
                        fut = pool.submit(_dispatch, self.unique[key],
                                          key, self.chaos, seq,
                                          self._is_final(key))
                    except (BrokenProcessPool, RuntimeError):
                        # A worker died between wait() rounds and broke
                        # the pool before we could even submit.
                        queue.appendleft(key)
                        submit_broke = True
                        break
                    cell_deadline = (
                        time.monotonic() + self.policy.cell_timeout_s
                        if self.policy.cell_timeout_s is not None else None)
                    inflight[fut] = (key, cell_deadline)
                if submit_broke:
                    for lost_key, _dl in inflight.values():
                        queue.appendleft(lost_key)
                    inflight.clear()
                    self.report.pool_rebuilds += 1
                    self._note(f"pool broke on submit; rebuild "
                               f"{self.report.pool_rebuilds}/"
                               f"{self.policy.max_pool_rebuilds}")
                    pool.shutdown(wait=False, cancel_futures=True)
                    if (self.report.pool_rebuilds
                            > self.policy.max_pool_rebuilds):
                        self._degrade(queue, waiting)
                        return
                    pool = make_pool(self.workers)
                    continue
                if not inflight:
                    # Everything is backing off; sleep to the next event.
                    target = waiting[0][0]
                    if self.deadline is not None:
                        target = min(target, self.deadline)
                    _sleep(max(0.0, target - time.monotonic()))
                    continue

                done, _ = futures_wait(list(inflight),
                                       timeout=self._tick(waiting,
                                                          inflight),
                                       return_when=FIRST_COMPLETED)
                broken = False
                for fut in done:
                    key, _cell_deadline = inflight.pop(fut)
                    try:
                        value = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        queue.appendleft(key)
                    except (EOFError, OSError):
                        # Pipe to a dead worker: same as a broken pool.
                        broken = True
                        queue.appendleft(key)
                    except Exception as exc:
                        self._retry_or_fail(key, exc, queue, waiting)
                    else:
                        self._succeed(key, value)

                if broken:
                    # Worker death does not name a guilty cell: requeue
                    # every lost in-flight cell without charging its
                    # retry budget; the pool-level rebuild budget bounds
                    # this instead.
                    for lost_key, _dl in inflight.values():
                        queue.appendleft(lost_key)
                    inflight.clear()
                    self.report.pool_rebuilds += 1
                    self._note(f"worker died; pool rebuild "
                               f"{self.report.pool_rebuilds}/"
                               f"{self.policy.max_pool_rebuilds}")
                    pool.shutdown(wait=False, cancel_futures=True)
                    if (self.report.pool_rebuilds
                            > self.policy.max_pool_rebuilds):
                        self._degrade(queue, waiting)
                        return
                    pool = make_pool(self.workers)
                    continue

                timed_out = self._collect_timeouts(inflight)
                if timed_out:
                    # A pool cannot abort a running cell: kill the
                    # workers and rebuild.  Innocent in-flight cells are
                    # requeued uncharged; a timeout-driven rebuild does
                    # not consume the crash-rebuild budget.
                    for fut, (key, _dl) in list(inflight.items()):
                        if fut in timed_out:
                            self._timeout_cell(key, queue, waiting)
                        else:
                            queue.appendleft(key)
                    inflight.clear()
                    self._kill_pool(pool)
                    pool = make_pool(self.workers)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _tick(self, waiting: List[Tuple[float, str]],
              inflight: Dict[Future[object], Tuple[str, Optional[float]]]
              ) -> Optional[float]:
        """How long the wait() may block before the next deadline."""
        targets = [dl for _k, dl in inflight.values() if dl is not None]
        if waiting:
            targets.append(waiting[0][0])
        if self.deadline is not None:
            targets.append(self.deadline)
        if not targets:
            return None
        return max(0.0, min(targets) - time.monotonic())

    def _retry_or_fail(self, key: str, exc: BaseException,
                       queue: Deque[str],
                       waiting: List[Tuple[float, str]]) -> None:
        kind, detail = self._classify(exc)
        self.attempts[key] = self.attempts.get(key, 0) + 1
        if self.attempts[key] > self.policy.max_retries:
            self._fail(key, kind, detail)
            return
        self.report.retried += 1
        delay = backoff_ms(self.policy, key, self.attempts[key]) / 1000.0
        if delay > 0:
            heapq.heappush(waiting, (time.monotonic() + delay, key))
        else:
            queue.append(key)

    def _timeout_cell(self, key: str, queue: Deque[str],
                      waiting: List[Tuple[float, str]]) -> None:
        self.attempts[key] = self.attempts.get(key, 0) + 1
        assert self.policy.cell_timeout_s is not None
        if self.attempts[key] > self.policy.max_retries:
            self._fail(key, "timeout",
                       f"cell exceeded {self.policy.cell_timeout_s:g}s "
                       f"wall-clock budget")
            return
        self.report.retried += 1
        self.report.timeouts += 1
        delay = backoff_ms(self.policy, key, self.attempts[key]) / 1000.0
        if delay > 0:
            heapq.heappush(waiting, (time.monotonic() + delay, key))
        else:
            queue.append(key)

    def _collect_timeouts(
            self,
            inflight: Dict[Future[object], Tuple[str, Optional[float]]]
    ) -> List[Future[object]]:
        now = time.monotonic()
        return [fut for fut, (_key, dl) in inflight.items()
                if dl is not None and now >= dl and not fut.done()]

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            with contextlib.suppress(Exception):
                proc.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def _degrade(self, queue: Deque[str],
                 waiting: List[Tuple[float, str]]) -> None:
        self.report.degraded = True
        remaining = sorted(set(queue) | {k for _t, k in waiting})
        warnings.warn(
            f"supervised batch exhausted its pool-rebuild budget "
            f"({self.policy.max_pool_rebuilds}); degrading to in-process "
            f"serial execution for {len(remaining)} remaining cell(s)",
            SupervisorDegradedWarning, stacklevel=4)
        self._note("DEGRADED: continuing serially")
        self.run_serial(remaining)

    def _drain_deadline(self, queue: Deque[str],
                        waiting: List[Tuple[float, str]],
                        inflight: Dict[Future[object],
                                       Tuple[str, Optional[float]]]
                        ) -> None:
        remaining = (set(queue) | {k for _t, k in waiting}
                     | {k for k, _dl in inflight.values()})
        for key in sorted(remaining):
            self._fail(key, "timeout", "batch deadline exhausted")


def run_supervised(specs: Iterable[CellSpec],
                   jobs: Optional[Union[int, str]] = None,
                   cache: Optional[ResultCache] = None,
                   policy: Optional[SupervisorPolicy] = None,
                   progress: Optional[Callable[[str], None]] = None,
                   journal_dir: Optional[Union[str, Path]] = None,
                   resume: bool = False,
                   chaos: Optional[ChaosSpec] = None) -> CellResults:
    """Execute a batch under supervision; the hardened ``run_cells``.

    Drop-in compatible with
    :func:`repro.parallel.executor.run_cells` — identical merged results
    for a batch that needs no supervision — plus the policy/journal/chaos
    keywords.  Failed cells surface as :class:`CellFailure` outcome
    values (check :meth:`CellResults.raise_if_failed`); the batch itself
    always completes.  The :class:`SupervisorReport` is attached to the
    returned results as ``results.supervisor``.
    """
    global _last_report
    if policy is None:
        policy = _default_policy if _default_policy is not None \
            else SupervisorPolicy()
    if cache is None:
        cache = get_default_cache()
    if chaos is None:
        chaos = _default_chaos
    if chaos is not None and chaos.is_noop():
        chaos = None

    unique: Dict[str, CellSpec] = {}
    for spec in specs:
        unique.setdefault(spec.canonical(), spec)

    report = SupervisorReport(total=len(unique))
    _last_report = report

    # Host-side chaos first: corrupt existing cache entries *before* the
    # cache-first pass, so the batch must detect and survive them.
    if chaos is not None and cache is not None:
        report.corrupt_injected = chaos_mod.corrupt_cache_entries(
            chaos, cache, unique.values())

    journal: Optional[BatchJournal] = None
    salt = cache.salt if cache is not None else ""
    if journal_dir is None and cache is not None:
        journal_dir = cache.root / JOURNAL_DIR
    if journal_dir is not None:
        journal = BatchJournal(journal_dir, batch_key(unique, salt))
    if resume and journal is None:
        raise ConfigurationError(
            "resume needs a journal: pass journal_dir or enable the "
            "result cache")
    replayed: Dict[str, Dict[str, object]] = {}
    if journal is not None:
        if resume:
            replayed = journal.replay()
        else:
            journal.reset()

    # Cache-first pass (hits never touch a worker); under resume, hits
    # whose journal record says "done" count as resumed cells.
    outcomes: Dict[str, CellOutcome] = {}
    todo: List[str] = []
    for key in sorted(unique):
        if cache is not None:
            hit, value = cache.get(unique[key])
            if hit:
                outcomes[key] = CellOutcome(
                    key=key, value=value,
                    fingerprint=result_fingerprint(value), cached=True)
                report.cached += 1
                record = replayed.get(key)
                if record is not None and record.get("status") == "done":
                    report.resumed += 1
                continue
        todo.append(key)

    if todo:
        workers = min(resolve_jobs(jobs), len(todo))
        if progress is not None:
            progress(f"supervising {len(todo)} cell(s) "
                     f"({report.cached} cached) with {workers} worker(s)")
        sup = _Supervisor(unique, workers, cache, policy, chaos, journal,
                          report, progress)
        if workers <= 1:
            sup.run_serial(todo)
        else:
            from repro.parallel.executor import _make_pool
            sup.run_pool(todo, _make_pool)
        outcomes.update(sup.outcomes)

    results = CellResults(outcomes)
    results.supervisor = report
    return results
