"""Process-pool fan-out with deterministic merge.

:func:`run_cells` is the execution fabric's core: it takes a batch of
:class:`~repro.parallel.cells.CellSpec` and produces one result per
*distinct* spec, using

1. the content-addressed cache (hits never touch a worker),
2. a spawn-safe :class:`~concurrent.futures.ProcessPoolExecutor` for the
   remaining cells when ``jobs > 1``,
3. in-process serial execution when ``jobs == 1`` (no pool overhead, and
   the reference behaviour parallel runs are gated against).

Determinism contract
--------------------
Cells are keyed by their canonical spec; results are merged **sorted by
key** before any aggregation, and each cell is a self-contained
simulation seeded from its spec.  A serial run and an 8-way run of the
same batch therefore produce bit-identical values and fingerprints —
process scheduling can reorder *completion*, never *content*.  The
figure drivers aggregate by iterating their own spec lists (a fixed
order), so series are byte-stable too.

Job-count resolution: explicit ``jobs`` argument > fabric default set by
:func:`set_default_jobs` (the CLI's ``--jobs`` / pytest's ``--jobs``) >
the ``REPRO_JOBS`` environment variable > 1.  ``"auto"`` or ``0`` means
one worker per CPU.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, Iterator,
                    List, Optional, Sequence, Tuple, TypeVar, Union)

from repro.errors import CellTimeoutError, ConfigurationError, ExecutionError
from repro.parallel.cache import ResultCache
from repro.parallel.cells import CellSpec, execute_cell, result_fingerprint

if TYPE_CHECKING:
    from repro.parallel.chaos import ChaosSpec
    from repro.parallel.supervisor import (CellFailure, SupervisorPolicy,
                                           SupervisorReport)

__all__ = [
    "CellOutcome",
    "CellResults",
    "get_default_cache",
    "get_default_jobs",
    "pool_map",
    "resolve_jobs",
    "run_cells",
    "set_default_cache",
    "set_default_jobs",
]

_JOBS_ENV = "REPRO_JOBS"

#: Fabric-wide defaults, set once by the CLI / pytest plugin front-ends.
_default_jobs: Optional[Union[int, str]] = None
_default_cache: Optional[ResultCache] = None

_T = TypeVar("_T")
_R = TypeVar("_R")


def set_default_jobs(jobs: Optional[Union[int, str]]) -> None:
    """Set the fabric-wide default worker count (``None`` resets)."""
    global _default_jobs
    if jobs is not None:
        _coerce_jobs(jobs)  # validate eagerly so bad input fails loudly
    _default_jobs = jobs


def get_default_jobs() -> Optional[Union[int, str]]:
    """The fabric-wide default worker count (unresolved form)."""
    return _default_jobs


def set_default_cache(cache: Optional[ResultCache]) -> None:
    """Install (or clear) the fabric-wide default result cache."""
    global _default_cache
    _default_cache = cache


def get_default_cache() -> Optional[ResultCache]:
    """The fabric-wide default result cache (``None`` = caching off)."""
    return _default_cache


def _coerce_jobs(jobs: Union[int, str]) -> int:
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            jobs = int(text)
        except ValueError:
            raise ConfigurationError(
                f"jobs must be a positive integer or 'auto', got {jobs!r}")
    if jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_jobs(jobs: Optional[Union[int, str]] = None) -> int:
    """Resolve an effective worker count from the precedence chain."""
    if jobs is None:
        jobs = _default_jobs
    if jobs is None:
        env = os.environ.get(_JOBS_ENV)
        if env is not None and env.strip():
            jobs = env
    if jobs is None:
        return 1
    return _coerce_jobs(jobs)


# --------------------------------------------------------------------- #
# Pool plumbing
# --------------------------------------------------------------------- #
def _child_environment() -> None:
    """Make sure spawn children can ``import repro``.

    Spawned workers re-import everything from scratch; if ``repro`` was
    imported from a source checkout that is not on ``PYTHONPATH`` (e.g.
    ``PYTHONPATH=src`` ran from the repo root but the pool is created
    from another working directory), prepend its location so the child's
    interpreter finds the same package the parent runs.
    """
    import repro
    pkg_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    parts = [p for p in existing.split(os.pathsep) if p]
    if pkg_dir not in (os.path.abspath(p) for p in parts):
        os.environ["PYTHONPATH"] = os.pathsep.join([pkg_dir] + parts)


def _make_pool(workers: int) -> ProcessPoolExecutor:
    _child_environment()
    ctx = multiprocessing.get_context("spawn")
    return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)


def pool_map(fn: Callable[[_T], _R], items: Sequence[_T],
             jobs: Optional[Union[int, str]] = None) -> List[_R]:
    """Order-preserving map over a process pool (serial when jobs==1).

    ``fn`` and every item must pickle under the spawn start method when
    ``jobs > 1`` — module-level functions and plain data qualify,
    closures do not.
    """
    workers = min(resolve_jobs(jobs), max(1, len(items)))
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    pool = _make_pool(workers)
    try:
        result = list(pool.map(fn, items))
    except BaseException:
        # KeyboardInterrupt (or any other abort) must not leak the
        # executor: cancel queued work, drop the workers without
        # blocking on in-flight cells, and re-raise cleanly.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    return result


# --------------------------------------------------------------------- #
# Cell batches
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class CellOutcome:
    """One executed (or cache-served) cell."""

    key: str
    value: object
    fingerprint: int
    cached: bool


class CellResults:
    """Results of one :func:`run_cells` batch, keyed by canonical spec.

    Lookup is by :class:`CellSpec` (or its canonical string); iteration
    is in sorted-key order, so any aggregate derived from a plain
    traversal is deterministic.
    """

    def __init__(self, outcomes: Dict[str, CellOutcome]) -> None:
        self._outcomes = {k: outcomes[k] for k in sorted(outcomes)}
        #: Set by :func:`repro.parallel.supervisor.run_supervised`;
        #: ``None`` for unsupervised batches.
        self.supervisor: Optional["SupervisorReport"] = None

    def __len__(self) -> int:
        return len(self._outcomes)

    def __iter__(self) -> Iterator[CellOutcome]:
        return iter(self._outcomes.values())

    def outcome(self, spec: Union[CellSpec, str]) -> CellOutcome:
        key = spec.canonical() if isinstance(spec, CellSpec) else spec
        return self._outcomes[key]

    def value(self, spec: Union[CellSpec, str]) -> object:
        return self.outcome(spec).value

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self._outcomes.values() if o.cached)

    def failures(self) -> List["CellFailure"]:
        """Cells whose outcome is a structured supervision failure."""
        from repro.parallel.supervisor import CellFailure
        return [o.value for o in self._outcomes.values()
                if isinstance(o.value, CellFailure)]

    @property
    def ok(self) -> bool:
        """True iff every cell produced a real result (no failures)."""
        return not self.failures()

    def raise_if_failed(self) -> None:
        """Raise on supervision failures (the strict callers' gate).

        :class:`~repro.errors.CellTimeoutError` when any failure is a
        timeout (cell budget or batch deadline), otherwise
        :class:`~repro.errors.ExecutionError`.
        """
        failed = self.failures()
        if not failed:
            return
        detail = "; ".join(
            f"{f.kind} after {f.attempts} attempt(s): {f.detail}"
            for f in failed[:3]) + ("" if len(failed) <= 3 else "; …")
        message = (f"{len(failed)} of {len(self)} supervised cell(s) "
                   f"failed: {detail}")
        if any(f.kind == "timeout" for f in failed):
            raise CellTimeoutError(message)
        raise ExecutionError(message)

    def fingerprints(self) -> Dict[str, int]:
        """key -> 64-bit result fingerprint, in sorted-key order."""
        return {k: o.fingerprint for k, o in self._outcomes.items()}

    def combined_fingerprint(self) -> str:
        """One hex digest over every cell fingerprint (sorted by key).

        This is the figure-level determinism token: serial and N-way
        runs of the same batch must print the same value.
        """
        import hashlib
        digest = hashlib.sha256()
        for key, outcome in self._outcomes.items():
            digest.update(key.encode("utf-8"))
            digest.update(outcome.fingerprint.to_bytes(8, "big"))
        return digest.hexdigest()[:16]


def run_cells(specs: Iterable[CellSpec],
              jobs: Optional[Union[int, str]] = None,
              cache: Optional[ResultCache] = None,
              progress: Optional[Callable[[str], None]] = None,
              policy: Optional["SupervisorPolicy"] = None,
              resume: Optional[bool] = None,
              chaos: Optional["ChaosSpec"] = None) -> CellResults:
    """Execute a batch of cells: cache-first, then fan out, then merge.

    Duplicate specs are coalesced (each distinct simulation runs once).
    ``cache=None`` uses the fabric default installed by
    :func:`set_default_cache`; pass an explicit :class:`ResultCache` to
    override, and note there is no "definitely uncached" sentinel —
    clear the default if a batch must not be cached.

    Supervision: passing ``policy``/``resume``/``chaos`` (or installing
    fabric-wide defaults via
    :func:`repro.parallel.supervisor.set_default_policy` and friends —
    the CLI does) routes the batch through
    :func:`repro.parallel.supervisor.run_supervised`, which adds
    timeouts, crash recovery, deterministic retry, and journaled resume
    while preserving bit-identical merged results.  Without any of
    those, this is the original direct fan-out.
    """
    if policy is not None or resume or chaos is not None:
        supervised = True
    else:
        from repro.parallel import supervisor
        supervised = supervisor.supervision_requested()
    if supervised:
        from repro.parallel import supervisor
        return supervisor.run_supervised(
            specs, jobs=jobs, cache=cache, policy=policy,
            progress=progress, resume=bool(resume), chaos=chaos)
    if cache is None:
        cache = _default_cache
    unique: Dict[str, CellSpec] = {}
    for spec in specs:
        unique.setdefault(spec.canonical(), spec)

    outcomes: Dict[str, CellOutcome] = {}
    todo: List[Tuple[str, CellSpec]] = []
    for key in sorted(unique):
        spec = unique[key]
        if cache is not None:
            hit, value = cache.get(spec)
            if hit:
                outcomes[key] = CellOutcome(
                    key=key, value=value,
                    fingerprint=result_fingerprint(value), cached=True)
                continue
        todo.append((key, spec))

    if todo:
        workers = min(resolve_jobs(jobs), len(todo))
        if progress is not None:
            progress(f"running {len(todo)} cell(s) "
                     f"({len(outcomes)} cached) with {workers} worker(s)")
        if workers <= 1:
            computed = [(key, execute_cell(spec)) for key, spec in todo]
        else:
            pool = _make_pool(workers)
            try:
                values = pool.map(execute_cell,
                                  [spec for _, spec in todo])
                computed = list(zip((key for key, _ in todo), values))
            except BaseException:
                # Ctrl-C (or any abort) cancels queued cells and drops
                # the pool instead of leaking it; see pool_map.
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            pool.shutdown(wait=True)
        # Sorted-key merge: the aggregation order downstream never
        # depends on worker completion order.
        for key, value in sorted(computed, key=lambda kv: kv[0]):
            if cache is not None:
                cache.put(unique[key], value)
            outcomes[key] = CellOutcome(
                key=key, value=value,
                fingerprint=result_fingerprint(value), cached=False)
    return CellResults(outcomes)
