"""Deterministic chaos injection for the supervised execution fabric.

Where :mod:`repro.faults` attacks the *simulated* system (hypercalls,
IPIs, the Monitoring Module), this module attacks the *driver* layer
that runs simulations: it kills pool workers mid-cell, stalls cells past
their timeout, corrupts on-disk cache entries and poisons chosen cells —
exactly the failures :mod:`repro.parallel.supervisor` exists to survive.
The design mirrors :class:`~repro.faults.spec.FaultSpec`:

* :class:`ChaosSpec` is a frozen, picklable, inert description; the
  default-constructed spec injects nothing (:meth:`ChaosSpec.is_noop`);
* every injection decision is a pure function of ``(chaos seed, site,
  cell key, attempt)`` drawn from dedicated named
  :class:`~repro.sim.rng.RngStreams` (``chaos/<site>/<cell>/<attempt>``)
  — no wall-clock randomness, so a chaos schedule is reproducible and
  ``simlint --interprocedural`` stays clean;
* by default chaos **spares the final allowed attempt** of each cell
  (``spare_final_attempt``), so a supervised run under kills/stalls/
  corruption is *guaranteed* to converge to results bit-identical to a
  clean run — the determinism gate ``repro chaos`` and the CI chaos job
  enforce.  Poisoned cells are the deliberate exception: they fail every
  attempt, proving retry exhaustion yields a structured
  :class:`~repro.parallel.supervisor.CellFailure`, never a lost batch.

Surfaces: the ``repro chaos`` CLI subcommand (self-proving demo), the
``--chaos KEY=VALUE,...`` option on every fabric subcommand, and the
``chaos_fabric`` pytest fixture (import it from this module, or load the
module as a plugin with ``-p repro.parallel.chaos``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Tuple, Union

from repro.errors import ConfigurationError
from repro.parallel.cache import ResultCache
from repro.parallel.cells import CellSpec
from repro.sim.rng import RngStreams

__all__ = [
    "ChaosError",
    "ChaosKill",
    "ChaosPoisoned",
    "ChaosSpec",
    "apply_worker_chaos",
    "corrupt_cache_entries",
]

#: Exit status a chaos-killed worker dies with (visible in core dumps /
#: CI logs as "the injection", distinct from OOM kills and segfaults).
KILL_EXIT_STATUS = 86

#: Probability fields, all in [0, 1].
_RATE_FIELDS = ("kill_rate", "stall_rate", "error_rate", "corrupt_rate")

#: Patchable sleep so tests can run stall scenarios instantly.
_sleep = time.sleep


class ChaosError(Exception):
    """An injected in-cell failure (``error_rate`` site)."""


class ChaosKill(ChaosError):
    """The in-process translation of a worker kill: raised instead of
    ``os._exit`` when the supervisor runs cells serially (degraded mode
    or ``jobs=1``), where killing the process would kill the driver."""


class ChaosPoisoned(ChaosError):
    """A poisoned cell's unconditional per-attempt failure."""


@dataclass(frozen=True)
class ChaosSpec:
    """One deterministic driver-level chaos scenario.

    All defaults are no-ops.  Rates are per-(cell, attempt) injection
    probabilities; ``poison_keys`` are substrings matched against a
    cell's canonical key (e.g. ``'"seed":3'``) that make it fail *every*
    attempt.
    """

    #: Salt of the ``chaos/...`` stream family — two chaos scenarios
    #: with different seeds draw independent schedules.
    seed: int = 0
    #: Probability an attempt's worker is killed (``os._exit``) mid-cell.
    kill_rate: float = 0.0
    #: Probability an attempt stalls for ``stall_s`` wall-clock seconds
    #: before computing (trips the supervisor's cell timeout when the
    #: stall exceeds it; otherwise just a late, correct result).
    stall_rate: float = 0.0
    stall_s: float = 0.0
    #: Probability an attempt raises :class:`ChaosError` inside the cell.
    error_rate: float = 0.0
    #: Probability an *existing* cache entry for a batch cell is
    #: bit-flipped on disk before the batch reads it (host-side site:
    #: exercises checksum verification and quarantine).
    corrupt_rate: float = 0.0
    #: Canonical-key substrings naming cells that fail every attempt.
    poison_keys: Tuple[str, ...] = ()
    #: Never inject kill/stall/error into a cell's final allowed attempt,
    #: making convergence (and the bit-identical-results gate) certain.
    spare_final_attempt: bool = True

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be a probability in [0, 1], got {value!r}")
        if self.stall_rate > 0.0 and self.stall_s <= 0.0:
            raise ConfigurationError("stall_rate needs stall_s > 0")
        if self.stall_s < 0.0:
            raise ConfigurationError(
                f"stall_s must be >= 0, got {self.stall_s!r}")
        if not all(isinstance(k, str) and k for k in self.poison_keys):
            raise ConfigurationError(
                "poison_keys must be non-empty strings")

    def is_noop(self) -> bool:
        """True iff this spec injects nothing."""
        return (self.kill_rate == 0.0 and self.stall_rate == 0.0
                and self.error_rate == 0.0 and self.corrupt_rate == 0.0
                and not self.poison_keys)

    def describe(self) -> str:
        """Compact ``key=value`` rendering of the non-default fields."""
        parts = []
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value != f.default and f.name != "seed":
                if f.name == "poison_keys":
                    value = "+".join(self.poison_keys)
                parts.append(f"{f.name}={value}")
        return ",".join(parts) if parts else "none"

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Build a spec from ``key=value,key=value`` CLI syntax.

        ``poison_keys`` takes a ``+``-separated list; an empty string or
        ``none`` yields the no-op spec.
        """
        text = text.strip()
        if not text or text == "none":
            return cls()
        by_name = {f.name: f for f in dataclasses.fields(cls)}
        kwargs: Dict[str, Union[int, float, bool,
                                Tuple[str, ...]]] = {}
        for item in text.split(","):
            if "=" not in item:
                raise ConfigurationError(
                    f"bad chaos item {item!r}; expected key=value")
            key, _, raw = item.partition("=")
            key = key.strip()
            raw = raw.strip()
            field = by_name.get(key)
            if field is None:
                raise ConfigurationError(
                    f"unknown chaos field {key!r}; choose from "
                    f"{sorted(by_name)}")
            if key in kwargs:
                raise ConfigurationError(
                    f"duplicate chaos field {key!r}")
            try:
                if key == "poison_keys":
                    kwargs[key] = tuple(p for p in raw.split("+") if p)
                elif key == "spare_final_attempt":
                    # Case-insensitive so describe() output re-parses.
                    flag = raw.lower()
                    if flag not in ("0", "1", "true", "false"):
                        raise ValueError(raw)
                    kwargs[key] = flag in ("1", "true")
                elif key == "seed":
                    kwargs[key] = int(raw)
                else:
                    kwargs[key] = float(raw)
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad value for chaos field {key!r}: {raw!r}") from exc
        return cls(**kwargs)  # type: ignore[arg-type]


# --------------------------------------------------------------------- #
# Deterministic draws
# --------------------------------------------------------------------- #
def _cell_digest(key: str) -> str:
    """Short stable digest of a canonical cell key for stream names."""
    return hashlib.blake2b(key.encode("utf-8"),
                           digest_size=8).hexdigest()


def chaos_draw(spec: ChaosSpec, site: str, key: str, attempt: int) -> float:
    """The deterministic uniform draw for one (site, cell, attempt).

    A pure function of ``(spec.seed, site, key, attempt)`` — independent
    of dispatch order, pool timing, and every other stream in the
    system (the :mod:`repro.sim.rng` named-stream discipline, one level
    up from the simulation).
    """
    stream = RngStreams(seed=spec.seed).get(
        f"chaos/{site}/{_cell_digest(key)}/{attempt}")
    return float(stream.random())


def is_poisoned(spec: ChaosSpec, key: str) -> bool:
    """Does any poison substring match this cell's canonical key?"""
    return any(p in key for p in spec.poison_keys)


def apply_worker_chaos(spec: ChaosSpec, key: str, attempt: int,
                       final: bool, in_process: bool) -> None:
    """Run the injection sites for one cell attempt, in order.

    Called at the top of every dispatched attempt — inside the pool
    worker normally, in the driver process when the supervisor executes
    serially (``in_process=True``, where a kill is translated into a
    :class:`ChaosKill` exception so the driver survives).
    """
    if is_poisoned(spec, key):
        raise ChaosPoisoned(
            f"poisoned cell (attempt {attempt}): injected unconditional "
            f"failure")
    if final and spec.spare_final_attempt:
        return
    if spec.kill_rate > 0.0 and \
            chaos_draw(spec, "kill", key, attempt) < spec.kill_rate:
        if in_process:
            raise ChaosKill(f"injected worker kill (attempt {attempt})")
        os._exit(KILL_EXIT_STATUS)
    if spec.stall_rate > 0.0 and \
            chaos_draw(spec, "stall", key, attempt) < spec.stall_rate:
        _sleep(spec.stall_s)
    if spec.error_rate > 0.0 and \
            chaos_draw(spec, "error", key, attempt) < spec.error_rate:
        raise ChaosError(f"injected cell error (attempt {attempt})")


def corrupt_cache_entries(spec: ChaosSpec, cache: ResultCache,
                          cells: Iterable[CellSpec]) -> int:
    """Host-side site: bit-flip existing cache entries for batch cells.

    Selection is the deterministic ``chaos/corrupt/<cell>`` draw; only
    entries already on disk are touched (corruption of *absent* entries
    is meaningless).  Returns the number of entries corrupted.  The
    supervised batch that follows must quarantine each one and
    re-execute the cell — checked by the ``repro chaos`` gate.
    """
    if spec.corrupt_rate <= 0.0:
        return 0
    corrupted = 0
    for cell in cells:
        key = cell.canonical()
        if chaos_draw(spec, "corrupt", key, 0) >= spec.corrupt_rate:
            continue
        path = cache._entry_path(cache.key_for(cell))
        try:
            data = path.read_bytes()
        except OSError:
            continue
        if not data:
            continue
        path.write_bytes(bytes([data[0] ^ 0xFF]) + data[1:])
        corrupted += 1
    return corrupted


# --------------------------------------------------------------------- #
# pytest surface
# --------------------------------------------------------------------- #
# Guarded so importing this module as a library never requires pytest.
# Use `from repro.parallel.chaos import chaos_fabric` in a test module
# (or `-p repro.parallel.chaos`) to get the fixture.
try:  # pragma: no cover - exercised via the test suite itself
    import pytest as _pytest
except ImportError:  # pragma: no cover
    _pytest = None  # type: ignore[assignment]

if _pytest is not None:
    @_pytest.fixture  # type: ignore[misc]
    def chaos_fabric(tmp_path):  # type: ignore[no-untyped-def]
        """Factory running supervised batches under deterministic chaos.

        Returns ``run(specs, chaos=..., policy=..., jobs=..., ...)``
        backed by a per-test :class:`ResultCache` (journal included), so
        a test can assert both the merged results and the supervisor's
        report/journal/quarantine side effects.
        """
        from repro.parallel.supervisor import (SupervisorPolicy,
                                               run_supervised)

        default_cache = ResultCache(tmp_path / "chaos-cache")

        def _run(specs, chaos=None, policy=None, jobs=2,  # type: ignore[no-untyped-def]
                 cache=None, resume=False):
            if cache is None:
                cache = default_cache
            if policy is None:
                policy = SupervisorPolicy(max_retries=3,
                                          max_pool_rebuilds=20)
            return run_supervised(list(specs), jobs=jobs, cache=cache,
                                  policy=policy, chaos=chaos,
                                  resume=resume)

        _run.cache = default_cache  # type: ignore[attr-defined]
        return _run
